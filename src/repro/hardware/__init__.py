"""Hardware configuration models and catalogs.

BanditWare's "arms" are hardware configurations described in the paper as
``H_n = (#cpus, memory)``.  This package provides:

* :class:`~repro.hardware.config.HardwareConfig` -- an immutable description
  of one configuration (CPU count, memory, optional GPU count, per-core clock
  and an hourly cost used for reporting).
* :class:`~repro.hardware.catalog.HardwareCatalog` -- an ordered, indexable
  collection of configurations with the catalogs used by each experiment in
  the paper (the NDP triple ``H0=(2,16), H1=(3,24), H2=(4,16)``; the 4-way
  synthetic catalog of Experiment 1; the 5-way catalog of Experiment 3).
* :mod:`~repro.hardware.cost` -- resource-efficiency scoring used by the
  tolerant selection step of Algorithm 1 ("choose the one with the most
  resource efficiency" among near-fastest candidates).
"""

from repro.hardware.config import HardwareConfig
from repro.hardware.catalog import (
    HardwareCatalog,
    ndp_catalog,
    synthetic_catalog,
    matmul_catalog,
    uniform_scaling_catalog,
)
from repro.hardware.cost import (
    ResourceCostModel,
    resource_footprint,
    rank_by_efficiency,
)

__all__ = [
    "HardwareConfig",
    "HardwareCatalog",
    "ndp_catalog",
    "synthetic_catalog",
    "matmul_catalog",
    "uniform_scaling_catalog",
    "ResourceCostModel",
    "resource_footprint",
    "rank_by_efficiency",
]
