"""Ordered catalogs of hardware configurations, including the paper's sets."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.hardware.config import HardwareConfig

__all__ = [
    "HardwareCatalog",
    "ndp_catalog",
    "synthetic_catalog",
    "matmul_catalog",
    "uniform_scaling_catalog",
]


class HardwareCatalog:
    """An ordered, indexable collection of :class:`HardwareConfig`.

    The catalog defines the bandit's arm space: arm index ``i`` always refers
    to the ``i``-th configuration in insertion order, so policies can work
    with integer arms while the rest of the system speaks in configurations.

    Parameters
    ----------
    configs:
        Configurations in arm order.  Names must be unique.
    """

    def __init__(self, configs: Iterable[HardwareConfig]):
        self._configs: List[HardwareConfig] = list(configs)
        if not self._configs:
            raise ValueError("a hardware catalog requires at least one configuration")
        names = [c.name for c in self._configs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate hardware names in catalog: {dupes}")
        self._by_name: Dict[str, int] = {c.name: i for i, c in enumerate(self._configs)}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self) -> Iterator[HardwareConfig]:
        return iter(self._configs)

    def __contains__(self, item: Union[str, HardwareConfig]) -> bool:
        if isinstance(item, HardwareConfig):
            return item.name in self._by_name
        return item in self._by_name

    def __getitem__(self, key: Union[int, str]) -> HardwareConfig:
        if isinstance(key, str):
            if key not in self._by_name:
                raise KeyError(f"no hardware named {key!r}; available: {self.names}")
            return self._configs[self._by_name[key]]
        return self._configs[int(key)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HardwareCatalog):
            return NotImplemented
        return self._configs == other._configs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HardwareCatalog({[c.name for c in self._configs]})"

    # ------------------------------------------------------------------ #
    @property
    def names(self) -> List[str]:
        """Configuration names in arm order."""
        return [c.name for c in self._configs]

    @property
    def configs(self) -> List[HardwareConfig]:
        """Configurations in arm order (a copy of the internal list)."""
        return list(self._configs)

    def index_of(self, item: Union[str, HardwareConfig]) -> int:
        """Return the arm index for a configuration or its name."""
        name = item.name if isinstance(item, HardwareConfig) else item
        if name not in self._by_name:
            raise KeyError(f"no hardware named {name!r}; available: {self.names}")
        return self._by_name[name]

    def subset(self, names: Sequence[str]) -> "HardwareCatalog":
        """A new catalog restricted to ``names`` (in the given order)."""
        return HardwareCatalog([self[name] for name in names])

    def add(self, config: HardwareConfig) -> "HardwareCatalog":
        """A new catalog with ``config`` appended."""
        return HardwareCatalog(self._configs + [config])

    def to_records(self) -> List[dict]:
        """Serialisable list of configuration dictionaries."""
        return [c.to_dict() for c in self._configs]

    @classmethod
    def from_records(cls, records: Sequence[dict]) -> "HardwareCatalog":
        """Inverse of :meth:`to_records`."""
        return cls([HardwareConfig.from_dict(r) for r in records])


# ---------------------------------------------------------------------- #
# Catalogs used by the paper's experiments
# ---------------------------------------------------------------------- #
def ndp_catalog() -> HardwareCatalog:
    """The National Data Platform triple used in Experiments 2 and 3 (BP3D).

    ``H0 = (2, 16), H1 = (3, 24), H2 = (4, 16)`` -- Section 4 of the paper.
    """
    return HardwareCatalog(
        [
            HardwareConfig("H0", cpus=2, memory_gb=16),
            HardwareConfig("H1", cpus=3, memory_gb=24),
            HardwareConfig("H2", cpus=4, memory_gb=16),
        ]
    )


def synthetic_catalog(n: int = 4) -> HardwareCatalog:
    """The synthetic catalog of Experiment 1 (Cycles).

    Four hardware settings whose runtime profiles present a *meaningful
    trade-off* (Figure 3 shows four clearly separated lines).  CPU counts
    double from 2 to 16 so per-task throughput differs by construction.
    """
    if n < 2:
        raise ValueError(f"a synthetic catalog needs at least 2 configurations, got {n}")
    configs = []
    for i in range(n):
        configs.append(
            HardwareConfig(
                name=f"H{i}",
                cpus=2 * (i + 1),
                memory_gb=8.0 * (i + 1),
                cpu_clock_ghz=2.5,
                labels={"tier": "synthetic"},
            )
        )
    return HardwareCatalog(configs)


def matmul_catalog() -> HardwareCatalog:
    """The five hardware options of Experiment 3 (matrix multiplication).

    The paper reports a random-guess accuracy of 0.2, i.e. five arms.  The
    configurations extend the NDP triple with two larger allocations so that
    the fully parallelised tiled kernel benefits from extra cores.
    """
    return HardwareCatalog(
        [
            HardwareConfig("H0", cpus=2, memory_gb=16),
            HardwareConfig("H1", cpus=3, memory_gb=24),
            HardwareConfig("H2", cpus=4, memory_gb=16),
            HardwareConfig("H3", cpus=6, memory_gb=32),
            HardwareConfig("H4", cpus=8, memory_gb=32),
        ]
    )


def uniform_scaling_catalog(
    n: int,
    base_cpus: int = 2,
    base_memory_gb: float = 8.0,
    cpu_step: int = 2,
    memory_step_gb: float = 8.0,
) -> HardwareCatalog:
    """A parametric ladder of configurations for sweeps and property tests."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    configs = [
        HardwareConfig(
            name=f"H{i}",
            cpus=base_cpus + i * cpu_step,
            memory_gb=base_memory_gb + i * memory_step_gb,
        )
        for i in range(n)
    ]
    return HardwareCatalog(configs)
