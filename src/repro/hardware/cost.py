"""Resource-efficiency scoring used by tolerant selection.

Algorithm 1's exploitation branch does not simply pick the estimated-fastest
hardware: it builds the tolerance threshold ``R_limit`` and, among all
configurations whose estimated runtime is within the threshold, chooses "the
one with the most resource efficiency".  The paper does not pin down a single
formula, so this module provides a configurable :class:`ResourceCostModel`
whose default matches the intuitive reading -- fewer CPUs and less memory are
"cheaper", so among near-equally-fast configurations the smallest allocation
wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hardware.catalog import HardwareCatalog
from repro.hardware.config import HardwareConfig

__all__ = ["ResourceCostModel", "resource_footprint", "rank_by_efficiency"]


def resource_footprint(config: HardwareConfig, cpu_weight: float = 1.0, memory_weight: float = 0.125, gpu_weight: float = 8.0) -> float:
    """A scalar "amount of resources" score (lower = more efficient to hold).

    The default weights express memory in CPU-equivalents (8 GiB ~ 1 CPU) and
    GPUs as 8 CPU-equivalents, which reproduces the orderings implied by the
    paper (H0=(2,16) is the most efficient NDP configuration, H1=(3,24) the
    middle one, H2=(4,16) uses the most CPU).
    """
    return (
        cpu_weight * config.cpus
        + memory_weight * config.memory_gb
        + gpu_weight * config.gpus
    )


@dataclass(frozen=True)
class ResourceCostModel:
    """Weighted resource footprint used to break ties toward efficient hardware.

    Parameters
    ----------
    cpu_weight, memory_weight, gpu_weight:
        Relative weights of each resource dimension.
    """

    cpu_weight: float = 1.0
    memory_weight: float = 0.125
    gpu_weight: float = 8.0

    def __post_init__(self) -> None:
        for name in ("cpu_weight", "memory_weight", "gpu_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")

    def footprint(self, config: HardwareConfig) -> float:
        """Scalar footprint of ``config`` (lower is more resource-efficient)."""
        return resource_footprint(
            config,
            cpu_weight=self.cpu_weight,
            memory_weight=self.memory_weight,
            gpu_weight=self.gpu_weight,
        )

    def occupancy_cost(self, config: HardwareConfig, seconds: float) -> float:
        """Footprint integrated over a run's duration (resource-seconds)."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return self.footprint(config) * seconds

    def node_footprint(self, cpus: int, memory_gb: float, gpus: int = 0) -> float:
        """Scalar footprint of a whole node's capacity.

        The same weights that price a pod's *allocation* price a node's
        *provisioned capacity*, so autoscaling cost (paying for a node from
        provision to drain, busy or idle) is directly comparable to the
        occupancy cost of the work it carried.
        """
        return self.cpu_weight * cpus + self.memory_weight * memory_gb + self.gpu_weight * gpus

    def node_occupancy_cost(self, cpus: int, memory_gb: float, seconds: float, gpus: int = 0) -> float:
        """A node's capacity footprint integrated over its provisioned lifetime.

        This is the autoscaler's cost hook: elastic capacity is charged for
        the full provision-to-drain interval in the same resource-second
        units as :meth:`occupancy_cost`.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return self.node_footprint(cpus, memory_gb, gpus) * seconds

    def most_efficient(self, candidates: Sequence[HardwareConfig]) -> HardwareConfig:
        """Return the candidate with the smallest footprint.

        Ties break toward fewer CPUs, then less memory, then name, so the
        choice is deterministic.
        """
        if not candidates:
            raise ValueError("candidates must be a non-empty sequence")
        return min(
            candidates,
            key=lambda c: (self.footprint(c), c.cpus, c.memory_gb, c.name),
        )

    def rank(self, catalog: HardwareCatalog | Sequence[HardwareConfig]) -> List[HardwareConfig]:
        """All configurations sorted from most to least resource-efficient."""
        configs = list(catalog)
        return sorted(
            configs,
            key=lambda c: (self.footprint(c), c.cpus, c.memory_gb, c.name),
        )


def rank_by_efficiency(catalog: HardwareCatalog | Sequence[HardwareConfig]) -> List[HardwareConfig]:
    """Rank configurations using the default :class:`ResourceCostModel`."""
    return ResourceCostModel().rank(catalog)
