"""Immutable description of a single hardware configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["HardwareConfig"]


@dataclass(frozen=True, order=False)
class HardwareConfig:
    """One hardware (Kubernetes resource) configuration.

    The paper describes configurations as ``H_n = (#cpus, memory)``; GPUs and
    clock speed are carried for the future-work extensions (Section 5 mentions
    incorporating GPU information) and for the cluster simulator's capacity
    accounting.

    Parameters
    ----------
    name:
        Identifier such as ``"H0"``.
    cpus:
        Number of CPU cores allocated to the application.
    memory_gb:
        Memory allocation in GiB.
    gpus:
        Number of GPUs (0 for every configuration in the paper).
    cpu_clock_ghz:
        Nominal per-core clock, used only by workload models that scale
        runtime with single-core speed.
    hourly_cost:
        Relative cost per hour of occupation; used for cost reporting in the
        examples.  When not supplied it defaults to a simple linear function
        of CPU and memory so catalogs remain usable without price sheets.
    labels:
        Arbitrary metadata (e.g. Kubernetes node labels, region).
    """

    name: str
    cpus: int
    memory_gb: float
    gpus: int = 0
    cpu_clock_ghz: float = 2.5
    hourly_cost: Optional[float] = None
    labels: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("hardware configuration requires a non-empty name")
        if int(self.cpus) <= 0:
            raise ValueError(f"cpus must be a positive integer, got {self.cpus}")
        if float(self.memory_gb) <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")
        if int(self.gpus) < 0:
            raise ValueError(f"gpus must be non-negative, got {self.gpus}")
        if float(self.cpu_clock_ghz) <= 0:
            raise ValueError(f"cpu_clock_ghz must be positive, got {self.cpu_clock_ghz}")
        object.__setattr__(self, "cpus", int(self.cpus))
        object.__setattr__(self, "gpus", int(self.gpus))
        object.__setattr__(self, "memory_gb", float(self.memory_gb))
        object.__setattr__(self, "cpu_clock_ghz", float(self.cpu_clock_ghz))
        if self.hourly_cost is not None and float(self.hourly_cost) < 0:
            raise ValueError(f"hourly_cost must be non-negative, got {self.hourly_cost}")

    # ------------------------------------------------------------------ #
    @property
    def cost_per_hour(self) -> float:
        """Hourly cost; defaults to ``0.05·cpus + 0.01·memory_gb + 0.5·gpus``."""
        if self.hourly_cost is not None:
            return float(self.hourly_cost)
        return 0.05 * self.cpus + 0.01 * self.memory_gb + 0.5 * self.gpus

    @property
    def compute_capacity(self) -> float:
        """Aggregate compute throughput proxy: ``cpus * cpu_clock_ghz``."""
        return self.cpus * self.cpu_clock_ghz

    def as_tuple(self) -> tuple:
        """The paper's ``(#cpus, memory)`` shorthand."""
        return (self.cpus, self.memory_gb)

    def to_dict(self) -> Dict[str, Any]:
        """Serialisable dictionary representation."""
        return {
            "name": self.name,
            "cpus": self.cpus,
            "memory_gb": self.memory_gb,
            "gpus": self.gpus,
            "cpu_clock_ghz": self.cpu_clock_ghz,
            "hourly_cost": self.hourly_cost,
            "labels": dict(self.labels),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HardwareConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            cpus=data["cpus"],
            memory_gb=data["memory_gb"],
            gpus=data.get("gpus", 0),
            cpu_clock_ghz=data.get("cpu_clock_ghz", 2.5),
            hourly_cost=data.get("hourly_cost"),
            labels=dict(data.get("labels", {})),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        gpu = f", {self.gpus} GPU" if self.gpus else ""
        return f"{self.name}({self.cpus} CPU, {self.memory_gb:g} GiB{gpu})"
