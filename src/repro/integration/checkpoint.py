"""Versioned whole-service checkpoints with bit-identical restore.

A serving deployment must survive process restarts without losing learned
state: the per-arm model matrices, the exploration policy's RNG position,
the ticket table (including still-pending tickets), and the run-history
ledger.  :func:`checkpoint_service` captures all of it into a
:class:`ServiceCheckpoint`; :func:`restore_service` rebuilds a
:class:`~repro.integration.recommender_service.RecommendationService` that
continues **bit-identically** -- the restored service produces the same
recommendations, observations and ticket ids as the original would have
(pinned by ``tests/test_service_checkpoint.py``).

Format (version 1)
------------------
A checkpoint is a pickled :class:`ServiceCheckpoint` with explicit fields:

* ``version`` -- format version; :func:`restore_service` refuses unknown
  versions instead of guessing.
* ``n_shards`` / ``n_replicas`` -- shard-map geometry (the consistent-hash
  ring is rebuilt deterministically from these).
* ``shard_payloads`` -- one pickle per :class:`ServiceShard`: the shard's
  recommenders (model matrices, policy/exploration state, reward configs),
  priorities, ticket table and published snapshots.
* ``facade_payload`` -- pickle of the cross-shard state: hardware catalog,
  application registry, run-history records, default tolerance, service
  seed, the application->shard and ticket->shard maps (the latter in global
  submission order).
* ``history_cursor`` -- ledger length at capture time; restore replays the
  ledger up to the cursor so a checkpoint taken mid-stream is exact.
* ``next_ticket`` -- the deterministic ticket counter.
* ``digest`` -- SHA-256 over the payloads; :meth:`ServiceCheckpoint.verify`
  rejects corrupted or truncated files.

Event logs are deliberately **not** checkpointed -- they are transient
observability state; pass a fresh ``log`` to :func:`restore_service`.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

from repro.utils.logging import EventLog, NullLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.integration.recommender_service import RecommendationService

__all__ = [
    "CHECKPOINT_VERSION",
    "ServiceCheckpoint",
    "checkpoint_service",
    "restore_service",
]

#: Current checkpoint format version.
CHECKPOINT_VERSION = 1

_PICKLE_PROTOCOL = 4


def _digest(version: int, facade_payload: bytes, shard_payloads: List[bytes]) -> str:
    hasher = hashlib.sha256()
    hasher.update(f"service-checkpoint-v{version}".encode("utf-8"))
    hasher.update(facade_payload)
    for payload in shard_payloads:
        hasher.update(payload)
    return hasher.hexdigest()


@dataclass
class ServiceCheckpoint:
    """One captured service state; see the module docstring for the format."""

    version: int
    n_shards: int
    n_replicas: int
    shard_payloads: List[bytes]
    facade_payload: bytes
    history_cursor: int
    next_ticket: int
    digest: str = ""

    def verify(self) -> None:
        """Raise ``ValueError`` on version mismatch or payload corruption."""
        if self.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {self.version}; this build "
                f"reads version {CHECKPOINT_VERSION}"
            )
        expected = _digest(self.version, self.facade_payload, self.shard_payloads)
        if self.digest != expected:
            raise ValueError(
                "checkpoint integrity check failed: payload digest "
                f"{expected[:12]}... does not match recorded {self.digest[:12]}..."
            )

    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Write the checkpoint to ``path`` (atomic via a temp file)."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(pickle.dumps(self, protocol=_PICKLE_PROTOCOL))
        tmp.replace(path)

    @classmethod
    def load(cls, path) -> "ServiceCheckpoint":
        """Read and :meth:`verify` a checkpoint from ``path``."""
        try:
            data = pickle.loads(Path(path).read_bytes())
        except Exception as exc:
            raise ValueError(f"{path} does not contain a service checkpoint") from exc
        if not isinstance(data, cls):
            raise ValueError(f"{path} does not contain a service checkpoint")
        data.verify()
        return data


def checkpoint_service(service: "RecommendationService") -> ServiceCheckpoint:
    """Capture ``service`` into a verified :class:`ServiceCheckpoint`."""
    shard_payloads = [
        pickle.dumps(shard, protocol=_PICKLE_PROTOCOL) for shard in service.shards
    ]
    facade_payload = pickle.dumps(
        {
            "catalog": service.catalog,
            "registry": service.registry,
            "history_records": list(service.history._records),
            "tolerance": service.tolerance,
            "seed": service._seed,
            "app_shard": dict(service._app_shard),
            "ticket_order": list(service._ticket_shard.items()),
        },
        protocol=_PICKLE_PROTOCOL,
    )
    checkpoint = ServiceCheckpoint(
        version=CHECKPOINT_VERSION,
        n_shards=service.shard_map.n_shards,
        n_replicas=service.shard_map.n_replicas,
        shard_payloads=shard_payloads,
        facade_payload=facade_payload,
        history_cursor=len(service.history),
        next_ticket=service._next_ticket,
        digest="",
    )
    checkpoint.digest = _digest(
        checkpoint.version, checkpoint.facade_payload, checkpoint.shard_payloads
    )
    return checkpoint


def restore_service(
    checkpoint: ServiceCheckpoint, log: Optional[EventLog] = None
) -> "RecommendationService":
    """Rebuild a service from ``checkpoint``; continues bit-identically.

    ``log`` attaches a fresh event log to the restored service (logs are not
    part of the checkpointed state).
    """
    from repro.integration.ndp import RunHistoryStore
    from repro.integration.recommender_service import RecommendationService
    from repro.integration.sharding import ShardMap

    checkpoint.verify()
    facade = pickle.loads(checkpoint.facade_payload)
    service = RecommendationService.__new__(RecommendationService)
    service.catalog = facade["catalog"]
    service.registry = facade["registry"]
    history = RunHistoryStore()
    history.extend(facade["history_records"][: checkpoint.history_cursor])
    service.history = history
    service.tolerance = facade["tolerance"]
    service._seed = facade["seed"]
    service.log = log if log is not None else NullLog()
    service.shard_map = ShardMap(checkpoint.n_shards, n_replicas=checkpoint.n_replicas)
    service._shards = [pickle.loads(payload) for payload in checkpoint.shard_payloads]
    service._app_shard = dict(facade["app_shard"])
    service._ticket_shard = dict(facade["ticket_order"])
    service._next_ticket = int(checkpoint.next_ticket)
    return service
