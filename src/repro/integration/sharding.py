"""Sharded serving core behind the :class:`RecommendationService` facade.

A platform serving recommendations to many applications cannot keep every
application's recommender behind one lock: a heavy tenant's model refit would
stall everyone else's requests.  The serving refactor therefore splits the
service state into per-application **shards**:

* :class:`ShardMap` assigns applications to ``n_shards`` shards by
  *consistent hashing* (a ring of virtual nodes per shard), so the mapping is
  deterministic across processes and runs, roughly balanced, and stable --
  growing the shard count relocates only the applications that land on the
  new shard's ring points instead of reshuffling everything.
* :class:`ServiceShard` owns the recommenders, priorities, workflow-ticket
  table and published model snapshots of its applications.  Shards share
  nothing; any two shards can serve requests concurrently (the load harness
  exploits exactly this).

The facade (:class:`~repro.integration.recommender_service.RecommendationService`)
keeps the cross-shard concerns -- the application registry, the run-history
ledger, deterministic ticket-id issue -- and routes every per-application
call to the owning shard, so the sharded service is *bit-identical* to the
single-process implementation it replaced (pinned against
``benchmarks/service_parity_reference.json`` for every shard count).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.banditware import BanditWare, ModelSnapshot, Recommendation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.integration.recommender_service import WorkflowTicket

__all__ = ["ShardMap", "ServiceShard"]


class ShardMap:
    """Consistent-hash assignment of application names to shards.

    Each shard contributes ``n_replicas`` virtual points to a hash ring; an
    application belongs to the shard owning the first ring point at or after
    the application's own hash.  MD5 (stable across processes and Python
    versions, unlike the salted builtin ``hash``) keeps the mapping
    deterministic, which the checkpoint format and the process-parallel load
    harness both rely on.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1).
    n_replicas:
        Virtual ring points per shard; more points mean better balance at a
        small construction cost.
    """

    def __init__(self, n_shards: int, n_replicas: int = 64):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        self.n_shards = int(n_shards)
        self.n_replicas = int(n_replicas)
        points: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.n_replicas):
                points.append((self._hash(f"shard-{shard}:vnode-{replica}"), shard))
        points.sort()
        self._ring_hashes = [point for point, _ in points]
        self._ring_shards = [shard for _, shard in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")

    # ------------------------------------------------------------------ #
    def shard_for(self, application: str) -> int:
        """The shard owning ``application`` (deterministic)."""
        if self.n_shards == 1:
            return 0
        index = bisect_right(self._ring_hashes, self._hash(str(application)))
        if index == len(self._ring_hashes):  # wrap around the ring
            index = 0
        return self._ring_shards[index]

    def assignments(self, applications: Iterable[str]) -> Dict[int, List[str]]:
        """``{shard_id: [applications...]}`` for every shard (possibly empty)."""
        out: Dict[int, List[str]] = {shard: [] for shard in range(self.n_shards)}
        for application in applications:
            out[self.shard_for(application)].append(application)
        return out

    def __len__(self) -> int:
        return self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ShardMap(n_shards={self.n_shards}, n_replicas={self.n_replicas})"


class ServiceShard:
    """One shard's worth of service state: recommenders, tickets, snapshots.

    A shard is a self-contained unit -- it can be pickled into a worker
    process, serve its applications there, and be pickled back for a
    checkpoint -- and deliberately knows nothing about the registry, the
    run-history ledger or ticket-id issue, which stay cross-shard concerns
    of the facade.
    """

    def __init__(self, shard_id: int):
        self.shard_id = int(shard_id)
        self._recommenders: Dict[str, BanditWare] = {}
        self._priorities: Dict[str, int] = {}
        self._tickets: Dict[str, "WorkflowTicket"] = {}
        # Published copy-on-write read snapshots, keyed by application.
        self._snapshots: Dict[str, ModelSnapshot] = {}

    # ------------------------------------------------------------------ #
    # Applications
    # ------------------------------------------------------------------ #
    @property
    def applications(self) -> List[str]:
        """Applications owned by this shard, in registration order."""
        return list(self._recommenders)

    def adopt_application(self, name: str, recommender: BanditWare, priority: int = 0) -> None:
        """Take ownership of one application's recommender."""
        self._recommenders[name] = recommender
        self._priorities[name] = int(priority)

    def owns_application(self, name: str) -> bool:
        return name in self._recommenders

    def recommender_for(self, name: str) -> BanditWare:
        return self._recommenders[name]

    def priority_for(self, name: str) -> int:
        return self._priorities[name]

    # ------------------------------------------------------------------ #
    # Serving paths
    # ------------------------------------------------------------------ #
    def recommend(self, application: str, features: Dict[str, float]) -> Recommendation:
        return self._recommenders[application].recommend(features)

    def recommend_batch(
        self, application: str, features_batch: Sequence[Dict[str, float]]
    ) -> List[Recommendation]:
        return self._recommenders[application].recommend_batch(list(features_batch))

    def observe(
        self,
        application: str,
        features: Dict[str, float],
        hardware,
        runtime_seconds: float,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> None:
        self._recommenders[application].observe(
            features,
            hardware,
            runtime_seconds,
            queue_seconds=queue_seconds,
            slowdown=slowdown,
        )

    def observe_batch(
        self,
        application: str,
        features_batch: Sequence[Dict[str, float]],
        hardware: Sequence,
        runtimes_seconds: Sequence[float],
        queues_seconds: Optional[Sequence[float]] = None,
        slowdowns: Optional[Sequence[Optional[float]]] = None,
    ) -> None:
        self._recommenders[application].observe_batch(
            features_batch,
            hardware,
            runtimes_seconds,
            queues_seconds=queues_seconds,
            slowdowns=slowdowns,
        )

    def snapshot_for(self, application: str) -> ModelSnapshot:
        """The application's current read snapshot (copy-on-write).

        The cached snapshot is republished only when the recommender's
        mutation counter moved; readers holding a previously returned
        snapshot keep their consistent (immutable) view.
        """
        recommender = self._recommenders[application]
        cached = self._snapshots.get(application)
        if cached is None or cached.version != recommender.version:
            cached = recommender.snapshot()
            self._snapshots[application] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Ticket table
    # ------------------------------------------------------------------ #
    def add_ticket(self, ticket: "WorkflowTicket") -> None:
        self._tickets[ticket.ticket_id] = ticket

    def has_ticket(self, ticket_id: str) -> bool:
        return ticket_id in self._tickets

    def ticket(self, ticket_id: str) -> "WorkflowTicket":
        return self._tickets[ticket_id]

    @property
    def tickets(self) -> Dict[str, "WorkflowTicket"]:
        """The shard's ticket table (live reference, keyed by ticket id)."""
        return self._tickets

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ServiceShard(id={self.shard_id}, applications={self.applications}, "
            f"tickets={len(self._tickets)})"
        )
