"""The recommendation service wiring BanditWare to the platform and the cluster."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.simulator import ClusterSimulator
from repro.core.banditware import BanditWare, Recommendation
from repro.core.rewards import RewardConfig
from repro.core.selection import ToleranceConfig
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.integration.ndp import ApplicationRegistry, RunHistoryStore
from repro.utils.logging import EventLog, NullLog
from repro.utils.rng import SeedLike
from repro.workloads.base import RunRecord

__all__ = ["WorkflowTicket", "RecommendationService"]


@dataclass
class WorkflowTicket:
    """A submitted workflow awaiting completion.

    Attributes
    ----------
    ticket_id:
        Opaque identifier returned by :meth:`RecommendationService.submit_workflow`.
    application:
        Application the workflow belongs to.
    features:
        The workflow's context features.
    recommendation:
        BanditWare's recommendation for this workflow.
    priority:
        Priority class inherited from the application's registration; the
        cluster's priority scheduler may use it for preemption.
    completed:
        Whether :meth:`RecommendationService.complete_workflow` has been called.
    observed_runtime:
        The runtime reported at completion, if any.
    observed_queue_seconds:
        The capacity-wait reported at completion, if any.
    observed_slowdown:
        Observed/planned runtime ratio reported at completion, if the
        execution substrate measures interference (1.0 = the run was not
        perturbed by co-located tenants).
    """

    ticket_id: str
    application: str
    features: Dict[str, float]
    recommendation: Recommendation
    priority: int = 0
    completed: bool = False
    observed_runtime: Optional[float] = None
    observed_queue_seconds: Optional[float] = None
    observed_slowdown: Optional[float] = None


class RecommendationService:
    """Per-application BanditWare recommenders behind a platform-style API.

    The service owns one :class:`~repro.core.BanditWare` instance per
    registered application (each application has its own feature space and its
    own runtime behaviour), a shared hardware catalog, the run-history store,
    and optionally a cluster backend used by :meth:`run_workflow` to execute
    the recommendation end to end.

    Parameters
    ----------
    catalog:
        Hardware configurations the platform can allocate.
    registry:
        Application registry (created empty when omitted).
    history:
        Run-history store (created empty when omitted).
    tolerance:
        Default tolerance configuration applied to every application's
        recommender.
    seed:
        Seed shared by the per-application recommenders' exploration.
    log:
        Optional event log of service decisions.
    """

    def __init__(
        self,
        catalog: HardwareCatalog,
        registry: Optional[ApplicationRegistry] = None,
        history: Optional[RunHistoryStore] = None,
        tolerance: Optional[ToleranceConfig] = None,
        seed: SeedLike = None,
        log: Optional[EventLog] = None,
    ):
        self.catalog = catalog
        self.registry = registry or ApplicationRegistry()
        self.history = history or RunHistoryStore()
        self.tolerance = tolerance or ToleranceConfig()
        self._seed = seed
        self.log = log if log is not None else NullLog()
        self._recommenders: Dict[str, BanditWare] = {}
        self._priorities: Dict[str, int] = {}
        self._tickets: Dict[str, WorkflowTicket] = {}
        self._ticket_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    def register_application(
        self,
        name: str,
        owner: str,
        feature_names: Sequence[str],
        description: str = "",
        warm_start_history: bool = True,
        catalog: Optional[HardwareCatalog] = None,
        tolerance: Optional[ToleranceConfig] = None,
        reward: Optional[RewardConfig] = None,
        priority: int = 0,
    ) -> BanditWare:
        """Register an application and create its recommender.

        When ``warm_start_history`` is true and the history store already
        contains runs of this application, they seed the recommender's per-arm
        models before any online recommendation is made.

        ``catalog`` restricts the application's arm space to a subset of the
        platform's hardware (different applications are eligible for
        different allocations on a shared cluster); ``tolerance`` overrides
        the service-wide tolerance for this application only.  Both default
        to the service-level settings.  ``reward`` selects the application's
        observation shaping (e.g. the queue-aware ``queue_inclusive`` mode);
        ``priority`` is the priority class stamped on the application's
        workflow tickets for priority/preemption scheduling.
        """
        info = self.registry.register(name, owner, feature_names, description)
        recommender = BanditWare(
            catalog=catalog if catalog is not None else self.catalog,
            feature_names=list(info.feature_names),
            tolerance=tolerance if tolerance is not None else self.tolerance,
            seed=self._seed,
            reward=reward,
        )
        self._priorities[name] = int(priority)
        if warm_start_history and self.history.records_for(name):
            frame = self.history.frame_for(name)
            ingested = recommender.warm_start(frame)
            self.log.record("service", "warm_start", application=name, rows=ingested)
        self._recommenders[name] = recommender
        self.log.record("service", "application_registered", application=name, owner=owner)
        return recommender

    def recommender_for(self, application: str) -> BanditWare:
        """The BanditWare instance serving one application."""
        if application not in self._recommenders:
            raise KeyError(
                f"application {application!r} has no recommender; register it first"
            )
        return self._recommenders[application]

    def priority_for(self, application: str) -> int:
        """The priority class of one registered application."""
        if application not in self._priorities:
            raise KeyError(
                f"application {application!r} has no recommender; register it first"
            )
        return self._priorities[application]

    # ------------------------------------------------------------------ #
    def submit_workflow(self, application: str, features: Dict[str, float]) -> WorkflowTicket:
        """Ask for a hardware recommendation for one incoming workflow."""
        recommender = self.recommender_for(application)
        recommendation = recommender.recommend(features)
        ticket = WorkflowTicket(
            ticket_id=f"wf-{next(self._ticket_counter):06d}",
            application=application,
            features={k: float(v) for k, v in features.items()},
            recommendation=recommendation,
            priority=self._priorities.get(application, 0),
        )
        self._tickets[ticket.ticket_id] = ticket
        self.log.record(
            "service",
            "recommendation",
            ticket=ticket.ticket_id,
            application=application,
            hardware=recommendation.hardware.name,
            explored=recommendation.explored,
        )
        return ticket

    def submit_workflows(
        self, application: str, features_batch: Sequence[Dict[str, float]]
    ) -> List[WorkflowTicket]:
        """Batch recommendations for many workflows of one application.

        Decisions are identical to calling :meth:`submit_workflow` once per
        element in order (the recommender's policy state advances one step
        per workflow); tickets are issued in submission order.
        """
        recommender = self.recommender_for(application)
        recommendations = recommender.recommend_batch(list(features_batch))
        tickets: List[WorkflowTicket] = []
        for features, recommendation in zip(features_batch, recommendations):
            ticket = WorkflowTicket(
                ticket_id=f"wf-{next(self._ticket_counter):06d}",
                application=application,
                features={k: float(v) for k, v in features.items()},
                recommendation=recommendation,
                priority=self._priorities.get(application, 0),
            )
            self._tickets[ticket.ticket_id] = ticket
            tickets.append(ticket)
        self.log.record(
            "service",
            "recommendation_batch",
            application=application,
            tickets=len(tickets),
            hardware=[t.recommendation.hardware.name for t in tickets],
        )
        return tickets

    def complete_workflows(self, completions: Sequence[tuple]) -> None:
        """Report many completions at once.

        Each entry is ``(ticket_id, runtime_seconds)``,
        ``(ticket_id, runtime_seconds, queue_seconds)`` or
        ``(ticket_id, runtime_seconds, queue_seconds, slowdown)`` -- the
        optional third element reports the workflow's capacity wait for
        applications in the queue-aware reward mode; the optional fourth is
        the observed/planned runtime ratio an interference-aware cluster
        measured, which shapes the learning signal for applications in the
        ``slowdown_inclusive`` reward mode (and is recorded on the ticket
        for auditing either way -- in the default mode the recommender
        already learns the inflation through the observed runtime itself).

        Observations are fed to each application's recommender through
        :meth:`BanditWare.observe_batch` (one model refit per arm instead of
        one per ticket); the final recommender state, run history, and ticket
        bookkeeping are exactly those of sequential
        :meth:`complete_workflow` calls in the same order.

        The whole batch is validated -- tickets known, uncompleted and unique,
        runtimes and queue delays finite and non-negative, slowdowns finite
        and positive -- before *any* recommender mutates, so a rejected batch
        leaves every recommender and every ticket untouched and can safely be
        retried after fixing the bad entry.
        """
        resolved = []
        seen = set()
        for entry in completions:
            ticket_id, runtime_seconds = entry[0], entry[1]
            queue_seconds = entry[2] if len(entry) > 2 else 0.0
            slowdown = entry[3] if len(entry) > 3 else None
            if ticket_id not in self._tickets:
                raise KeyError(f"unknown ticket {ticket_id!r}")
            if ticket_id in seen:
                raise ValueError(f"ticket {ticket_id!r} appears twice in the batch")
            seen.add(ticket_id)
            ticket = self._tickets[ticket_id]
            if ticket.completed:
                raise ValueError(f"ticket {ticket_id!r} was already completed")
            runtime = float(runtime_seconds)
            if not math.isfinite(runtime) or runtime < 0:
                raise ValueError(
                    f"ticket {ticket_id!r} reports an invalid runtime {runtime_seconds!r}; "
                    "runtimes must be finite and non-negative"
                )
            queue = float(queue_seconds)
            if not math.isfinite(queue) or queue < 0:
                raise ValueError(
                    f"ticket {ticket_id!r} reports an invalid queue delay {queue_seconds!r}; "
                    "queue delays must be finite and non-negative"
                )
            if slowdown is not None:
                slowdown = float(slowdown)
                if not math.isfinite(slowdown) or slowdown <= 0:
                    raise ValueError(
                        f"ticket {ticket_id!r} reports an invalid slowdown {slowdown!r}; "
                        "slowdowns must be finite and positive"
                    )
            resolved.append((ticket, runtime, queue, slowdown))
        by_application: Dict[str, List[tuple]] = {}
        for entry in resolved:
            by_application.setdefault(entry[0].application, []).append(entry)
        for application, batch in by_application.items():
            recommender = self.recommender_for(application)
            recommender.observe_batch(
                [ticket.features for ticket, _, _, _ in batch],
                [ticket.recommendation.hardware for ticket, _, _, _ in batch],
                [runtime for _, runtime, _, _ in batch],
                queues_seconds=[queue for _, _, queue, _ in batch],
                slowdowns=[slowdown for _, _, _, slowdown in batch],
            )
        for ticket, runtime, queue, slowdown in resolved:
            ticket.completed = True
            ticket.observed_runtime = runtime
            ticket.observed_queue_seconds = queue
            ticket.observed_slowdown = slowdown
            self.history.add(
                RunRecord(
                    run_id=ticket.ticket_id,
                    application=ticket.application,
                    hardware=ticket.recommendation.hardware.name,
                    runtime_seconds=runtime,
                    features=ticket.features,
                )
            )
        self.log.record(
            "service", "workflow_completed_batch", tickets=len(resolved)
        )

    def complete_workflow(
        self,
        ticket_id: str,
        runtime_seconds: float,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> None:
        """Report a workflow's observed runtime so the recommender can learn.

        ``queue_seconds`` optionally reports the workflow's capacity wait;
        it shapes the learning signal only for applications registered with
        the queue-aware reward mode.  ``slowdown`` optionally reports the
        observed/planned runtime ratio measured by an interference-aware
        cluster; it shapes the signal only in the ``slowdown_inclusive``
        reward mode (and is recorded on the ticket for auditing).
        """
        if ticket_id not in self._tickets:
            raise KeyError(f"unknown ticket {ticket_id!r}")
        ticket = self._tickets[ticket_id]
        if ticket.completed:
            raise ValueError(f"ticket {ticket_id!r} was already completed")
        recommender = self.recommender_for(ticket.application)
        recommender.observe(
            ticket.features,
            ticket.recommendation.hardware,
            runtime_seconds,
            queue_seconds=queue_seconds,
            slowdown=slowdown,
        )
        ticket.completed = True
        ticket.observed_runtime = float(runtime_seconds)
        ticket.observed_queue_seconds = float(queue_seconds)
        ticket.observed_slowdown = float(slowdown) if slowdown is not None else None
        self.history.add(
            RunRecord(
                run_id=ticket.ticket_id,
                application=ticket.application,
                hardware=ticket.recommendation.hardware.name,
                runtime_seconds=float(runtime_seconds),
                features=ticket.features,
            )
        )
        self.log.record(
            "service",
            "workflow_completed",
            ticket=ticket_id,
            runtime=float(runtime_seconds),
        )

    def run_workflow(
        self,
        application: str,
        features: Dict[str, float],
        cluster: ClusterSimulator,
    ) -> WorkflowTicket:
        """End-to-end convenience: recommend, execute on the cluster, learn."""
        ticket = self.submit_workflow(application, features)
        run = cluster.run_workload(features, ticket.recommendation.hardware)
        self.complete_workflow(ticket.ticket_id, run.record.runtime_seconds)
        return ticket

    # ------------------------------------------------------------------ #
    def pending_tickets(self) -> List[WorkflowTicket]:
        """Tickets that have been submitted but not completed."""
        return [t for t in self._tickets.values() if not t.completed]

    def ticket(self, ticket_id: str) -> WorkflowTicket:
        if ticket_id not in self._tickets:
            raise KeyError(f"unknown ticket {ticket_id!r}")
        return self._tickets[ticket_id]
