"""The recommendation service wiring BanditWare to the platform and the cluster.

Since the sharded serving refactor the service is a **facade** over
per-application :class:`~repro.integration.sharding.ServiceShard`\\ s: a
:class:`~repro.integration.sharding.ShardMap` consistently hashes each
application onto one of ``n_shards`` independent shards, each owning its
applications' recommenders, ticket table and published model snapshots.
Cross-shard concerns stay here: the application registry, the run-history
ledger, deterministic ticket-id issue, and batch-completion pre-flight
validation that spans all shards before any shard mutates.

The facade API -- and its observable behaviour, decision for decision -- is
identical to the pre-refactor single-process service for every shard count
(pinned against ``benchmarks/service_parity_reference.json``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.simulator import ClusterSimulator
from repro.core.banditware import BanditWare, ModelSnapshot, Recommendation
from repro.core.rewards import RewardConfig
from repro.core.selection import ToleranceConfig
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.integration.ndp import ApplicationRegistry, RunHistoryStore
from repro.integration.sharding import ServiceShard, ShardMap
from repro.utils.logging import EventLog, NullLog
from repro.utils.rng import SeedLike
from repro.workloads.base import RunRecord

__all__ = ["WorkflowTicket", "RecommendationService"]


@dataclass
class WorkflowTicket:
    """A submitted workflow awaiting completion.

    Attributes
    ----------
    ticket_id:
        Opaque identifier returned by :meth:`RecommendationService.submit_workflow`.
    application:
        Application the workflow belongs to.
    features:
        The workflow's context features.
    recommendation:
        BanditWare's recommendation for this workflow.
    priority:
        Priority class inherited from the application's registration; the
        cluster's priority scheduler may use it for preemption.
    completed:
        Whether :meth:`RecommendationService.complete_workflow` has been called.
    observed_runtime:
        The runtime reported at completion, if any.
    observed_queue_seconds:
        The capacity-wait reported at completion, if any.
    observed_slowdown:
        Observed/planned runtime ratio reported at completion, if the
        execution substrate measures interference (1.0 = the run was not
        perturbed by co-located tenants).
    """

    ticket_id: str
    application: str
    features: Dict[str, float]
    recommendation: Recommendation
    priority: int = 0
    completed: bool = False
    observed_runtime: Optional[float] = None
    observed_queue_seconds: Optional[float] = None
    observed_slowdown: Optional[float] = None


class RecommendationService:
    """Per-application BanditWare recommenders behind a platform-style API.

    The service owns one :class:`~repro.core.BanditWare` instance per
    registered application (each application has its own feature space and its
    own runtime behaviour), a shared hardware catalog, the run-history store,
    and optionally a cluster backend used by :meth:`run_workflow` to execute
    the recommendation end to end.  Application state lives in ``n_shards``
    independent :class:`~repro.integration.sharding.ServiceShard`\\ s behind
    this facade; requests for different applications on different shards
    share no mutable state.

    Parameters
    ----------
    catalog:
        Hardware configurations the platform can allocate.
    registry:
        Application registry (created empty when omitted).
    history:
        Run-history store (created empty when omitted).
    tolerance:
        Default tolerance configuration applied to every application's
        recommender.
    seed:
        Seed shared by the per-application recommenders' exploration.
    log:
        Optional event log of service decisions.
    n_shards:
        Number of service shards applications are consistently hashed onto.
        The shard count never changes observable behaviour -- only which
        state can be served/updated concurrently.
    """

    def __init__(
        self,
        catalog: HardwareCatalog,
        registry: Optional[ApplicationRegistry] = None,
        history: Optional[RunHistoryStore] = None,
        tolerance: Optional[ToleranceConfig] = None,
        seed: SeedLike = None,
        log: Optional[EventLog] = None,
        n_shards: int = 1,
    ):
        self.catalog = catalog
        self.registry = registry or ApplicationRegistry()
        self.history = history or RunHistoryStore()
        self.tolerance = tolerance or ToleranceConfig()
        self._seed = seed
        self.log = log if log is not None else NullLog()
        self.shard_map = ShardMap(n_shards)
        self._shards = [ServiceShard(i) for i in range(self.shard_map.n_shards)]
        self._app_shard: Dict[str, int] = {}
        # Insertion-ordered ticket -> shard index; doubles as the global
        # submission order (pending_tickets preserves it).
        self._ticket_shard: Dict[str, int] = {}
        # Deterministic per-instance ticket counter.  (The seed repository
        # used a module-level itertools counter, which coupled independent
        # service instances' ticket sequences and broke checkpoint/restore;
        # a plain int is per-instance, deterministic and serialisable.)
        self._next_ticket = 1

    # ------------------------------------------------------------------ #
    # Shard topology
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of service shards."""
        return self.shard_map.n_shards

    @property
    def shards(self) -> List[ServiceShard]:
        """The shards themselves, in shard-id order (live references)."""
        return list(self._shards)

    def shard_for(self, application: str) -> int:
        """The shard id serving one registered application."""
        self.recommender_for(application)  # raises the canonical KeyError
        return self._app_shard[application]

    def shard_assignments(self) -> Dict[int, List[str]]:
        """``{shard_id: [applications...]}`` over all registered applications."""
        return {shard.shard_id: shard.applications for shard in self._shards}

    def _shard_of_ticket(self, ticket_id: str) -> ServiceShard:
        if ticket_id not in self._ticket_shard:
            raise KeyError(f"unknown ticket {ticket_id!r}")
        return self._shards[self._ticket_shard[ticket_id]]

    def _issue_ticket_id(self) -> str:
        ticket_id = f"wf-{self._next_ticket:06d}"
        self._next_ticket += 1
        return ticket_id

    # ------------------------------------------------------------------ #
    def register_application(
        self,
        name: str,
        owner: str,
        feature_names: Sequence[str],
        description: str = "",
        warm_start_history: bool = True,
        catalog: Optional[HardwareCatalog] = None,
        tolerance: Optional[ToleranceConfig] = None,
        reward: Optional[RewardConfig] = None,
        priority: int = 0,
    ) -> BanditWare:
        """Register an application and create its recommender.

        When ``warm_start_history`` is true and the history store already
        contains runs of this application, they seed the recommender's per-arm
        models before any online recommendation is made.

        ``catalog`` restricts the application's arm space to a subset of the
        platform's hardware (different applications are eligible for
        different allocations on a shared cluster); ``tolerance`` overrides
        the service-wide tolerance for this application only.  Both default
        to the service-level settings.  ``reward`` selects the application's
        observation shaping (e.g. the queue-aware ``queue_inclusive`` mode);
        ``priority`` is the priority class stamped on the application's
        workflow tickets for priority/preemption scheduling.

        The application is consistently hashed onto one of the service's
        shards, which owns its recommender and tickets from then on.
        """
        info = self.registry.register(name, owner, feature_names, description)
        recommender = BanditWare(
            catalog=catalog if catalog is not None else self.catalog,
            feature_names=list(info.feature_names),
            tolerance=tolerance if tolerance is not None else self.tolerance,
            seed=self._seed,
            reward=reward,
        )
        shard_id = self.shard_map.shard_for(name)
        self._app_shard[name] = shard_id
        self._shards[shard_id].adopt_application(name, recommender, priority=priority)
        if warm_start_history and self.history.records_for(name):
            frame = self.history.frame_for(name)
            ingested = recommender.warm_start(frame)
            self.log.record("service", "warm_start", application=name, rows=ingested)
        self.log.record("service", "application_registered", application=name, owner=owner)
        return recommender

    def recommender_for(self, application: str) -> BanditWare:
        """The BanditWare instance serving one application."""
        if application not in self._app_shard:
            raise KeyError(
                f"application {application!r} has no recommender; register it first"
            )
        return self._shards[self._app_shard[application]].recommender_for(application)

    def priority_for(self, application: str) -> int:
        """The priority class of one registered application."""
        if application not in self._app_shard:
            raise KeyError(
                f"application {application!r} has no recommender; register it first"
            )
        return self._shards[self._app_shard[application]].priority_for(application)

    # ------------------------------------------------------------------ #
    # Read path: copy-on-write snapshots
    # ------------------------------------------------------------------ #
    def model_snapshot(self, application: str) -> ModelSnapshot:
        """The application's current published model snapshot.

        Snapshots are immutable copies republished only after a mutation, so
        readers never observe a half-applied ``observe`` batch and never
        block on one (copy-on-write).
        """
        self.recommender_for(application)  # raises the canonical KeyError
        return self._shards[self._app_shard[application]].snapshot_for(application)

    def predict_runtimes(self, application: str, features: Dict[str, float]) -> Dict[str, float]:
        """Estimated runtime of ``features`` on every arm, from the snapshot.

        This is the lock-free read path: predictions come from the
        application's published :class:`~repro.core.ModelSnapshot`, not from
        the live models.
        """
        return self.model_snapshot(application).predict_runtimes(features)

    # ------------------------------------------------------------------ #
    def submit_workflow(self, application: str, features: Dict[str, float]) -> WorkflowTicket:
        """Ask for a hardware recommendation for one incoming workflow."""
        self.recommender_for(application)  # raises the canonical KeyError
        shard = self._shards[self._app_shard[application]]
        recommendation = shard.recommend(application, features)
        ticket = WorkflowTicket(
            ticket_id=self._issue_ticket_id(),
            application=application,
            features={k: float(v) for k, v in features.items()},
            recommendation=recommendation,
            priority=shard.priority_for(application),
        )
        shard.add_ticket(ticket)
        self._ticket_shard[ticket.ticket_id] = shard.shard_id
        self.log.record(
            "service",
            "recommendation",
            ticket=ticket.ticket_id,
            application=application,
            hardware=recommendation.hardware.name,
            explored=recommendation.explored,
        )
        return ticket

    def submit_workflows(
        self, application: str, features_batch: Sequence[Dict[str, float]]
    ) -> List[WorkflowTicket]:
        """Batch recommendations for many workflows of one application.

        Decisions are identical to calling :meth:`submit_workflow` once per
        element in order (the recommender's policy state advances one step
        per workflow); tickets are issued in submission order.
        """
        self.recommender_for(application)  # raises the canonical KeyError
        shard = self._shards[self._app_shard[application]]
        recommendations = shard.recommend_batch(application, list(features_batch))
        priority = shard.priority_for(application)
        tickets: List[WorkflowTicket] = []
        for features, recommendation in zip(features_batch, recommendations):
            ticket = WorkflowTicket(
                ticket_id=self._issue_ticket_id(),
                application=application,
                features={k: float(v) for k, v in features.items()},
                recommendation=recommendation,
                priority=priority,
            )
            shard.add_ticket(ticket)
            self._ticket_shard[ticket.ticket_id] = shard.shard_id
            tickets.append(ticket)
        self.log.record(
            "service",
            "recommendation_batch",
            application=application,
            tickets=len(tickets),
            hardware=[t.recommendation.hardware.name for t in tickets],
        )
        return tickets

    def complete_workflows(self, completions: Sequence[tuple]) -> None:
        """Report many completions at once.

        Each entry is ``(ticket_id, runtime_seconds)``,
        ``(ticket_id, runtime_seconds, queue_seconds)`` or
        ``(ticket_id, runtime_seconds, queue_seconds, slowdown)`` -- the
        optional third element reports the workflow's capacity wait for
        applications in the queue-aware reward mode; the optional fourth is
        the observed/planned runtime ratio an interference-aware cluster
        measured, which shapes the learning signal for applications in the
        ``slowdown_inclusive`` reward mode (and is recorded on the ticket
        for auditing either way -- in the default mode the recommender
        already learns the inflation through the observed runtime itself).

        Observations are fed to each application's recommender through
        :meth:`BanditWare.observe_batch` (one model refit per arm instead of
        one per ticket); the final recommender state, run history, and ticket
        bookkeeping are exactly those of sequential
        :meth:`complete_workflow` calls in the same order.

        The whole batch is validated -- tickets known, uncompleted and unique,
        runtimes and queue delays finite and non-negative, slowdowns finite
        and positive -- before *any* shard mutates.  A batch may span every
        shard of the service; the pre-flight runs across all of them, so a
        rejected batch leaves every shard's recommenders and tickets
        untouched and can safely be retried after fixing the bad entry.
        """
        resolved = []
        seen = set()
        for entry in completions:
            ticket_id, runtime_seconds = entry[0], entry[1]
            queue_seconds = entry[2] if len(entry) > 2 else 0.0
            slowdown = entry[3] if len(entry) > 3 else None
            shard = self._shard_of_ticket(ticket_id)  # raises on unknown ids
            if ticket_id in seen:
                raise ValueError(f"ticket {ticket_id!r} appears twice in the batch")
            seen.add(ticket_id)
            ticket = shard.ticket(ticket_id)
            if ticket.completed:
                raise ValueError(
                    f"ticket {ticket_id!r} was already completed "
                    f"(observed runtime {ticket.observed_runtime}s); completions "
                    "are observed exactly once and double reports are rejected"
                )
            runtime = float(runtime_seconds)
            if not math.isfinite(runtime) or runtime < 0:
                raise ValueError(
                    f"ticket {ticket_id!r} reports an invalid runtime {runtime_seconds!r}; "
                    "runtimes must be finite and non-negative"
                )
            queue = float(queue_seconds)
            if not math.isfinite(queue) or queue < 0:
                raise ValueError(
                    f"ticket {ticket_id!r} reports an invalid queue delay {queue_seconds!r}; "
                    "queue delays must be finite and non-negative"
                )
            if slowdown is not None:
                slowdown = float(slowdown)
                if not math.isfinite(slowdown) or slowdown <= 0:
                    raise ValueError(
                        f"ticket {ticket_id!r} reports an invalid slowdown {slowdown!r}; "
                        "slowdowns must be finite and positive"
                    )
            resolved.append((ticket, runtime, queue, slowdown))
        by_application: Dict[str, List[tuple]] = {}
        for entry in resolved:
            by_application.setdefault(entry[0].application, []).append(entry)
        for application, batch in by_application.items():
            shard = self._shards[self._app_shard[application]]
            shard.observe_batch(
                application,
                [ticket.features for ticket, _, _, _ in batch],
                [ticket.recommendation.hardware for ticket, _, _, _ in batch],
                [runtime for _, runtime, _, _ in batch],
                queues_seconds=[queue for _, _, queue, _ in batch],
                slowdowns=[slowdown for _, _, _, slowdown in batch],
            )
        for ticket, runtime, queue, slowdown in resolved:
            ticket.completed = True
            ticket.observed_runtime = runtime
            ticket.observed_queue_seconds = queue
            ticket.observed_slowdown = slowdown
            self.history.add(
                RunRecord(
                    run_id=ticket.ticket_id,
                    application=ticket.application,
                    hardware=ticket.recommendation.hardware.name,
                    runtime_seconds=runtime,
                    features=ticket.features,
                )
            )
        self.log.record(
            "service", "workflow_completed_batch", tickets=len(resolved)
        )

    def complete_workflow(
        self,
        ticket_id: str,
        runtime_seconds: float,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> None:
        """Report a workflow's observed runtime so the recommender can learn.

        ``queue_seconds`` optionally reports the workflow's capacity wait;
        it shapes the learning signal only for applications registered with
        the queue-aware reward mode.  ``slowdown`` optionally reports the
        observed/planned runtime ratio measured by an interference-aware
        cluster; it shapes the signal only in the ``slowdown_inclusive``
        reward mode (and is recorded on the ticket for auditing).

        Completing an already-completed ticket raises ``ValueError``: a
        double report would silently re-observe the runtime and skew the
        application's models.
        """
        shard = self._shard_of_ticket(ticket_id)
        ticket = shard.ticket(ticket_id)
        if ticket.completed:
            raise ValueError(
                f"ticket {ticket_id!r} was already completed "
                f"(observed runtime {ticket.observed_runtime}s); completions "
                "are observed exactly once and double reports are rejected"
            )
        shard.observe(
            ticket.application,
            ticket.features,
            ticket.recommendation.hardware,
            runtime_seconds,
            queue_seconds=queue_seconds,
            slowdown=slowdown,
        )
        ticket.completed = True
        ticket.observed_runtime = float(runtime_seconds)
        ticket.observed_queue_seconds = float(queue_seconds)
        ticket.observed_slowdown = float(slowdown) if slowdown is not None else None
        self.history.add(
            RunRecord(
                run_id=ticket.ticket_id,
                application=ticket.application,
                hardware=ticket.recommendation.hardware.name,
                runtime_seconds=float(runtime_seconds),
                features=ticket.features,
            )
        )
        self.log.record(
            "service",
            "workflow_completed",
            ticket=ticket_id,
            runtime=float(runtime_seconds),
        )

    def run_workflow(
        self,
        application: str,
        features: Dict[str, float],
        cluster: ClusterSimulator,
    ) -> WorkflowTicket:
        """End-to-end convenience: recommend, execute on the cluster, learn."""
        ticket = self.submit_workflow(application, features)
        run = cluster.run_workload(features, ticket.recommendation.hardware)
        self.complete_workflow(ticket.ticket_id, run.record.runtime_seconds)
        return ticket

    # ------------------------------------------------------------------ #
    def pending_tickets(self) -> List[WorkflowTicket]:
        """Tickets that have been submitted but not completed (submission order)."""
        out: List[WorkflowTicket] = []
        for ticket_id, shard_id in self._ticket_shard.items():
            ticket = self._shards[shard_id].ticket(ticket_id)
            if not ticket.completed:
                out.append(ticket)
        return out

    def ticket(self, ticket_id: str) -> WorkflowTicket:
        return self._shard_of_ticket(ticket_id).ticket(ticket_id)

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> "ServiceCheckpoint":
        """Snapshot the whole service into a versioned, restorable checkpoint.

        See :mod:`repro.integration.checkpoint` for the format.  The
        checkpoint captures every shard's state (recommender matrices and
        policy/exploration state, ticket table), the registry, the
        run-history ledger with its cursor, and the ticket counter;
        :func:`~repro.integration.checkpoint.restore_service` rebuilds a
        service that continues **bit-identically** to this one.
        """
        from repro.integration.checkpoint import checkpoint_service

        return checkpoint_service(self)

    def save_checkpoint(self, path) -> None:
        """Write :meth:`checkpoint` to ``path``."""
        self.checkpoint().save(path)

    @classmethod
    def restore(cls, checkpoint, log: Optional[EventLog] = None) -> "RecommendationService":
        """Rebuild a service from a :class:`ServiceCheckpoint` (or a path)."""
        from repro.integration.checkpoint import ServiceCheckpoint, restore_service

        if not hasattr(checkpoint, "shard_payloads"):
            checkpoint = ServiceCheckpoint.load(checkpoint)
        return restore_service(checkpoint, log=log)
