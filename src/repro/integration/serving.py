"""Request coalescing and admission control for the sharded serving layer.

Two serving-side mechanisms sit between raw traffic and the
:class:`~repro.integration.recommender_service.RecommendationService` facade:

* :class:`RequestBatcher` buffers incoming ``recommend`` and ``observe``
  requests and flushes them through the batched entry points
  (``submit_workflows`` / ``complete_workflows``) the core gained in PR 1.
  Per application the batched decision stream is **identical** to issuing
  the same calls one by one (``recommend_batch`` advances the policy one
  step per workflow; ``observe_batch`` refits once per arm with the same
  final state), so coalescing trades nothing but per-call overhead.
* :class:`AdmissionController` enforces bounded per-shard queues.  A full
  queue rejects the request with :class:`BackpressureError` carrying an
  explicit ``retry_after_seconds`` estimate -- requests are *never* silently
  dropped, and an admitted request is never evicted.

Both are synchronous building blocks: the event-driven load harness
(:mod:`repro.evaluation.service_load`) composes them into a full
arrival/queue/drain loop, and they behave identically under a real thread
per shard because shards share no mutable state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.integration.recommender_service import RecommendationService, WorkflowTicket

__all__ = ["BackpressureError", "ShardQueue", "AdmissionController", "RequestBatcher"]


class BackpressureError(RuntimeError):
    """A shard's admission queue is full; retry after ``retry_after_seconds``.

    Raised instead of silently dropping the request: the caller owns the
    retry decision, and the error carries everything needed to make it --
    the saturated shard, its queue depth/capacity, and the controller's
    estimate of when a slot frees up (queue depth over the shard's drain
    rate).
    """

    def __init__(
        self,
        shard_id: int,
        queue_depth: int,
        capacity: int,
        retry_after_seconds: float,
    ):
        self.shard_id = int(shard_id)
        self.queue_depth = int(queue_depth)
        self.capacity = int(capacity)
        self.retry_after_seconds = float(retry_after_seconds)
        super().__init__(
            f"shard {self.shard_id} admission queue is full "
            f"({self.queue_depth}/{self.capacity}); retry after "
            f"{self.retry_after_seconds:.3f}s"
        )


class ShardQueue:
    """A bounded FIFO admission queue for one shard, with traffic counters."""

    def __init__(self, shard_id: int, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.shard_id = int(shard_id)
        self.capacity = int(capacity)
        self._items: Deque = deque()
        self.admitted = 0
        self.rejected = 0
        self.drained = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item) -> None:
        """Enqueue one admitted request (the controller checks capacity)."""
        self._items.append(item)
        self.admitted += 1

    def pop_batch(self, max_batch: int) -> List:
        """Dequeue up to ``max_batch`` requests in FIFO order."""
        batch: List = []
        while self._items and len(batch) < max_batch:
            batch.append(self._items.popleft())
        self.drained += len(batch)
        return batch


class AdmissionController:
    """Bounded per-shard queues with explicit reject-with-retry-after.

    Parameters
    ----------
    n_shards:
        Number of shard queues to maintain (one per service shard).
    capacity:
        Maximum queued requests per shard.
    drain_rate_per_second:
        Estimated per-shard service rate used to compute
        ``retry_after_seconds`` on rejection.  When unknown, the controller
        reports the queue depth in "requests to drain" units (rate 1.0).
    """

    def __init__(
        self,
        n_shards: int,
        capacity: int = 256,
        drain_rate_per_second: Optional[float] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        rate = 1.0 if drain_rate_per_second is None else float(drain_rate_per_second)
        if not rate > 0:
            raise ValueError(f"drain_rate_per_second must be positive, got {rate}")
        self.drain_rate_per_second = rate
        self._queues = [ShardQueue(i, capacity) for i in range(int(n_shards))]

    @property
    def queues(self) -> List[ShardQueue]:
        return list(self._queues)

    def queue(self, shard_id: int) -> ShardQueue:
        return self._queues[shard_id]

    def depth(self, shard_id: int) -> int:
        return len(self._queues[shard_id])

    def admit(self, shard_id: int, item) -> None:
        """Admit ``item`` to the shard's queue or raise :class:`BackpressureError`.

        The contract is all-or-nothing: an admitted request sits in the
        queue until drained; a rejected request leaves no trace beyond the
        rejection counter.
        """
        queue = self._queues[shard_id]
        if queue.full:
            queue.rejected += 1
            raise BackpressureError(
                shard_id=shard_id,
                queue_depth=len(queue),
                capacity=queue.capacity,
                retry_after_seconds=len(queue) / self.drain_rate_per_second,
            )
        queue.push(item)

    def pop_batch(self, shard_id: int, max_batch: int) -> List:
        return self._queues[shard_id].pop_batch(max_batch)

    def stats(self) -> Dict[int, Dict[str, int]]:
        """Per-shard admitted/rejected/drained/depth counters."""
        return {
            q.shard_id: {
                "admitted": q.admitted,
                "rejected": q.rejected,
                "drained": q.drained,
                "depth": len(q),
            }
            for q in self._queues
        }


class RequestBatcher:
    """Coalesce recommend/observe traffic into the batched service entry points.

    Requests accumulate in submission order and flush through
    ``submit_workflows`` / ``complete_workflows`` grouped by application
    (first-occurrence order).  Per application the decisions are bit-identical
    to unbatched calls in the same relative order; what coalescing changes is
    only *when* the service sees the requests -- at :meth:`flush` -- and hence
    the interleaving of ticket ids across applications, which the facade
    contract deliberately leaves unspecified between applications.

    ``max_batch`` bounds memory: reaching it triggers an automatic flush.
    """

    def __init__(self, service: RecommendationService, max_batch: int = 64):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.max_batch = int(max_batch)
        self._recommend_buffer: List[Tuple[str, Dict[str, float]]] = []
        self._completion_buffer: List[tuple] = []
        self.flushes = 0

    # ------------------------------------------------------------------ #
    @property
    def pending_recommends(self) -> int:
        return len(self._recommend_buffer)

    @property
    def pending_completions(self) -> int:
        return len(self._completion_buffer)

    def enqueue_recommend(
        self, application: str, features: Dict[str, float]
    ) -> Optional[List[WorkflowTicket]]:
        """Buffer one recommendation request; auto-flush at ``max_batch``.

        Returns the flushed tickets when this enqueue triggered a flush,
        else ``None``.
        """
        self.service.recommender_for(application)  # fail fast on unknown apps
        self._recommend_buffer.append((application, dict(features)))
        if len(self._recommend_buffer) >= self.max_batch:
            return self.flush()
        return None

    def enqueue_completion(
        self,
        ticket_id: str,
        runtime_seconds: float,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> None:
        """Buffer one completion report for the next :meth:`flush`."""
        self._completion_buffer.append((ticket_id, runtime_seconds, queue_seconds, slowdown))

    # ------------------------------------------------------------------ #
    def flush(self) -> List[WorkflowTicket]:
        """Flush completions then recommendations; return new tickets in enqueue order.

        Completions flush first so a recommendation enqueued after a
        completion observes the updated models, matching the unbatched
        ordering of the two calls.  The whole completion batch is validated
        across shards before any mutation (the ``complete_workflows``
        contract), so a bad completion leaves the buffered batch intact and
        re-raisable after repair.
        """
        if self._completion_buffer:
            # Leave the buffer untouched until the batch is accepted: on a
            # validation error nothing has mutated and the caller may fix
            # the offending entry and flush again.
            self.service.complete_workflows(self._completion_buffer)
            self._completion_buffer = []
        tickets: List[Optional[WorkflowTicket]] = [None] * len(self._recommend_buffer)
        by_application: Dict[str, List[int]] = {}
        for index, (application, _) in enumerate(self._recommend_buffer):
            by_application.setdefault(application, []).append(index)
        for application, indices in by_application.items():
            batch = [self._recommend_buffer[i][1] for i in indices]
            for index, ticket in zip(indices, self.service.submit_workflows(application, batch)):
                tickets[index] = ticket
        self._recommend_buffer = []
        self.flushes += 1
        return [t for t in tickets if t is not None]
