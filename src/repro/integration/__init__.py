"""A simulated National Data Platform (NDP) integration layer.

The paper positions BanditWare as a service for the National Data Platform:
domain scientists register applications, past runs accumulate in a run-history
store, and the platform recommends the Kubernetes resource configuration for
the next run.  This package provides that service layer on top of the cluster
simulator so the end-to-end deployment story is executable:

* :class:`~repro.integration.ndp.ApplicationRegistry` and
  :class:`~repro.integration.ndp.RunHistoryStore` -- the platform-side
  bookkeeping (who owns which application, what has run where).
* :class:`~repro.integration.recommender_service.RecommendationService` --
  wires a :class:`~repro.core.BanditWare` instance per application to the
  registry, the history store and a cluster backend, exposing
  ``submit_workflow`` / ``complete_workflow`` calls shaped like the platform's
  API.
"""

from repro.integration.ndp import ApplicationInfo, ApplicationRegistry, RunHistoryStore
from repro.integration.recommender_service import RecommendationService, WorkflowTicket

__all__ = [
    "ApplicationInfo",
    "ApplicationRegistry",
    "RunHistoryStore",
    "RecommendationService",
    "WorkflowTicket",
]
