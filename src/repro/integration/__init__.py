"""A simulated National Data Platform (NDP) integration layer.

The paper positions BanditWare as a service for the National Data Platform:
domain scientists register applications, past runs accumulate in a run-history
store, and the platform recommends the Kubernetes resource configuration for
the next run.  This package provides that service layer on top of the cluster
simulator so the end-to-end deployment story is executable:

* :class:`~repro.integration.ndp.ApplicationRegistry` and
  :class:`~repro.integration.ndp.RunHistoryStore` -- the platform-side
  bookkeeping (who owns which application, what has run where).
* :class:`~repro.integration.recommender_service.RecommendationService` --
  wires a :class:`~repro.core.BanditWare` instance per application to the
  registry, the history store and a cluster backend, exposing
  ``submit_workflow`` / ``complete_workflow`` calls shaped like the platform's
  API.
* :class:`~repro.integration.sharding.ShardMap` /
  :class:`~repro.integration.sharding.ServiceShard` -- the sharded serving
  core behind the facade: consistent-hash assignment of applications to
  independent shards.
* :class:`~repro.integration.serving.RequestBatcher` /
  :class:`~repro.integration.serving.AdmissionController` -- request
  coalescing into the batched entry points and bounded-queue backpressure
  (:class:`~repro.integration.serving.BackpressureError`).
* :class:`~repro.integration.checkpoint.ServiceCheckpoint` -- versioned
  whole-service durability with bit-identical restore.
"""

from repro.integration.checkpoint import (
    CHECKPOINT_VERSION,
    ServiceCheckpoint,
    checkpoint_service,
    restore_service,
)
from repro.integration.ndp import ApplicationInfo, ApplicationRegistry, RunHistoryStore
from repro.integration.recommender_service import RecommendationService, WorkflowTicket
from repro.integration.serving import (
    AdmissionController,
    BackpressureError,
    RequestBatcher,
    ShardQueue,
)
from repro.integration.sharding import ServiceShard, ShardMap

__all__ = [
    "ApplicationInfo",
    "ApplicationRegistry",
    "RunHistoryStore",
    "RecommendationService",
    "WorkflowTicket",
    "ShardMap",
    "ServiceShard",
    "RequestBatcher",
    "AdmissionController",
    "BackpressureError",
    "ShardQueue",
    "CHECKPOINT_VERSION",
    "ServiceCheckpoint",
    "checkpoint_service",
    "restore_service",
]
