"""Platform-side bookkeeping: application registry and run-history store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog
from repro.workloads.base import RunRecord, records_to_frame

__all__ = ["ApplicationInfo", "ApplicationRegistry", "RunHistoryStore"]


@dataclass(frozen=True)
class ApplicationInfo:
    """Metadata describing one registered application.

    Attributes
    ----------
    name:
        Unique application name (e.g. ``"burnpro3d"``).
    owner:
        The registering user or project.
    feature_names:
        Workflow features the application reports with every submission; these
        become BanditWare's context vector.
    description:
        Free-form description shown in the catalog.
    """

    name: str
    owner: str
    feature_names: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be non-empty")
        if not self.feature_names:
            raise ValueError(f"application {self.name!r} must declare at least one feature")


class ApplicationRegistry:
    """Registry of applications known to the platform."""

    def __init__(self) -> None:
        self._applications: Dict[str, ApplicationInfo] = {}

    def register(
        self,
        name: str,
        owner: str,
        feature_names: Sequence[str],
        description: str = "",
    ) -> ApplicationInfo:
        """Register a new application; raises if the name is already taken."""
        if name in self._applications:
            raise ValueError(f"application {name!r} is already registered")
        info = ApplicationInfo(
            name=name,
            owner=owner,
            feature_names=tuple(str(f) for f in feature_names),
            description=description,
        )
        self._applications[name] = info
        return info

    def get(self, name: str) -> ApplicationInfo:
        if name not in self._applications:
            raise KeyError(
                f"application {name!r} is not registered; known: {sorted(self._applications)}"
            )
        return self._applications[name]

    def __contains__(self, name: str) -> bool:
        return name in self._applications

    def __len__(self) -> int:
        return len(self._applications)

    def list_applications(self) -> List[ApplicationInfo]:
        """All registered applications, sorted by name."""
        return [self._applications[name] for name in sorted(self._applications)]


class RunHistoryStore:
    """Append-only store of completed runs, queryable per application."""

    def __init__(self) -> None:
        self._records: List[RunRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: RunRecord) -> None:
        """Append one completed run."""
        self._records.append(record)

    def extend(self, records: Sequence[RunRecord]) -> None:
        """Append many completed runs."""
        for record in records:
            self.add(record)

    def records_for(self, application: str) -> List[RunRecord]:
        """All runs of one application, in insertion order."""
        return [r for r in self._records if r.application == application]

    def frame_for(self, application: str) -> DataFrame:
        """Run history of one application as a :class:`DataFrame`."""
        return records_to_frame(self.records_for(application))

    def total_runtime(self, application: Optional[str] = None) -> float:
        """Total observed runtime (seconds), optionally restricted to one application."""
        records = self._records if application is None else self.records_for(application)
        return float(sum(r.runtime_seconds for r in records))

    def hardware_usage(self, application: Optional[str] = None) -> Dict[str, int]:
        """Run counts per hardware configuration."""
        records = self._records if application is None else self.records_for(application)
        counts: Dict[str, int] = {}
        for record in records:
            counts[record.hardware] = counts.get(record.hardware, 0) + 1
        return counts
