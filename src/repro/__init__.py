"""BanditWare reproduction: contextual-bandit hardware recommendation.

This package reproduces *BanditWare: A Contextual Bandit-based Framework for
Hardware Prediction* (Coleman et al., HPDC 2025).  The public API is organised
around:

* :class:`repro.BanditWare` -- the online recommender (Algorithm 1: decaying
  contextual ε-greedy with tolerant selection over per-hardware linear
  runtime models);
* :mod:`repro.hardware` -- hardware configurations and catalogs (the arms);
* :mod:`repro.workloads` -- the three application models from the paper
  (Cycles, BurnPro3D, matrix multiplication) plus generic synthetic
  workloads;
* :mod:`repro.cluster` -- a Kubernetes-like execution simulator standing in
  for the National Data Platform;
* :mod:`repro.baselines` -- the offline linear-regression recommender and
  oracle references the paper compares against;
* :mod:`repro.evaluation` -- the replicated online-simulation harness behind
  every figure;
* :mod:`repro.data` -- deterministic builders of the three evaluation
  datasets;
* :mod:`repro.integration` -- an NDP-style recommendation service tying the
  pieces together.

Quickstart::

    from repro import BanditWare, ndp_catalog

    bw = BanditWare(catalog=ndp_catalog(), feature_names=["area"], seed=0)
    rec = bw.recommend({"area": 1.5e6})
    bw.observe({"area": 1.5e6}, rec.hardware, runtime_seconds=41_230.0)
"""

from repro.core import (
    BanditWare,
    DecayingEpsilonGreedyPolicy,
    GreedyPolicy,
    LeastSquaresModel,
    LinUCBPolicy,
    RandomPolicy,
    Recommendation,
    RecursiveLeastSquaresModel,
    RidgeModel,
    ThompsonSamplingPolicy,
    ToleranceConfig,
    TolerantSelector,
)
from repro.dataframe import DataFrame, Series, read_csv, write_csv
from repro.hardware import (
    HardwareCatalog,
    HardwareConfig,
    ResourceCostModel,
    matmul_catalog,
    ndp_catalog,
    synthetic_catalog,
)
from repro.workloads import (
    BurnPro3DWorkload,
    CyclesWorkload,
    LinearRuntimeWorkload,
    MatrixMultiplicationWorkload,
    TraceGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BanditWare",
    "Recommendation",
    "ToleranceConfig",
    "TolerantSelector",
    "DecayingEpsilonGreedyPolicy",
    "GreedyPolicy",
    "RandomPolicy",
    "LinUCBPolicy",
    "ThompsonSamplingPolicy",
    "LeastSquaresModel",
    "RidgeModel",
    "RecursiveLeastSquaresModel",
    # hardware
    "HardwareConfig",
    "HardwareCatalog",
    "ResourceCostModel",
    "ndp_catalog",
    "synthetic_catalog",
    "matmul_catalog",
    # workloads
    "CyclesWorkload",
    "BurnPro3DWorkload",
    "MatrixMultiplicationWorkload",
    "LinearRuntimeWorkload",
    "TraceGenerator",
    # dataframe
    "DataFrame",
    "Series",
    "read_csv",
    "write_csv",
]
