"""Command-line interface for the BanditWare reproduction.

The CLI wraps the library's main entry points so a user can regenerate the
paper's artefacts (and their own variations) without writing Python:

* ``repro list-experiments`` -- names and descriptions of the registered
  experiments (one per bandit figure of the paper).
* ``repro run-experiment <name>`` -- run one experiment and print the
  per-round RMSE/accuracy series plus the summary.
* ``repro list-scenarios`` -- the contention-scenario registry with one-line
  descriptions.
* ``repro run-contention --scenario <name>`` -- play a multi-tenant workflow
  stream through the queued cluster simulator and report queue delay,
  occupancy cost and queue-inclusive regret; ``--placement`` swaps the
  node-choice policy, ``--replications`` adds confidence bands.
* ``repro generate-dataset <cycles|bp3d|matmul> --output DIR`` -- materialise
  one of the synthetic datasets to a directory of CSV/JSON files.
* ``repro show-catalog <ndp|synthetic|matmul|gpu>`` -- print a hardware
  catalog with its resource-efficiency ordering.
* ``repro recommend --dataset DIR --features k=v ...`` -- warm-start a
  recommender from a saved dataset directory and print the recommendation for
  one workflow.
* ``repro run-service-load --mix <zipfian|hotspot|bursty>`` -- drive a
  skewed multi-application traffic mix through the sharded serving layer at
  one or more shard counts and report recommendations/sec, tail latency and
  backpressure counters.

Invoke either as ``python -m repro ...`` or via the installed ``repro``
console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.core import BanditWare, ToleranceConfig
from repro.data import (
    build_bp3d_dataset,
    build_cycles_dataset,
    build_matmul_dataset,
    load_run_history,
    save_dataset,
)
from repro.evaluation import (
    CONTENTION_SCENARIOS,
    EXPERIMENT_NAMES,
    build_experiment,
    build_scenario,
    format_contention_report,
    format_kernel_profile,
    format_metric_table,
    format_series,
    format_summary,
    run_experiment,
    run_scenario,
)
from repro.hardware import (
    ResourceCostModel,
    matmul_catalog,
    ndp_catalog,
    synthetic_catalog,
)
from repro.workloads import gpu_catalog

__all__ = ["main", "build_parser"]

_DATASET_BUILDERS = {
    "cycles": build_cycles_dataset,
    "bp3d": build_bp3d_dataset,
    "matmul": build_matmul_dataset,
}

_CATALOGS = {
    "ndp": ndp_catalog,
    "synthetic": lambda: synthetic_catalog(4),
    "matmul": matmul_catalog,
    "gpu": gpu_catalog,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BanditWare reproduction: contextual-bandit hardware recommendation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-experiments", help="list the registered paper experiments")

    subparsers.add_parser(
        "list-scenarios",
        help="list the registered contention scenarios with their descriptions",
    )

    run = subparsers.add_parser("run-experiment", help="run one experiment and print its series")
    run.add_argument("name", choices=sorted(EXPERIMENT_NAMES))
    run.add_argument("--rounds", type=int, default=None, help="override the number of rounds")
    run.add_argument("--simulations", type=int, default=None, help="override the number of replications")
    run.add_argument("--subsample", type=int, default=None, help="evaluate against a row subsample")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--every", type=int, default=5, help="print every N-th round")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the replications (bit-identical to serial)",
    )

    contention = subparsers.add_parser(
        "run-contention",
        help="run a multi-tenant contention scenario through the queued cluster",
    )
    contention.add_argument("--scenario", required=True, choices=sorted(CONTENTION_SCENARIOS))
    contention.add_argument("--seed", type=int, default=0)
    contention.add_argument(
        "--rows",
        type=int,
        default=0,
        help="also print the first N per-completion accounting rows",
    )
    contention.add_argument(
        "--sweep-seeds",
        type=int,
        default=0,
        help=(
            "instead of one run, sweep N seeds starting at --seed and print "
            "per-seed summaries (--rows applies to single runs only)"
        ),
    )
    contention.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the seed sweep (scenarios fan out over a pool)",
    )
    contention.add_argument(
        "--interference",
        default=None,
        metavar="MODEL",
        help=(
            "override the scenario's interference model: 'none', "
            "'linear[:ALPHA]' (slowdown per unit of co-resident utilisation) "
            "or 'capacity[:CPU_FRACTION]' (usable CPU fraction under sharing)"
        ),
    )
    contention.add_argument(
        "--placement",
        default=None,
        choices=["first-fit", "best-fit", "spread", "worst-fit", "pack", "least-slowdown"],
        help=(
            "override the node-choice policy the scenario's scheduler uses "
            "(ordering and placement are independent axes; the default keeps "
            "each scheduler's own policy -- first-fit everywhere)"
        ),
    )
    contention.add_argument(
        "--replications",
        type=int,
        default=0,
        help=(
            "replicate the scenario over N consecutive seeds and append "
            "per-round mean ± 95%% CI confidence bands to the report "
            "(mutually exclusive with --sweep-seeds)"
        ),
    )
    contention.add_argument(
        "--profile",
        action="store_true",
        help=(
            "append the simulator kernel's wall-time breakdown (progress "
            "re-integration, scheduling passes, placement scoring) to the "
            "report; scenario outputs are unaffected (single runs only)"
        ),
    )

    gen = subparsers.add_parser("generate-dataset", help="write a synthetic dataset to a directory")
    gen.add_argument("dataset", choices=sorted(_DATASET_BUILDERS))
    gen.add_argument("--output", required=True, help="output directory")
    gen.add_argument("--runs", type=int, default=None, help="override the number of runs")
    gen.add_argument("--seed", type=int, default=None, help="override the dataset seed")

    cat = subparsers.add_parser("show-catalog", help="print a hardware catalog")
    cat.add_argument("catalog", choices=sorted(_CATALOGS))

    rec = subparsers.add_parser(
        "recommend", help="warm-start from a saved dataset directory and recommend for one workflow"
    )
    rec.add_argument("--dataset", required=True, help="directory written by generate-dataset")
    rec.add_argument(
        "--features",
        nargs="+",
        required=True,
        metavar="NAME=VALUE",
        help="workflow features, e.g. size=8000",
    )
    rec.add_argument("--tolerance-ratio", type=float, default=0.0)
    rec.add_argument("--tolerance-seconds", type=float, default=0.0)
    rec.add_argument("--seed", type=int, default=0)

    load = subparsers.add_parser(
        "run-service-load",
        help="drive a traffic mix through the sharded serving layer",
    )
    load.add_argument(
        "--mix",
        default="zipfian",
        choices=["zipfian", "hotspot", "bursty"],
        help="traffic shape: Zipfian app skew, flash crowd, or periodic bursts",
    )
    load.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 4],
        metavar="N",
        help="shard counts to run (one row per count)",
    )
    load.add_argument("--requests", type=int, default=1000, help="requests per run")
    load.add_argument("--apps", type=int, default=32, help="registered applications")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument(
        "--cost-per-request",
        type=float,
        default=None,
        help=(
            "simulated per-request service cost in seconds; the default "
            "calibrates from this machine's real measured serving cost"
        ),
    )
    return parser


#: Sentinel: the user did not pass --interference (None means "no model").
_KEEP_SCENARIO_INTERFERENCE = object()


def _parse_interference(spec: Optional[str]):
    """Parse an ``--interference`` override into a model (or the sentinel)."""
    from repro.cluster import CapacityContention, LinearSlowdown

    if spec is None:
        return _KEEP_SCENARIO_INTERFERENCE
    name, _, param = spec.partition(":")
    try:
        if name == "none":
            return None
        if name == "linear":
            return LinearSlowdown(alpha=float(param)) if param else LinearSlowdown()
        if name == "capacity":
            return (
                CapacityContention(cpu_fraction=float(param))
                if param
                else CapacityContention()
            )
    except ValueError as exc:
        raise SystemExit(f"invalid interference parameter in {spec!r}: {exc}") from exc
    raise SystemExit(
        f"unknown interference model {spec!r}; choose 'none', 'linear[:ALPHA]' "
        "or 'capacity[:CPU_FRACTION]'"
    )


def _parse_feature_args(pairs: Sequence[str]) -> Dict[str, float]:
    features: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"feature {pair!r} is not of the form NAME=VALUE")
        name, _, value = pair.partition("=")
        try:
            features[name.strip()] = float(value)
        except ValueError as exc:
            raise SystemExit(f"feature {name!r} has a non-numeric value {value!r}") from exc
    return features


def _cmd_list_experiments(out) -> int:
    for name in EXPERIMENT_NAMES:
        definition = build_experiment(name, n_simulations=1, n_rounds=1, evaluation_subsample=10)
        print(f"{name:<32} {definition.paper_reference:<18} {definition.description}", file=out)
    return 0


def _cmd_list_scenarios(out) -> int:
    """Print the contention-scenario registry with one-line descriptions."""
    for name in sorted(CONTENTION_SCENARIOS):
        scenario = build_scenario(name, seed=0)
        description = " ".join(scenario.description.split())
        interference = (
            type(scenario.interference).__name__ if scenario.interference else "none"
        )
        print(
            f"{name:<20} tenants={len(scenario.tenants)} nodes={len(scenario.nodes)} "
            f"interference={interference}",
            file=out,
        )
        print(f"{'':<20} {description}", file=out)
    return 0


def _cmd_run_experiment(args, out) -> int:
    definition = build_experiment(
        args.name,
        n_simulations=args.simulations,
        n_rounds=args.rounds,
        evaluation_subsample=args.subsample,
        seed=args.seed,
        n_workers=max(args.workers, 1),
    )
    print(f"running {definition.name}: {definition.description}", file=out)
    outcome = run_experiment(definition)
    print(format_series(outcome.result, every=max(args.every, 1), title=definition.paper_reference), file=out)
    print("", file=out)
    print(format_summary(outcome.summary(), title="summary"), file=out)
    return 0


def _cmd_run_contention(args, out) -> int:
    interference = _parse_interference(args.interference)
    if args.sweep_seeds > 0 and args.replications > 0:
        raise SystemExit("--sweep-seeds and --replications are mutually exclusive")

    def _build(seed: int):
        scenario = build_scenario(args.scenario, seed=seed)
        if interference is not _KEEP_SCENARIO_INTERFERENCE:
            scenario = scenario.with_interference(interference)
        if args.placement is not None:
            scenario = scenario.with_placement(args.placement)
        return scenario

    if args.sweep_seeds > 0:
        from repro.evaluation import run_scenario_sweep

        seeds = range(args.seed, args.seed + args.sweep_seeds)
        scenarios = [_build(seed) for seed in seeds]
        results = run_scenario_sweep(scenarios, n_workers=max(args.workers, 1))
        rows = []
        for seed, result in zip(seeds, results):
            summary = result.summary()
            rows.append(
                {
                    "seed": seed,
                    "workflows": int(summary["workflows"]),
                    "queue_s": summary["total_queue_seconds"],
                    "slowdown": summary["mean_slowdown"],
                    "occupancy": summary["occupancy_cost"],
                    "wasted": summary["wasted_occupancy_cost"],
                    "pool_cost": summary["node_pool_cost"],
                    "q_regret_s": summary["queue_inclusive_regret"],
                    "accuracy": summary["accuracy"],
                }
            )
        print(
            format_metric_table(
                rows,
                title=(
                    f"scenario {args.scenario!r} sweep over seeds "
                    f"{seeds.start}..{seeds.stop - 1} "
                    f"({max(args.workers, 1)} workers)"
                ),
            ),
            file=out,
        )
        return 0
    scenario = _build(args.seed)
    model = type(scenario.interference).__name__ if scenario.interference else "none"
    placement = scenario.placement.name if scenario.placement is not None else "scheduler default"
    print(
        f"running contention scenario {scenario.name!r} "
        f"({len(scenario.tenants)} tenants, {len(scenario.nodes)} nodes, "
        f"interference={model}, placement={placement}, seed={args.seed})",
        file=out,
    )
    if args.replications > 0:
        from repro.evaluation import run_scenario_replications

        summary = run_scenario_replications(
            scenario, args.replications, n_workers=max(args.workers, 1)
        )
        print(format_contention_report(summary.results[0], replications=summary), file=out)
        return 0
    result = run_scenario(scenario, profile=args.profile)
    print(format_contention_report(result), file=out)
    if args.profile and result.kernel_profile is not None:
        print("", file=out)
        print(format_kernel_profile(result.kernel_profile), file=out)
    if args.rows > 0:
        print("", file=out)
        print(
            format_metric_table(
                result.rows[: args.rows],
                columns=[
                    "tenant",
                    "hardware",
                    "node",
                    "queue_seconds",
                    "runtime_seconds",
                    "occupancy_cost",
                    "queue_inclusive_regret",
                ],
                title=f"first {min(args.rows, len(result.rows))} completions",
            ),
            file=out,
        )
    return 0


def _cmd_generate_dataset(args, out) -> int:
    builder = _DATASET_BUILDERS[args.dataset]
    kwargs = {}
    if args.runs is not None:
        kwargs["n_runs"] = args.runs
    if args.seed is not None:
        kwargs["seed"] = args.seed
    bundle = builder(**kwargs)
    path = save_dataset(bundle, args.output)
    print(
        f"wrote {bundle.n_runs} {bundle.name} runs on {len(bundle.catalog)} hardware "
        f"configurations to {path}",
        file=out,
    )
    return 0


def _cmd_show_catalog(args, out) -> int:
    catalog = _CATALOGS[args.catalog]()
    cost_model = ResourceCostModel()
    ranked = {hw.name: rank for rank, hw in enumerate(cost_model.rank(catalog))}
    print(f"{'name':<6} {'cpus':>5} {'memory_gb':>10} {'gpus':>5} {'cost/h':>8} {'efficiency rank':>16}", file=out)
    for hw in catalog:
        print(
            f"{hw.name:<6} {hw.cpus:>5} {hw.memory_gb:>10.1f} {hw.gpus:>5} "
            f"{hw.cost_per_hour:>8.2f} {ranked[hw.name]:>16}",
            file=out,
        )
    return 0


def _cmd_recommend(args, out) -> int:
    history = load_run_history(args.dataset)
    features = _parse_feature_args(args.features)
    missing = [name for name in history.feature_names if name not in features]
    if missing:
        raise SystemExit(
            f"missing features {missing}; the {history.name} dataset expects {history.feature_names}"
        )
    recommender = BanditWare(
        catalog=history.catalog,
        feature_names=history.feature_names,
        tolerance=ToleranceConfig(ratio=args.tolerance_ratio, seconds=args.tolerance_seconds),
        seed=args.seed,
    )
    ingested = recommender.warm_start(history.frame)
    tolerance = ToleranceConfig(ratio=args.tolerance_ratio, seconds=args.tolerance_seconds)
    choice = recommender.best_hardware(features, tolerance=tolerance)
    predictions = recommender.predict_runtimes(features)
    print(f"warm-started from {ingested} historical {history.application} runs", file=out)
    print("predicted runtimes:", file=out)
    for name, runtime in sorted(predictions.items(), key=lambda kv: kv[1]):
        marker = " <= recommended" if name == choice.name else ""
        print(f"  {name:<6} {runtime:>12.1f}s{marker}", file=out)
    return 0


def _cmd_run_service_load(args, out) -> int:
    from repro.evaluation import (
        ServiceLoadConfig,
        calibrate_cost_per_request,
        format_service_load_report,
        run_service_load,
    )

    shard_counts = sorted(set(args.shards))
    if any(n < 1 for n in shard_counts):
        raise SystemExit(f"--shards must be positive, got {args.shards}")
    cost = args.cost_per_request
    if cost is None:
        cost = calibrate_cost_per_request(seed=args.seed)
        print(
            f"calibrated real serving cost: {cost * 1e3:.3f} ms/request "
            f"({1.0 / cost:.0f} recommendations/sec single-shard)",
            file=out,
        )
    results = []
    for n_shards in shard_counts:
        config = ServiceLoadConfig(
            n_apps=args.apps,
            n_shards=n_shards,
            n_requests=args.requests,
            seed=args.seed,
            cost_per_request=cost,
            saturation_shards=max(shard_counts),
        )
        results.append(run_service_load(args.mix, config))
    print(format_service_load_report(results), file=out)
    if len(results) > 1:
        ratio = results[-1].throughput_rps / results[0].throughput_rps
        print(
            f"speedup: {results[-1].n_shards} shards serve "
            f"{ratio:.2f}x the throughput of {results[0].n_shards}",
            file=out,
        )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-experiments":
            return _cmd_list_experiments(out)
        if args.command == "list-scenarios":
            return _cmd_list_scenarios(out)
        if args.command == "run-experiment":
            return _cmd_run_experiment(args, out)
        if args.command == "run-contention":
            return _cmd_run_contention(args, out)
        if args.command == "generate-dataset":
            return _cmd_generate_dataset(args, out)
        if args.command == "show-catalog":
            return _cmd_show_catalog(args, out)
        if args.command == "recommend":
            return _cmd_recommend(args, out)
        if args.command == "run-service-load":
            return _cmd_run_service_load(args, out)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; not an error.
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
