"""A named 1-D column backed by a NumPy array."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["Series"]

_BINARY_NUMPY_OPS = {
    "__add__": np.add,
    "__sub__": np.subtract,
    "__mul__": np.multiply,
    "__truediv__": np.true_divide,
    "__floordiv__": np.floor_divide,
    "__mod__": np.mod,
    "__pow__": np.power,
}

_COMPARISON_OPS = {
    "__eq__": np.equal,
    "__ne__": np.not_equal,
    "__lt__": np.less,
    "__le__": np.less_equal,
    "__gt__": np.greater,
    "__ge__": np.greater_equal,
}


class Series:
    """A named, immutable-length column of homogeneous values.

    Parameters
    ----------
    data:
        Any sequence convertible to a 1-D NumPy array.  Object (string)
        columns are supported; numeric columns are stored as ``float64`` or
        ``int64`` depending on the input.
    name:
        Column name.  Defaults to ``""``.

    Notes
    -----
    Unlike pandas there is no index: positional integer indexing only.  All
    element-wise operators return new :class:`Series` (or plain NumPy arrays
    of bools for comparisons used as masks).
    """

    __array_priority__ = 100  # make numpy defer to our reflected operators

    def __init__(self, data: Union[Sequence[Any], np.ndarray], name: str = ""):
        arr = np.asarray(data)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.ndim != 1:
            raise ValueError(f"Series data must be 1-D, got shape {arr.shape}")
        # Normalise string-ish columns to object dtype so mixed content works.
        if arr.dtype.kind in ("U", "S"):
            arr = arr.astype(object)
        self._values = arr
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying NumPy array (a view, not a copy)."""
        return self._values

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self._values[int(key)]
        if isinstance(key, slice):
            return Series(self._values[key], name=self.name)
        key_arr = np.asarray(key)
        return Series(self._values[key_arr], name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(repr(v) for v in self._values[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Series(name={self.name!r}, n={len(self)}, [{head}{suffix}])"

    def copy(self) -> "Series":
        return Series(self._values.copy(), name=self.name)

    def rename(self, name: str) -> "Series":
        return Series(self._values, name=name)

    def astype(self, dtype) -> "Series":
        return Series(self._values.astype(dtype), name=self.name)

    def to_list(self) -> list:
        return self._values.tolist()

    def to_numpy(self, dtype=None) -> np.ndarray:
        if dtype is None:
            return self._values.copy()
        return self._values.astype(dtype)

    # ------------------------------------------------------------------ #
    # Element-wise arithmetic and comparisons
    # ------------------------------------------------------------------ #
    def _coerce_other(self, other):
        if isinstance(other, Series):
            if len(other) != len(self):
                raise ValueError(
                    f"cannot align series of length {len(self)} and {len(other)}"
                )
            return other._values
        return other

    def map(self, func: Callable[[Any], Any]) -> "Series":
        """Apply ``func`` element-wise (Python-level loop, object-safe)."""
        return Series(np.asarray([func(v) for v in self._values]), name=self.name)

    def isin(self, values: Iterable[Any]) -> np.ndarray:
        """Boolean mask of membership in ``values``."""
        values = set(values)
        return np.asarray([v in values for v in self._values], dtype=bool)

    def unique(self) -> np.ndarray:
        """Unique values in first-appearance order."""
        seen: dict = {}
        for v in self._values:
            if v not in seen:
                seen[v] = None
        return np.asarray(list(seen.keys()))

    def value_counts(self) -> dict:
        """Return ``{value: count}`` sorted by descending count."""
        counts: dict = {}
        for v in self._values:
            counts[v] = counts.get(v, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))

    # Reductions ---------------------------------------------------------
    def sum(self) -> float:
        return float(np.sum(self._values.astype(float)))

    def mean(self) -> float:
        return float(np.mean(self._values.astype(float)))

    def std(self, ddof: int = 1) -> float:
        return float(np.std(self._values.astype(float), ddof=ddof))

    def var(self, ddof: int = 1) -> float:
        return float(np.var(self._values.astype(float), ddof=ddof))

    def min(self):
        return self._values.min()

    def max(self):
        return self._values.max()

    def median(self) -> float:
        return float(np.median(self._values.astype(float)))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self._values.astype(float), q))

    def argmin(self) -> int:
        return int(np.argmin(self._values))

    def argmax(self) -> int:
        return int(np.argmax(self._values))

    # ------------------------------------------------------------------ #
    # Hashing must be disabled because __eq__ is element-wise.
    # ------------------------------------------------------------------ #
    __hash__ = None  # type: ignore[assignment]


def _make_binary(name: str, ufunc: np.ufunc) -> Callable:
    def method(self: Series, other):
        result = ufunc(self._values, self._coerce_other(other))
        return Series(result, name=self.name)

    method.__name__ = name
    return method


def _make_reflected(name: str, ufunc: np.ufunc) -> Callable:
    def method(self: Series, other):
        result = ufunc(self._coerce_other(other), self._values)
        return Series(result, name=self.name)

    method.__name__ = name
    return method


def _make_comparison(name: str, ufunc: np.ufunc) -> Callable:
    def method(self: Series, other):
        return np.asarray(ufunc(self._values, self._coerce_other(other)), dtype=bool)

    method.__name__ = name
    return method


for _name, _ufunc in _BINARY_NUMPY_OPS.items():
    setattr(Series, _name, _make_binary(_name, _ufunc))
    _rname = "__r" + _name[2:]
    setattr(Series, _rname, _make_reflected(_rname, _ufunc))

for _name, _ufunc in _COMPARISON_OPS.items():
    setattr(Series, _name, _make_comparison(_name, _ufunc))


def _neg(self: Series) -> Series:
    return Series(-self._values, name=self.name)


def _abs(self: Series) -> Series:
    return Series(np.abs(self._values), name=self.name)


Series.__neg__ = _neg  # type: ignore[attr-defined]
Series.__abs__ = _abs  # type: ignore[attr-defined]
