"""Split/apply/combine aggregation for :class:`repro.dataframe.DataFrame`.

The BanditWare pipeline groups run history by hardware configuration
(Figure 1: per-hardware sub-frames), computes per-group statistics (mean
runtime, counts) and re-assembles a summary frame.  :class:`GroupBy`
implements exactly that split/apply/combine cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

import numpy as np

__all__ = ["GroupBy"]

_BUILTIN_AGGS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "sum": lambda a: float(np.sum(a)),
    "min": lambda a: float(np.min(a)),
    "max": lambda a: float(np.max(a)),
    "std": lambda a: float(np.std(a, ddof=1)) if len(a) > 1 else 0.0,
    "var": lambda a: float(np.var(a, ddof=1)) if len(a) > 1 else 0.0,
    "median": lambda a: float(np.median(a)),
    "count": lambda a: float(len(a)),
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
}


class GroupBy:
    """Rows of a frame grouped by one or more key columns.

    Instances are created via :meth:`repro.dataframe.DataFrame.groupby`.
    Group order follows first appearance of each key combination.
    """

    def __init__(self, frame, keys: Sequence[str]):
        from repro.dataframe.frame import DataFrame  # local import to avoid cycle

        if not keys:
            raise ValueError("groupby requires at least one key column")
        for key in keys:
            if key not in frame:
                raise KeyError(f"groupby key {key!r} is not a column; available: {frame.columns}")
        self._frame: DataFrame = frame
        self._keys = list(keys)
        self._groups: Dict[Tuple[Any, ...], List[int]] = {}
        key_columns = [frame[k].values for k in self._keys]
        for i in range(len(frame)):
            key = tuple(col[i] for col in key_columns)
            self._groups.setdefault(key, []).append(i)

    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> List[str]:
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> Dict[Tuple[Any, ...], List[int]]:
        """Return ``{key_tuple: row_indices}``."""
        return {k: list(v) for k, v in self._groups.items()}

    def __iter__(self) -> Iterator[Tuple[Tuple[Any, ...], Any]]:
        """Yield ``(key_tuple, sub_frame)`` pairs in first-appearance order."""
        for key, indices in self._groups.items():
            yield key, self._frame.take(indices)

    def get_group(self, key: Union[Any, Tuple[Any, ...]]):
        """Return the sub-frame for ``key`` (scalar allowed for single-key groupbys)."""
        if not isinstance(key, tuple):
            key = (key,)
        if key not in self._groups:
            raise KeyError(f"no group {key!r}; groups: {list(self._groups.keys())}")
        return self._frame.take(self._groups[key])

    def size(self) -> Dict[Tuple[Any, ...], int]:
        """Return group sizes keyed by key tuple."""
        return {k: len(v) for k, v in self._groups.items()}

    # ------------------------------------------------------------------ #
    def agg(self, spec: Mapping[str, Union[str, Callable[[np.ndarray], Any]]]):
        """Aggregate value columns per group.

        Parameters
        ----------
        spec:
            ``{column_name: aggregation}`` where aggregation is either a name
            from ``mean/sum/min/max/std/var/median/count/first/last`` or a
            callable taking the group's values array.

        Returns
        -------
        DataFrame
            One row per group with the key columns followed by aggregated
            columns named ``"{column}_{agg}"`` (or ``"{column}"`` when the
            aggregation is a callable).
        """
        from repro.dataframe.frame import DataFrame

        rows: List[Dict[str, Any]] = []
        for key, indices in self._groups.items():
            row: Dict[str, Any] = {k: v for k, v in zip(self._keys, key)}
            for column, how in spec.items():
                values = self._frame[column].values[np.asarray(indices, dtype=int)]
                if callable(how):
                    row[column] = how(values)
                else:
                    if how not in _BUILTIN_AGGS:
                        raise ValueError(
                            f"unknown aggregation {how!r}; choose from {sorted(_BUILTIN_AGGS)}"
                        )
                    numeric = values.astype(float) if how not in ("first", "last", "count") else values
                    row[f"{column}_{how}"] = _BUILTIN_AGGS[how](numeric)
            rows.append(row)
        return DataFrame.from_records(rows)

    def mean(self, columns: Sequence[str]):
        """Per-group means of ``columns``."""
        return self.agg({c: "mean" for c in columns})

    def count(self):
        """Per-group row counts as a frame with a ``count`` column."""
        from repro.dataframe.frame import DataFrame

        rows = [
            {**{k: v for k, v in zip(self._keys, key)}, "count": len(indices)}
            for key, indices in self._groups.items()
        ]
        return DataFrame.from_records(rows)

    def apply(self, func: Callable[[Any], Mapping[str, Any]]):
        """Apply ``func`` to each group's sub-frame; combine returned dicts into a frame."""
        from repro.dataframe.frame import DataFrame

        rows = []
        for key, indices in self._groups.items():
            sub = self._frame.take(indices)
            result = dict(func(sub))
            row = {k: v for k, v in zip(self._keys, key)}
            row.update(result)
            rows.append(row)
        return DataFrame.from_records(rows)
