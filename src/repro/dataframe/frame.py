"""An ordered mapping of equal-length columns."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.dataframe.series import Series

__all__ = ["DataFrame"]


class DataFrame:
    """A small columnar table.

    Parameters
    ----------
    data:
        A mapping ``{column_name: sequence}`` or a list of row dictionaries.
        All columns must have equal length.
    columns:
        Optional explicit column order.  When ``data`` is a list of dicts this
        also selects which keys become columns.

    Examples
    --------
    >>> df = DataFrame({"size": [100, 200], "runtime": [1.0, 2.5]})
    >>> df.shape
    (2, 2)
    >>> df.filter(df["size"] > 150).shape
    (1, 2)
    """

    def __init__(
        self,
        data: Union[Mapping[str, Sequence[Any]], Sequence[Mapping[str, Any]], None] = None,
        columns: Optional[Sequence[str]] = None,
    ):
        self._columns: Dict[str, Series] = {}
        if data is None:
            data = {}
        if isinstance(data, Mapping):
            names = list(columns) if columns is not None else list(data.keys())
            for name in names:
                if name not in data:
                    raise KeyError(f"column {name!r} not present in data")
                self._columns[str(name)] = Series(np.asarray(data[name]), name=str(name))
        elif isinstance(data, Sequence):
            rows = list(data)
            if rows and not isinstance(rows[0], Mapping):
                raise TypeError("list input must contain row dictionaries")
            if columns is not None:
                names = list(columns)
            else:
                names = []
                for row in rows:
                    for key in row:
                        if key not in names:
                            names.append(key)
            for name in names:
                values = [row.get(name) for row in rows]
                self._columns[str(name)] = Series(np.asarray(values), name=str(name))
        else:
            raise TypeError(f"unsupported data type {type(data).__name__}")
        self._check_lengths()

    # ------------------------------------------------------------------ #
    # Invariants and basic properties
    # ------------------------------------------------------------------ #
    def _check_lengths(self) -> None:
        lengths = {name: len(col) for name, col in self._columns.items()}
        if lengths and len(set(lengths.values())) > 1:
            raise ValueError(f"columns have unequal lengths: {lengths}")

    @property
    def columns(self) -> List[str]:
        """Column names in order."""
        return list(self._columns.keys())

    @property
    def shape(self) -> tuple:
        n_rows = len(next(iter(self._columns.values()))) if self._columns else 0
        return (n_rows, len(self._columns))

    def __len__(self) -> int:
        return self.shape[0]

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataFrame(shape={self.shape}, columns={self.columns})"

    # ------------------------------------------------------------------ #
    # Column access / assignment
    # ------------------------------------------------------------------ #
    def __getitem__(self, key):
        if isinstance(key, str):
            try:
                return self._columns[key]
            except KeyError:
                raise KeyError(f"no column named {key!r}; available: {self.columns}") from None
        if isinstance(key, (list, tuple)) and all(isinstance(k, str) for k in key):
            return self.select(list(key))
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return self.filter(key)
        raise TypeError(
            "DataFrame indexing accepts a column name, a list of column names, "
            f"or a boolean mask; got {type(key).__name__}"
        )

    def __setitem__(self, name: str, values: Union[Series, Sequence[Any], np.ndarray, float, int]) -> None:
        if np.isscalar(values):
            values = np.full(len(self) if self._columns else 1, values)
        if isinstance(values, Series):
            values = values.values
        series = Series(np.asarray(values), name=str(name))
        if self._columns and len(series) != len(self):
            raise ValueError(
                f"column {name!r} has length {len(series)} but frame has {len(self)} rows"
            )
        self._columns[str(name)] = series

    def drop(self, columns: Union[str, Sequence[str]]) -> "DataFrame":
        """Return a new frame without the given column(s)."""
        if isinstance(columns, str):
            columns = [columns]
        missing = [c for c in columns if c not in self._columns]
        if missing:
            raise KeyError(f"cannot drop missing columns {missing}; available: {self.columns}")
        keep = [c for c in self.columns if c not in set(columns)]
        return self.select(keep)

    def select(self, columns: Sequence[str]) -> "DataFrame":
        """Return a new frame with only ``columns`` (in the given order)."""
        data = {}
        for name in columns:
            if name not in self._columns:
                raise KeyError(f"no column named {name!r}; available: {self.columns}")
            data[name] = self._columns[name].values
        return DataFrame(data)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        """Return a new frame with columns renamed via ``mapping``."""
        data = {}
        for name in self.columns:
            data[mapping.get(name, name)] = self._columns[name].values
        return DataFrame(data)

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def row(self, index: int) -> Dict[str, Any]:
        """Return row ``index`` as a plain dict."""
        n = len(self)
        if index < -n or index >= n:
            raise IndexError(f"row index {index} out of range for frame with {n} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def iterrows(self) -> Iterator[Dict[str, Any]]:
        """Iterate over rows as dictionaries."""
        for i in range(len(self)):
            yield self.row(i)

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, len(self))))

    def tail(self, n: int = 5) -> "DataFrame":
        k = min(n, len(self))
        return self.take(np.arange(len(self) - k, len(self)))

    def take(self, indices: Sequence[int]) -> "DataFrame":
        """Return a new frame with the rows at ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=int)
        return DataFrame({name: col.values[idx] for name, col in self._columns.items()})

    def filter(self, mask: Union[np.ndarray, Series, Sequence[bool]]) -> "DataFrame":
        """Return rows where ``mask`` is true."""
        if isinstance(mask, Series):
            mask = mask.values
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(f"mask has shape {mask.shape}, expected ({len(self)},)")
        return DataFrame({name: col.values[mask] for name, col in self._columns.items()})

    def sample(self, n: int, rng: np.random.Generator, replace: bool = False) -> "DataFrame":
        """Return ``n`` randomly sampled rows using ``rng``."""
        if not replace and n > len(self):
            raise ValueError(f"cannot sample {n} rows without replacement from {len(self)}")
        idx = rng.choice(len(self), size=n, replace=replace)
        return self.take(idx)

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        """Return a new frame sorted by column ``by`` (stable sort)."""
        col = self[by].values
        order = np.argsort(col, kind="stable")
        if not ascending:
            order = order[::-1]
        return self.take(order)

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, list]:
        """Return ``{column: list_of_values}``."""
        return {name: col.to_list() for name, col in self._columns.items()}

    def to_records(self) -> List[Dict[str, Any]]:
        """Return a list of row dictionaries."""
        return list(self.iterrows())

    def to_numpy(self, columns: Optional[Sequence[str]] = None, dtype=float) -> np.ndarray:
        """Return selected columns stacked into a 2-D array of ``dtype``."""
        names = list(columns) if columns is not None else self.columns
        if not names:
            return np.empty((len(self), 0), dtype=dtype)
        arrays = [self[name].to_numpy(dtype) for name in names]
        return np.column_stack(arrays)

    def copy(self) -> "DataFrame":
        return DataFrame({name: col.values.copy() for name, col in self._columns.items()})

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    def assign(self, **new_columns) -> "DataFrame":
        """Return a copy with additional/overwritten columns."""
        out = self.copy()
        for name, values in new_columns.items():
            out[name] = values
        return out

    def append_rows(self, other: "DataFrame") -> "DataFrame":
        """Concatenate rows of ``other`` below this frame (same columns required)."""
        if set(other.columns) != set(self.columns):
            raise ValueError(
                f"column mismatch: {sorted(self.columns)} vs {sorted(other.columns)}"
            )
        data = {
            name: np.concatenate([self[name].values, other[name].values])
            for name in self.columns
        }
        return DataFrame(data)

    def groupby(self, by: Union[str, Sequence[str]]):
        """Group rows by one or more key columns; see :class:`repro.dataframe.groupby.GroupBy`."""
        from repro.dataframe.groupby import GroupBy

        keys = [by] if isinstance(by, str) else list(by)
        return GroupBy(self, keys)

    def apply_rows(self, func: Callable[[Dict[str, Any]], Any], name: str = "result") -> Series:
        """Apply ``func`` to each row dict, returning a Series of results."""
        return Series(np.asarray([func(row) for row in self.iterrows()]), name=name)

    def describe(self, columns: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
        """Summary statistics (count/mean/std/min/median/max) for numeric columns."""
        names = list(columns) if columns is not None else self.columns
        out: Dict[str, Dict[str, float]] = {}
        for name in names:
            col = self[name]
            if col.dtype.kind not in "if":
                continue
            values = col.to_numpy(float)
            out[name] = {
                "count": float(len(values)),
                "mean": float(np.mean(values)) if len(values) else float("nan"),
                "std": float(np.std(values, ddof=1)) if len(values) > 1 else 0.0,
                "min": float(np.min(values)) if len(values) else float("nan"),
                "median": float(np.median(values)) if len(values) else float("nan"),
                "max": float(np.max(values)) if len(values) else float("nan"),
            }
        return out

    @classmethod
    def from_records(cls, rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None) -> "DataFrame":
        """Build a frame from a list of row dictionaries."""
        return cls(list(rows), columns=columns)
