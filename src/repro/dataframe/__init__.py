"""A lightweight columnar data-frame substrate.

The BanditWare paper ingests application run history "as a Python pandas
dataframe" (Section 3.1).  pandas is not available in this offline
environment, so this package provides the small subset of data-frame
functionality the framework actually needs:

* :class:`~repro.dataframe.series.Series` -- a named, typed 1-D column backed
  by a NumPy array, with element-wise arithmetic, comparisons and reductions.
* :class:`~repro.dataframe.frame.DataFrame` -- an ordered mapping of equal
  length columns supporting row/column selection, boolean masking, sorting,
  assignment, concatenation, merging and group-by aggregation.
* :mod:`~repro.dataframe.io` -- CSV reading and writing with type inference.
* :mod:`~repro.dataframe.groupby` -- split/apply/combine aggregation.
* :mod:`~repro.dataframe.ops` -- helpers (``concat``, ``merge``) mirroring the
  module-level pandas functions the paper's pipeline relies on (Figure 1 shows
  per-hardware frames being *merged* into a single training table).

This is intentionally *not* a pandas re-implementation: only operations used
by the reproduction (plus the obvious conveniences needed to test them) are
provided, and every operation is eagerly evaluated on NumPy arrays.
"""

from repro.dataframe.series import Series
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import GroupBy
from repro.dataframe.ops import concat, merge
from repro.dataframe.io import read_csv, write_csv

__all__ = ["Series", "DataFrame", "GroupBy", "concat", "merge", "read_csv", "write_csv"]
