"""CSV reading and writing with simple type inference.

Dataset builders in :mod:`repro.data` can persist generated traces to CSV so
that examples and benchmarks can be re-run against frozen inputs, mirroring
how the paper's authors work from collected run-history CSVs.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.dataframe.frame import DataFrame

__all__ = ["read_csv", "write_csv"]

_MISSING_TOKENS = {"", "nan", "NaN", "NA", "null", "None"}


def _infer_column(values: List[str]) -> np.ndarray:
    """Infer the best dtype for a column of raw strings.

    Tries int, then float, then falls back to object (string).  Missing
    tokens force a float column (so they can be NaN) unless everything is
    missing, in which case the column is float NaN.
    """
    has_missing = any(v in _MISSING_TOKENS for v in values)
    non_missing = [v for v in values if v not in _MISSING_TOKENS]

    if not non_missing:
        return np.full(len(values), np.nan, dtype=float)

    if not has_missing:
        try:
            return np.asarray([int(v) for v in values], dtype=np.int64)
        except ValueError:
            pass
    try:
        return np.asarray(
            [float(v) if v not in _MISSING_TOKENS else np.nan for v in values], dtype=float
        )
    except ValueError:
        return np.asarray(
            [v if v not in _MISSING_TOKENS else "" for v in values], dtype=object
        )


def read_csv(path_or_buffer: Union[str, os.PathLike, io.TextIOBase], delimiter: str = ",") -> DataFrame:
    """Read a CSV file (or text buffer) into a :class:`DataFrame`.

    The first row is treated as the header.  Column dtypes are inferred as
    int64, float64 or object.
    """
    close = False
    if isinstance(path_or_buffer, (str, os.PathLike)):
        handle = open(path_or_buffer, "r", newline="")
        close = True
    else:
        handle = path_or_buffer
    try:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            return DataFrame({})
        raw: Dict[str, List[str]] = {name: [] for name in header}
        for row in reader:
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"row has {len(row)} fields but header has {len(header)}: {row!r}"
                )
            for name, value in zip(header, row):
                raw[name].append(value)
    finally:
        if close:
            handle.close()
    return DataFrame({name: _infer_column(values) for name, values in raw.items()})


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and np.isnan(value):
        return ""
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    return str(value)


def write_csv(
    frame: DataFrame,
    path_or_buffer: Union[str, os.PathLike, io.TextIOBase],
    delimiter: str = ",",
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write ``frame`` to CSV (header + rows)."""
    names = list(columns) if columns is not None else frame.columns
    close = False
    if isinstance(path_or_buffer, (str, os.PathLike)):
        handle = open(path_or_buffer, "w", newline="")
        close = True
    else:
        handle = path_or_buffer
    try:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for row in frame.iterrows():
            writer.writerow([_format_value(row[name]) for name in names])
    finally:
        if close:
            handle.close()
