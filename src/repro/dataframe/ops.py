"""Module-level frame operations: concatenation and merging.

Figure 1 of the paper shows per-hardware run tables being *merged* into a
single training table keyed by run ID.  :func:`merge` implements the inner /
left / outer hash joins needed for that step, and :func:`concat` stacks
per-hardware frames row-wise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataframe.frame import DataFrame

__all__ = ["concat", "merge"]


def concat(frames: Sequence[DataFrame], fill_value: Any = np.nan) -> DataFrame:
    """Stack frames row-wise.

    Columns are the union of all input columns (in first-appearance order);
    missing values are filled with ``fill_value``.
    """
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame({})
    columns: List[str] = []
    for frame in frames:
        for name in frame.columns:
            if name not in columns:
                columns.append(name)
    data: Dict[str, list] = {name: [] for name in columns}
    for frame in frames:
        n = len(frame)
        for name in columns:
            if name in frame:
                data[name].extend(frame[name].to_list())
            else:
                data[name].extend([fill_value] * n)
    return DataFrame({name: np.asarray(values) for name, values in data.items()})


def _validate_merge_keys(left: DataFrame, right: DataFrame, on: Sequence[str]) -> None:
    for key in on:
        if key not in left:
            raise KeyError(f"merge key {key!r} missing from left frame; columns: {left.columns}")
        if key not in right:
            raise KeyError(f"merge key {key!r} missing from right frame; columns: {right.columns}")


def merge(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str] | str,
    how: str = "inner",
    suffixes: Tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Join two frames on key column(s).

    Parameters
    ----------
    left, right:
        Frames to join.
    on:
        Key column name or list of names present in both frames.
    how:
        ``"inner"``, ``"left"`` or ``"outer"``.
    suffixes:
        Appended to overlapping non-key column names from the left and right
        frame respectively.

    Returns
    -------
    DataFrame
        The joined frame.  Row order follows the left frame (then unmatched
        right rows for ``how="outer"``).  Unmatched cells are ``nan``.
    """
    if isinstance(on, str):
        on = [on]
    on = list(on)
    if how not in ("inner", "left", "outer"):
        raise ValueError(f"how must be 'inner', 'left' or 'outer', got {how!r}")
    _validate_merge_keys(left, right, on)

    left_value_cols = [c for c in left.columns if c not in on]
    right_value_cols = [c for c in right.columns if c not in on]
    overlap = set(left_value_cols) & set(right_value_cols)
    left_names = {c: (c + suffixes[0] if c in overlap else c) for c in left_value_cols}
    right_names = {c: (c + suffixes[1] if c in overlap else c) for c in right_value_cols}

    right_index: Dict[Tuple[Any, ...], List[int]] = {}
    right_keys = [right[k].values for k in on]
    for j in range(len(right)):
        key = tuple(col[j] for col in right_keys)
        right_index.setdefault(key, []).append(j)

    out_columns = on + [left_names[c] for c in left_value_cols] + [right_names[c] for c in right_value_cols]
    rows: List[Dict[str, Any]] = []
    matched_right: set = set()

    left_keys = [left[k].values for k in on]
    for i in range(len(left)):
        key = tuple(col[i] for col in left_keys)
        left_row = left.row(i)
        matches = right_index.get(key, [])
        if matches:
            for j in matches:
                matched_right.add(j)
                right_row = right.row(j)
                row = {k: left_row[k] for k in on}
                row.update({left_names[c]: left_row[c] for c in left_value_cols})
                row.update({right_names[c]: right_row[c] for c in right_value_cols})
                rows.append(row)
        elif how in ("left", "outer"):
            row = {k: left_row[k] for k in on}
            row.update({left_names[c]: left_row[c] for c in left_value_cols})
            row.update({right_names[c]: np.nan for c in right_value_cols})
            rows.append(row)

    if how == "outer":
        for j in range(len(right)):
            if j in matched_right:
                continue
            right_row = right.row(j)
            row = {k: right_row[k] for k in on}
            row.update({left_names[c]: np.nan for c in left_value_cols})
            row.update({right_names[c]: right_row[c] for c in right_value_cols})
            rows.append(row)

    if not rows:
        return DataFrame({name: np.asarray([]) for name in out_columns})
    return DataFrame.from_records(rows, columns=out_columns)
