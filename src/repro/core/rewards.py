"""Reward and regret accounting for the online recommendation loop.

Bandit literature speaks in rewards to maximise; BanditWare minimises
runtime.  This module keeps that translation in one place and provides the
per-round regret ledger the evaluation harness and the ablation benchmarks
consume.

Two regret notions are tracked:

* **runtime regret** -- observed (or expected) runtime on the chosen hardware
  minus the best expected runtime available for the same workflow;
* **decision regret** -- 1 when the chosen hardware differs from the
  oracle-best hardware, 0 otherwise (the complement of the paper's
  "accuracy"); and
* **queue-inclusive regret** -- runtime regret plus the time the workflow
  spent queueing for capacity.  On a shared cluster the bandit's arm choices
  change queueing delay for everyone (over-allocation starves co-tenants),
  so the contention-aware evaluation charges waiting time as regret against
  the contention-free oracle; and
* **interference-inclusive regret** -- runtime regret plus the seconds
  co-located tenants added to the observed runtime over the contention-free
  plan (the observed-vs-planned gap the progress-based cluster engine
  accounts).  The oracle runs each workflow alone, so slowdown inflicted by
  noisy neighbours is regret too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["RewardConfig", "RoundOutcome", "RegretLedger", "runtime_to_reward"]


def runtime_to_reward(runtime_seconds: float, scale: float = 1.0) -> float:
    """Map a runtime to a reward: ``-runtime / scale``.

    A negated (optionally scaled) runtime keeps "higher is better" semantics
    for policies written in reward terms while preserving the ordering that
    runtime minimisation needs.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    runtime_seconds = float(runtime_seconds)
    if not np.isfinite(runtime_seconds) or runtime_seconds < 0:
        raise ValueError(f"runtime must be finite and non-negative, got {runtime_seconds}")
    return -runtime_seconds / scale


@dataclass(frozen=True)
class RewardConfig:
    """How an observed completion is turned into the bandit's learning signal.

    The paper's loop trains each arm's runtime model on the observed runtime
    alone.  On a shared cluster that signal is blind to the damage an
    over-sized allocation does: a big arm may run fastest once placed while
    making every workflow (its own included) wait longer for capacity.  The
    opt-in ``queue_inclusive`` mode folds the observed queueing delay into
    the training target, so the per-arm models learn *queue-inclusive*
    runtimes and tolerant selection steers away from contended hardware.

    Similarly, the observed runtime on a shared interference-aware cluster
    is blind to *who paid* for a packing decision: a run that landed amid
    noisy neighbours reports an inflated runtime, but nothing tells the
    bandit that the inflation was placement damage rather than the arm's
    intrinsic speed.  The opt-in ``slowdown_inclusive`` mode charges the
    interference-inflicted seconds (observed minus contention-free planned
    runtime, derived from the reported slowdown) *again*, weighted by
    ``slowdown_weight``, so arms whose allocations keep ending up contended
    train on penalised targets -- the slowdown analogue of the queue-aware
    mode.

    Parameters
    ----------
    mode:
        ``"runtime"`` (the paper's signal, the default),
        ``"queue_inclusive"`` or ``"slowdown_inclusive"``.
    queue_weight:
        Seconds of training-target inflation per second of queueing delay
        (only used in ``queue_inclusive`` mode).  ``1.0`` charges waiting at
        par with running; values below 1 discount it.
    slowdown_weight:
        Extra seconds of training-target inflation per second of
        interference-inflicted runtime (only used in ``slowdown_inclusive``
        mode).  With weight ``w`` the target is
        ``observed + w * (observed - planned)``: ``1.0`` double-charges the
        noisy-neighbour damage, ``0.0`` reduces to the plain runtime mode.
    """

    mode: str = "runtime"
    queue_weight: float = 1.0
    slowdown_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("runtime", "queue_inclusive", "slowdown_inclusive"):
            raise ValueError(
                f"unknown reward mode {self.mode!r}; choose 'runtime', "
                "'queue_inclusive' or 'slowdown_inclusive'"
            )
        if self.queue_weight < 0:
            raise ValueError(f"queue_weight must be non-negative, got {self.queue_weight}")
        if self.slowdown_weight < 0:
            raise ValueError(
                f"slowdown_weight must be non-negative, got {self.slowdown_weight}"
            )

    @property
    def queue_aware(self) -> bool:
        return self.mode == "queue_inclusive"

    @property
    def slowdown_aware(self) -> bool:
        return self.mode == "slowdown_inclusive"

    def effective_runtime(
        self,
        runtime_seconds: float,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> float:
        """The training target for one completion.

        In ``runtime`` mode this returns ``runtime_seconds`` unchanged (bit
        for bit -- the default config cannot perturb the paper's loop); in
        ``queue_inclusive`` mode it returns
        ``runtime_seconds + queue_weight * queue_seconds``; in
        ``slowdown_inclusive`` mode it returns
        ``runtime_seconds + slowdown_weight * interference_seconds`` where
        the interference seconds are recovered from the reported
        observed/planned ``slowdown`` ratio
        (``runtime * (1 - 1/slowdown)``).  A missing or unit slowdown adds
        nothing, so contention-free completions train on the paper's plain
        signal in every mode.  Invalid (negative or non-finite) queue delays
        and invalid (non-positive or non-finite) slowdowns are rejected in
        *all* modes, so callers get mode-independent validation.
        """
        if queue_seconds:  # 0.0 needs no check; NaN and negatives are truthy
            queue_seconds = float(queue_seconds)
            if not np.isfinite(queue_seconds) or queue_seconds < 0:
                raise ValueError(
                    f"queue_seconds must be finite and non-negative, got {queue_seconds}"
                )
        if slowdown is not None:
            slowdown = float(slowdown)
            if not np.isfinite(slowdown) or slowdown <= 0:
                raise ValueError(
                    f"slowdown must be finite and positive, got {slowdown}"
                )
        if self.queue_aware:
            return float(runtime_seconds) + self.queue_weight * queue_seconds
        if self.slowdown_aware:
            if slowdown is None or slowdown <= 1.0:
                return runtime_seconds
            interference_seconds = float(runtime_seconds) * (1.0 - 1.0 / slowdown)
            return float(runtime_seconds) + self.slowdown_weight * interference_seconds
        return runtime_seconds


@dataclass(frozen=True)
class RoundOutcome:
    """Everything observed in one round of the online loop.

    ``queue_seconds`` is the time the round's workflow waited for cluster
    capacity before starting; it defaults to 0 for the contention-free
    synchronous loop, so existing callers are unaffected.

    ``planned_runtime`` is the workflow's contention-free ground-truth
    runtime (the draw the cluster made at submission).  The observed runtime
    equals it without interference; when co-located tenants slowed the run
    down, the gap is the round's :attr:`interference_seconds`.  ``None``
    (the default) means the execution substrate does not distinguish the
    two, which keeps every pre-interference caller unaffected.
    """

    round_index: int
    chosen_hardware: str
    best_hardware: str
    observed_runtime: float
    best_expected_runtime: float
    expected_runtime_on_chosen: float
    explored: bool
    queue_seconds: float = 0.0
    planned_runtime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_seconds < 0:
            raise ValueError(f"queue_seconds must be non-negative, got {self.queue_seconds}")
        if self.planned_runtime is not None and self.planned_runtime < 0:
            raise ValueError(
                f"planned_runtime must be non-negative, got {self.planned_runtime}"
            )

    @property
    def runtime_regret(self) -> float:
        """Expected extra seconds paid versus the oracle-best hardware."""
        return max(self.expected_runtime_on_chosen - self.best_expected_runtime, 0.0)

    @property
    def queue_inclusive_regret(self) -> float:
        """Runtime regret plus queueing delay.

        The oracle baseline runs each workflow alone with zero queueing, so
        any waiting the chosen allocation induces on a shared cluster is paid
        on top of the expected-runtime gap.
        """
        return self.runtime_regret + self.queue_seconds

    @property
    def interference_seconds(self) -> float:
        """Observed seconds added by co-located tenants over the planned run.

        Zero when the substrate reports no plan (contention-free loops) and
        exactly zero under the null interference model, whose observed
        runtimes equal the plan bit-for-bit.
        """
        if self.planned_runtime is None:
            return 0.0
        return max(self.observed_runtime - self.planned_runtime, 0.0)

    @property
    def slowdown(self) -> float:
        """Observed over planned runtime (1.0 without interference)."""
        if not self.planned_runtime:
            return 1.0
        return self.observed_runtime / self.planned_runtime

    @property
    def interference_inclusive_regret(self) -> float:
        """Runtime regret plus the slowdown inflicted by co-residents.

        The oracle runs each workflow alone at full speed, so observed
        inflation over the contention-free plan is charged as regret.
        """
        return self.runtime_regret + self.interference_seconds

    @property
    def correct(self) -> bool:
        """Whether the chosen hardware matches the oracle-best hardware."""
        return self.chosen_hardware == self.best_hardware


class RegretLedger:
    """Accumulates per-round outcomes and derives summary curves."""

    def __init__(self) -> None:
        self._rounds: List[RoundOutcome] = []

    def __len__(self) -> int:
        return len(self._rounds)

    def record(self, outcome: RoundOutcome) -> None:
        """Append one round's outcome (rounds must arrive in order)."""
        if self._rounds and outcome.round_index <= self._rounds[-1].round_index:
            raise ValueError(
                f"round {outcome.round_index} arrived after round {self._rounds[-1].round_index}"
            )
        self._rounds.append(outcome)

    @property
    def rounds(self) -> List[RoundOutcome]:
        return list(self._rounds)

    # ------------------------------------------------------------------ #
    def cumulative_runtime_regret(self) -> np.ndarray:
        """Cumulative expected runtime regret after each round."""
        if not self._rounds:
            return np.empty(0)
        return np.cumsum([r.runtime_regret for r in self._rounds])

    def cumulative_queue_inclusive_regret(self) -> np.ndarray:
        """Cumulative queue-inclusive regret (runtime regret + queueing delay)."""
        if not self._rounds:
            return np.empty(0)
        return np.cumsum([r.queue_inclusive_regret for r in self._rounds])

    def cumulative_interference_inclusive_regret(self) -> np.ndarray:
        """Cumulative interference-inclusive regret (runtime regret + slowdown)."""
        if not self._rounds:
            return np.empty(0)
        return np.cumsum([r.interference_inclusive_regret for r in self._rounds])

    def total_queue_seconds(self) -> float:
        """Sum of queueing delay across all rounds (seconds)."""
        return float(sum(r.queue_seconds for r in self._rounds))

    def total_interference_seconds(self) -> float:
        """Sum of co-residency-inflicted runtime inflation across rounds."""
        return float(sum(r.interference_seconds for r in self._rounds))

    def mean_slowdown(self) -> float:
        """Mean observed/planned runtime ratio across rounds (1.0 when empty)."""
        if not self._rounds:
            return 1.0
        return float(np.mean([r.slowdown for r in self._rounds]))

    def accuracy_curve(self, window: Optional[int] = None) -> np.ndarray:
        """Fraction of correct hardware choices, cumulatively or over a trailing window."""
        if not self._rounds:
            return np.empty(0)
        correct = np.asarray([1.0 if r.correct else 0.0 for r in self._rounds])
        if window is None:
            return np.cumsum(correct) / np.arange(1, len(correct) + 1)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        out = np.empty_like(correct)
        for i in range(len(correct)):
            lo = max(0, i - window + 1)
            out[i] = correct[lo : i + 1].mean()
        return out

    def exploration_fraction(self) -> float:
        """Fraction of rounds whose arm was chosen by exploration."""
        if not self._rounds:
            return 0.0
        return float(np.mean([1.0 if r.explored else 0.0 for r in self._rounds]))

    def total_observed_runtime(self) -> float:
        """Sum of observed runtimes across all rounds (seconds)."""
        return float(sum(r.observed_runtime for r in self._rounds))

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports and tests."""
        if not self._rounds:
            return {
                "rounds": 0,
                "accuracy": 0.0,
                "cumulative_regret": 0.0,
                "queue_inclusive_regret": 0.0,
                "interference_inclusive_regret": 0.0,
                "total_queue_seconds": 0.0,
                "total_interference_seconds": 0.0,
                "mean_slowdown": 1.0,
                "exploration_fraction": 0.0,
                "total_runtime": 0.0,
            }
        return {
            "rounds": float(len(self._rounds)),
            "accuracy": float(self.accuracy_curve()[-1]),
            "cumulative_regret": float(self.cumulative_runtime_regret()[-1]),
            "queue_inclusive_regret": float(self.cumulative_queue_inclusive_regret()[-1]),
            "interference_inclusive_regret": float(
                self.cumulative_interference_inclusive_regret()[-1]
            ),
            "total_queue_seconds": self.total_queue_seconds(),
            "total_interference_seconds": self.total_interference_seconds(),
            "mean_slowdown": self.mean_slowdown(),
            "exploration_fraction": self.exploration_fraction(),
            "total_runtime": self.total_observed_runtime(),
        }
