"""The BanditWare recommender façade.

:class:`BanditWare` is the public entry point of the library: it owns the
hardware catalog (the arm space), one runtime model per arm, and an
arm-selection policy, and exposes the online loop the paper describes --
``recommend`` a hardware configuration for an incoming workflow, schedule the
workflow, then ``observe`` the measured runtime so the per-arm model is
refined (Algorithm 1).

A typical online session::

    from repro import BanditWare, ndp_catalog

    bw = BanditWare(catalog=ndp_catalog(), feature_names=["area", "wind_speed"], seed=7)
    for workflow in stream:
        rec = bw.recommend(workflow.features)
        runtime = run_on_cluster(workflow, rec.hardware)      # user-provided
        bw.observe(workflow.features, rec.hardware, runtime)

Historical data can seed the models before going online via
:meth:`BanditWare.warm_start`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.models import ArmModel, LeastSquaresModel
from repro.core.policies import BanditPolicy, DecayingEpsilonGreedyPolicy, PolicyDecision
from repro.core.rewards import RewardConfig
from repro.core.selection import ToleranceConfig
from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Recommendation", "ObservationRecord", "ModelSnapshot", "BanditWare"]


@dataclass(frozen=True)
class Recommendation:
    """What :meth:`BanditWare.recommend` returns.

    Attributes
    ----------
    hardware:
        The recommended hardware configuration.
    decision:
        The underlying policy decision with its audit trail (estimates,
        whether the round explored, the tolerance threshold used, ...).
    """

    hardware: HardwareConfig
    decision: PolicyDecision

    @property
    def explored(self) -> bool:
        return self.decision.explored

    @property
    def estimates(self) -> Dict[str, float]:
        return dict(self.decision.estimates)


@dataclass(frozen=True)
class ObservationRecord:
    """One observation fed back to the recommender.

    ``queue_seconds`` is the capacity-wait the workflow reported alongside
    its runtime (0 for contention-free observations); ``slowdown`` is the
    observed/planned runtime ratio an interference-aware cluster measured
    (``None`` when the substrate does not report one).
    """

    features: Dict[str, float]
    hardware: str
    runtime_seconds: float
    queue_seconds: float = 0.0
    slowdown: Optional[float] = None


@dataclass(frozen=True)
class ModelSnapshot:
    """An immutable copy of a recommender's per-arm linear models.

    The serving layer publishes one snapshot per application so read-only
    queries (runtime predictions, dashboards) never touch the live models
    while an ``observe`` batch is refitting them: writers build a *new*
    snapshot after mutating and swap the reference (copy-on-write); a reader
    holding an old snapshot keeps a consistent view forever.

    Attributes
    ----------
    feature_names:
        Context feature order, as in :attr:`BanditWare.feature_names`.
    arm_names:
        Hardware names in catalog (arm) order.
    coefficients:
        ``(n_arms, n_features)`` slope matrix (read-only array).
    intercepts:
        Per-arm intercepts (read-only array).
    observation_counts:
        Per-arm observation counts at snapshot time.
    version:
        The recommender's mutation counter when the snapshot was taken;
        two snapshots of one recommender with equal versions are identical.
    """

    feature_names: tuple
    arm_names: tuple
    coefficients: np.ndarray
    intercepts: np.ndarray
    observation_counts: tuple
    version: int

    def context_vector(self, features: Dict[str, float]) -> np.ndarray:
        missing = [name for name in self.feature_names if name not in features]
        if missing:
            raise KeyError(
                f"features missing {missing}; snapshot expects {list(self.feature_names)}"
            )
        return np.asarray([float(features[name]) for name in self.feature_names])

    def predict_runtimes(self, features: Dict[str, float]) -> Dict[str, float]:
        """Estimated runtime on every arm, from the frozen coefficients."""
        values = self.coefficients @ self.context_vector(features) + self.intercepts
        return {name: float(v) for name, v in zip(self.arm_names, values)}

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """``(n_rows, n_arms)`` estimates for an already-ordered design matrix."""
        X = np.asarray(X, dtype=float)
        return X @ self.coefficients.T + self.intercepts


class BanditWare:
    """Online hardware recommendation with per-hardware linear runtime models.

    Parameters
    ----------
    catalog:
        The hardware configurations to choose among (the arm space).
    feature_names:
        Ordered names of the workflow features forming the context vector.
    policy:
        Arm-selection policy; defaults to the paper's decaying contextual
        ε-greedy strategy (``epsilon0 = 1``, ``decay = 0.99``) with the given
        ``tolerance``.
    tolerance:
        Convenience shortcut for the default policy's
        ``(tolerance_ratio, tolerance_seconds)``; ignored when an explicit
        ``policy`` instance is supplied.
    arm_model_factory:
        Callable returning a fresh :class:`~repro.core.models.ArmModel` given
        the number of features; defaults to the paper's batch least-squares
        model.
    seed:
        Seed for the policy's exploration randomness.
    track_history:
        When true (default) every observation is appended to :attr:`history`.
        The evaluation engine disables this to avoid per-round bookkeeping it
        never reads; decisions are unaffected.
    reward:
        Observation shaping (:class:`~repro.core.rewards.RewardConfig`).  The
        default ``runtime`` mode trains on observed runtimes exactly as the
        paper does; the opt-in ``queue_inclusive`` mode folds reported
        queueing delay into the training target so the bandit learns to
        avoid contended hardware.
    """

    def __init__(
        self,
        catalog: HardwareCatalog,
        feature_names: Sequence[str],
        policy: Optional[BanditPolicy] = None,
        tolerance: Optional[ToleranceConfig] = None,
        arm_model_factory: Optional[Callable[[int], ArmModel]] = None,
        seed: SeedLike = None,
        track_history: bool = True,
        reward: Optional[RewardConfig] = None,
    ):
        if not feature_names:
            raise ValueError("feature_names must contain at least one feature")
        names = [str(n) for n in feature_names]
        if len(set(names)) != len(names):
            raise ValueError(f"feature_names contains duplicates: {names}")
        self.catalog = catalog
        self.feature_names: List[str] = names
        # The class itself is the default factory (not a lambda) so the
        # recommender stays picklable for checkpoints and worker processes.
        self._factory = arm_model_factory or LeastSquaresModel
        self.policy = policy or DecayingEpsilonGreedyPolicy(tolerance=tolerance)
        self._rng = as_generator(seed)
        self._models: List[ArmModel] = [self._factory(len(names)) for _ in catalog]
        self._history: List[ObservationRecord] = []
        self.track_history = bool(track_history)
        self.reward = reward or RewardConfig()
        self._version = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def models(self) -> List[ArmModel]:
        """Per-arm runtime models, in catalog (arm) order."""
        return list(self._models)

    @property
    def history(self) -> List[ObservationRecord]:
        """All observations fed to :meth:`observe` / :meth:`warm_start`, in order."""
        return list(self._history)

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every observation batch and reset.

        Snapshot caches key on this -- equal versions guarantee the per-arm
        coefficients are unchanged.
        """
        return self._version

    def snapshot(self) -> ModelSnapshot:
        """An immutable copy-on-write view of the current per-arm models.

        The returned arrays are frozen copies: subsequent observations build
        new model state without touching any published snapshot, so readers
        never block on (or observe half of) an in-flight update.
        """
        W = np.vstack([model.coefficients for model in self._models]) \
            if self._models else np.empty((0, self.n_features))
        b = np.asarray([model.intercept for model in self._models], dtype=float)
        W.setflags(write=False)
        b.setflags(write=False)
        return ModelSnapshot(
            feature_names=tuple(self.feature_names),
            arm_names=tuple(hw.name for hw in self.catalog),
            coefficients=W,
            intercepts=b,
            observation_counts=tuple(m.n_observations for m in self._models),
            version=self._version,
        )

    def model_for(self, hardware: Union[str, HardwareConfig]) -> ArmModel:
        """The runtime model of one hardware configuration."""
        return self._models[self.catalog.index_of(hardware)]

    def coefficients(self) -> Dict[str, Dict[str, float]]:
        """Named coefficients of every arm: ``{hardware: {"w_<feat>": .., "b": ..}}``."""
        return {
            hw.name: model.coefficient_dict(self.feature_names)
            for hw, model in zip(self.catalog, self._models)
        }

    def observation_counts(self) -> Dict[str, int]:
        """Number of observations each arm's model has seen."""
        return {hw.name: model.n_observations for hw, model in zip(self.catalog, self._models)}

    # ------------------------------------------------------------------ #
    # Feature handling
    # ------------------------------------------------------------------ #
    def context_vector(self, features: Dict[str, float]) -> np.ndarray:
        """Order the ``features`` dict into the context vector ``x``."""
        missing = [name for name in self.feature_names if name not in features]
        if missing:
            raise KeyError(
                f"features missing {missing}; BanditWare expects {self.feature_names}"
            )
        return np.asarray([float(features[name]) for name in self.feature_names])

    # ------------------------------------------------------------------ #
    # The online loop
    # ------------------------------------------------------------------ #
    def recommend(self, features: Dict[str, float]) -> Recommendation:
        """Recommend a hardware configuration for one incoming workflow."""
        return self.recommend_vector(self.context_vector(features))

    def recommend_vector(self, context: np.ndarray) -> Recommendation:
        """Recommend for an already-ordered context vector.

        This is the fast path behind :meth:`recommend`; ``context`` must be a
        1-D array in :attr:`feature_names` order.  It produces exactly the
        same decision stream as the dict-based API.
        """
        decision = self.policy.select(context, self._models, self.catalog, self._rng)
        return Recommendation(hardware=decision.hardware, decision=decision)

    def recommend_batch(self, features_batch: Sequence[Dict[str, float]]) -> List[Recommendation]:
        """Recommend for a batch of incoming workflows.

        Decisions are identical to calling :meth:`recommend` once per element
        in order: the policy state (ε schedule, random stream) advances one
        step per workflow, and no observation happens in between.
        """
        contexts = [self.context_vector(features) for features in features_batch]
        return [self.recommend_vector(context) for context in contexts]

    def observe(
        self,
        features: Dict[str, float],
        hardware: Union[str, HardwareConfig],
        runtime_seconds: float,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> None:
        """Feed back the observed runtime of a workflow run on ``hardware``.

        ``queue_seconds`` reports how long the workflow waited for cluster
        capacity; it only shapes the learning signal when the recommender's
        :attr:`reward` is in ``queue_inclusive`` mode.  ``slowdown`` reports
        the observed/planned runtime ratio an interference-aware cluster
        measured; it only shapes the signal in ``slowdown_inclusive`` mode.
        """
        context = self.context_vector(features)
        self.observe_vector(
            context,
            hardware,
            runtime_seconds,
            features=features,
            queue_seconds=queue_seconds,
            slowdown=slowdown,
        )

    def observe_vector(
        self,
        context: np.ndarray,
        hardware: Union[str, HardwareConfig, int],
        runtime_seconds: float,
        features: Optional[Dict[str, float]] = None,
        validate: bool = True,
        queue_seconds: float = 0.0,
        slowdown: Optional[float] = None,
    ) -> None:
        """Feed back one observation given an already-ordered context vector.

        ``hardware`` may also be an arm index.  ``features`` is only used for
        the history record; when omitted it is reconstructed from the context
        vector and :attr:`feature_names`.  ``validate=False`` skips the
        context/runtime checks -- only for callers (the evaluation engine)
        whose inputs were validated once up front.
        """
        if validate:
            runtime_seconds = float(runtime_seconds)
            if not np.isfinite(runtime_seconds) or runtime_seconds < 0:
                raise ValueError(
                    f"runtime_seconds must be finite and non-negative, got {runtime_seconds}"
                )
            context = np.asarray(context, dtype=float)
            if context.shape != (self.n_features,):
                raise ValueError(
                    f"context must have shape ({self.n_features},), got {context.shape}"
                )
            if not np.all(np.isfinite(context)):
                raise ValueError("context contains non-finite values")
        if isinstance(hardware, int):
            if not 0 <= hardware < len(self.catalog):
                raise IndexError(
                    f"arm index {hardware} out of range for {len(self.catalog)} arms"
                )
            arm = hardware
        else:
            arm = self.catalog.index_of(hardware)
        # In the default "runtime" mode this is runtime_seconds, untouched.
        target = self.reward.effective_runtime(runtime_seconds, queue_seconds, slowdown)
        self._models[arm].update_vector(context, target)
        self.policy.observe(arm, context, target)
        self._version += 1
        if self.track_history:
            if features is None:
                features = dict(zip(self.feature_names, map(float, context)))
            self._history.append(
                ObservationRecord(
                    features={k: float(v) for k, v in features.items()},
                    hardware=self.catalog[arm].name,
                    runtime_seconds=runtime_seconds,
                    queue_seconds=float(queue_seconds),
                    slowdown=float(slowdown) if slowdown is not None else None,
                )
            )

    def observe_batch(
        self,
        features_batch: Sequence[Dict[str, float]],
        hardware: Sequence[Union[str, HardwareConfig]],
        runtimes_seconds: Sequence[float],
        queues_seconds: Optional[Sequence[float]] = None,
        slowdowns: Optional[Sequence[Optional[float]]] = None,
    ) -> None:
        """Feed back a batch of observations in one call.

        The final recommender state is exactly what a sequence of
        :meth:`observe` calls in the same order would leave behind: per-arm
        model data is ingested in arrival order and the policy hook runs once
        per observation.  Only the intermediate per-row model refits are
        skipped (via :meth:`ArmModel.update_batch`), which is where the batch
        path earns its speedup.  All rows are validated before any state
        changes.

        ``queues_seconds`` optionally reports each workflow's capacity wait;
        like :meth:`observe`, it only shapes the learning signal in
        ``queue_inclusive`` reward mode.  ``slowdowns`` optionally reports
        each workflow's observed/planned ratio (entries may be ``None``);
        it only shapes the signal in ``slowdown_inclusive`` mode.
        """
        if not (len(features_batch) == len(hardware) == len(runtimes_seconds)):
            raise ValueError(
                f"batch length mismatch: {len(features_batch)} feature dicts, "
                f"{len(hardware)} hardware entries, {len(runtimes_seconds)} runtimes"
            )
        if queues_seconds is not None and len(queues_seconds) != len(runtimes_seconds):
            raise ValueError(
                f"batch length mismatch: {len(runtimes_seconds)} runtimes but "
                f"{len(queues_seconds)} queue delays"
            )
        if slowdowns is not None and len(slowdowns) != len(runtimes_seconds):
            raise ValueError(
                f"batch length mismatch: {len(runtimes_seconds)} runtimes but "
                f"{len(slowdowns)} slowdowns"
            )
        contexts = [self.context_vector(features) for features in features_batch]
        if contexts and not np.all(np.isfinite(np.vstack(contexts))):
            raise ValueError("context contains non-finite values")
        arms = [self.catalog.index_of(hw) for hw in hardware]
        runtimes = [float(r) for r in runtimes_seconds]
        for runtime in runtimes:
            if not np.isfinite(runtime) or runtime < 0:
                raise ValueError(
                    f"runtime_seconds must be finite and non-negative, got {runtime}"
                )
        queues = [0.0] * len(runtimes) if queues_seconds is None else [float(q) for q in queues_seconds]
        ratios = (
            [None] * len(runtimes)
            if slowdowns is None
            else [None if s is None else float(s) for s in slowdowns]
        )
        # effective_runtime validates queue delays and slowdowns (and is the
        # identity in the default "runtime" mode).
        targets = [
            self.reward.effective_runtime(runtime, queue, ratio)
            for runtime, queue, ratio in zip(runtimes, queues, ratios)
        ]
        per_arm_X: Dict[int, List[np.ndarray]] = {}
        per_arm_y: Dict[int, List[float]] = {}
        for context, arm, target in zip(contexts, arms, targets):
            per_arm_X.setdefault(arm, []).append(context)
            per_arm_y.setdefault(arm, []).append(target)
        for arm, rows in per_arm_X.items():
            self._models[arm].update_batch(np.vstack(rows), per_arm_y[arm])
        self._version += len(runtimes)
        for features, context, arm, target, runtime, queue, ratio in zip(
            features_batch, contexts, arms, targets, runtimes, queues, ratios
        ):
            self.policy.observe(arm, context, target)
            if self.track_history:
                self._history.append(
                    ObservationRecord(
                        features={k: float(v) for k, v in features.items()},
                        hardware=self.catalog[arm].name,
                        runtime_seconds=runtime,
                        queue_seconds=queue,
                        slowdown=ratio,
                    )
                )

    def step(
        self,
        features: Dict[str, float],
        runtime_callback: Callable[[HardwareConfig], float],
    ) -> tuple:
        """Run one full round: recommend, execute via ``runtime_callback``, observe.

        Returns ``(recommendation, observed_runtime)``.
        """
        rec = self.recommend(features)
        runtime = float(runtime_callback(rec.hardware))
        self.observe(features, rec.hardware, runtime)
        return rec, runtime

    # ------------------------------------------------------------------ #
    # Prediction / offline use
    # ------------------------------------------------------------------ #
    def predict_runtimes(self, features: Dict[str, float]) -> Dict[str, float]:
        """Estimated runtime of ``features`` on every hardware configuration."""
        context = self.context_vector(features)
        return {
            hw.name: float(model.predict(context))
            for hw, model in zip(self.catalog, self._models)
        }

    def predict_runtimes_batch(
        self, features_batch: Sequence[Dict[str, float]]
    ) -> np.ndarray:
        """Estimated runtimes for a batch of workflows on every configuration.

        Returns an ``(n_workflows, n_arms)`` array in catalog arm order,
        evaluated with each arm's :meth:`~repro.core.models.ArmModel.predict_batch`.
        """
        X = np.vstack([self.context_vector(features) for features in features_batch]) \
            if features_batch else np.empty((0, self.n_features))
        out = np.empty((X.shape[0], len(self.catalog)))
        for j, model in enumerate(self._models):
            out[:, j] = model.predict_batch(X)
        return out

    def best_hardware(
        self, features: Dict[str, float], tolerance: Optional[ToleranceConfig] = None
    ) -> HardwareConfig:
        """The hardware tolerant selection would pick right now (no exploration)."""
        from repro.core.selection import TolerantSelector

        selector = TolerantSelector(tolerance=tolerance or ToleranceConfig())
        outcome = selector.select(self.catalog, self.predict_runtimes(features))
        return outcome.chosen

    # ------------------------------------------------------------------ #
    # Warm starting from historical data
    # ------------------------------------------------------------------ #
    def warm_start(
        self,
        frame: DataFrame,
        hardware_column: str = "hardware",
        runtime_column: str = "runtime_seconds",
    ) -> int:
        """Seed the per-arm models from a run-history table.

        The frame must contain one column per feature in
        :attr:`feature_names`, plus the hardware name and runtime columns.
        Rows whose hardware is not in the catalog are skipped.  Returns the
        number of rows ingested.

        Ingestion goes through :meth:`observe_batch`, so each arm's model is
        refit once for the whole table rather than once per row.
        """
        for column in (hardware_column, runtime_column, *self.feature_names):
            if column not in frame:
                raise KeyError(
                    f"warm_start frame is missing column {column!r}; columns: {frame.columns}"
                )
        features_batch: List[Dict[str, float]] = []
        hardware: List[str] = []
        runtimes: List[float] = []
        for row in frame.iterrows():
            hw_name = str(row[hardware_column])
            if hw_name not in self.catalog:
                continue
            features_batch.append({name: float(row[name]) for name in self.feature_names})
            hardware.append(hw_name)
            runtimes.append(float(row[runtime_column]))
        self.observe_batch(features_batch, hardware, runtimes)
        return len(runtimes)

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget everything: fresh arm models, reset policy state, empty history."""
        self._models = [self._factory(self.n_features) for _ in self.catalog]
        self.policy.reset()
        self._history.clear()
        self._version += 1
