"""Pure exploitation: always apply tolerant selection to the current estimates."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.core.policies.base import BanditPolicy, PolicyDecision
from repro.core.selection import ToleranceConfig, TolerantSelector
from repro.hardware import HardwareCatalog, ResourceCostModel

__all__ = ["GreedyPolicy"]


class GreedyPolicy(BanditPolicy):
    """The ε = 0 limit of Algorithm 1.

    Useful as an ablation (how much does the decaying exploration matter?) and
    as the "exploitation head" for offline evaluation: once BanditWare has
    been warm-started from historical data, recommending with a greedy policy
    reproduces what the paper calls prediction accuracy on the full dataset.

    Parameters
    ----------
    tolerance, cost_model:
        Same meaning as for
        :class:`~repro.core.policies.epsilon_greedy.DecayingEpsilonGreedyPolicy`.
    seed_unseen:
        When true, arms that have never been tried are selected first (round
        robin) so the greedy policy cannot dead-lock on all-zero estimates.
    """

    def __init__(
        self,
        tolerance: Optional[ToleranceConfig] = None,
        cost_model: Optional[ResourceCostModel] = None,
        seed_unseen: bool = True,
    ):
        self.selector = TolerantSelector(tolerance=tolerance, cost_model=cost_model)
        self.seed_unseen = bool(seed_unseen)

    def select(
        self,
        context: np.ndarray,
        models: Sequence[ArmModel],
        catalog: HardwareCatalog,
        rng: np.random.Generator,
    ) -> PolicyDecision:
        if len(models) != len(catalog):
            raise ValueError(
                f"got {len(models)} models for {len(catalog)} hardware configurations"
            )
        estimates = self.estimate_runtimes(context, models, catalog)
        unseen = [i for i, model in enumerate(models) if not model.is_fitted]
        if self.seed_unseen and unseen:
            arm = int(unseen[0])
            return PolicyDecision(
                arm_index=arm,
                hardware=catalog[arm],
                explored=True,
                estimates=estimates,
                detail={"seeded_unseen_arm": 1.0},
            )
        outcome = self.selector.select(catalog, estimates)
        arm = catalog.index_of(outcome.chosen)
        return PolicyDecision(
            arm_index=arm,
            hardware=catalog[arm],
            explored=False,
            estimates=estimates,
            detail={
                "tolerance_limit": outcome.limit,
                "n_candidates": float(len(outcome.candidates)),
            },
        )
