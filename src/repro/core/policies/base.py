"""The policy interface shared by every arm-selection strategy."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.hardware import HardwareCatalog, HardwareConfig

__all__ = ["PolicyDecision", "BanditPolicy"]


@dataclass(frozen=True)
class PolicyDecision:
    """The outcome of one arm selection.

    Attributes
    ----------
    arm_index:
        Index of the chosen hardware in the catalog's arm order.
    hardware:
        The chosen hardware configuration.
    explored:
        True when the arm was chosen by the exploration branch (uniformly at
        random) rather than by exploiting the current estimates.
    estimates:
        Per-hardware estimated runtimes that informed the decision (empty for
        purely random choices before any model exists).
    detail:
        Policy-specific extras (e.g. the tolerance threshold, UCB scores).
    """

    arm_index: int
    hardware: HardwareConfig
    explored: bool
    estimates: Dict[str, float] = field(default_factory=dict)
    detail: Dict[str, float] = field(default_factory=dict)


class BanditPolicy(abc.ABC):
    """Selects a hardware arm given the context and the per-arm models.

    The BanditWare façade owns the catalog and the per-arm runtime models;
    policies are pure decision rules.  They receive the context vector and the
    models (in arm order) and return a :class:`PolicyDecision`.  Policies that
    keep internal state across rounds (the decaying ε, LinUCB's round counter)
    update it inside :meth:`select` and reset it in :meth:`reset`.
    """

    @abc.abstractmethod
    def select(
        self,
        context: np.ndarray,
        models: Sequence[ArmModel],
        catalog: HardwareCatalog,
        rng: np.random.Generator,
    ) -> PolicyDecision:
        """Choose an arm for ``context``."""

    def observe(self, arm_index: int, context: np.ndarray, runtime: float) -> None:
        """Hook called after the chosen arm's runtime is observed.

        Most policies keep no per-observation state (the arm models are
        updated by the façade); the default is a no-op.
        """

    def reset(self) -> None:
        """Reset any internal state (e.g. restore ε to its initial value)."""

    # ------------------------------------------------------------------ #
    @staticmethod
    def estimate_runtimes(
        context: np.ndarray, models: Sequence[ArmModel], catalog: HardwareCatalog
    ) -> Dict[str, float]:
        """Point-estimate runtimes for every arm, in catalog order.

        The context is validated once here (rather than once per arm inside
        :meth:`ArmModel.predict`); the per-arm evaluation uses the models'
        raw :meth:`~ArmModel.predict_vector` fast path.
        """
        context = np.asarray(context, dtype=float).reshape(-1)
        if context.size and not np.all(np.isfinite(context)):
            raise ValueError("context contains non-finite values")
        return {
            hw.name: model.predict_vector(context)
            for hw, model in zip(catalog, models)
        }

    @staticmethod
    def estimate_runtime_vector(
        context: np.ndarray, models: Sequence[ArmModel]
    ) -> np.ndarray:
        """Per-arm runtime estimates as an array in arm order (hot path)."""
        return np.fromiter(
            (model.predict_vector(context) for model in models),
            dtype=float,
            count=len(models),
        )

    @property
    def name(self) -> str:
        """A short human-readable policy name (class name by default)."""
        return type(self).__name__
