"""LinUCB-style optimistic selection over the per-arm linear models.

The paper lists "different and more complex contextual bandit algorithms" as
future work; LinUCB is the canonical next step.  Because BanditWare
*minimises* runtime, optimism means selecting the arm with the smallest
*lower* confidence bound ``R̂(H_i, x) − α·σ_i(x)``: an arm we know little
about gets the benefit of the doubt and is tried sooner.

The uncertainty term comes from each arm model's :meth:`uncertainty` method
(exact for :class:`~repro.core.models.online_linear.RecursiveLeastSquaresModel`
and :class:`~repro.core.models.ridge.RidgeModel`; OLS models report ``inf``
until they are over-determined, which simply forces early exploration).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.core.policies.base import BanditPolicy, PolicyDecision
from repro.hardware import HardwareCatalog
from repro.utils.validation import check_non_negative

__all__ = ["LinUCBPolicy"]


class LinUCBPolicy(BanditPolicy):
    """Optimism in the face of uncertainty for runtime minimisation.

    Parameters
    ----------
    alpha:
        Width multiplier of the confidence interval.  ``alpha = 0`` collapses
        to greedy selection on the point estimates.
    """

    def __init__(self, alpha: float = 1.0):
        self.alpha = check_non_negative(alpha, "alpha")

    def select(
        self,
        context: np.ndarray,
        models: Sequence[ArmModel],
        catalog: HardwareCatalog,
        rng: np.random.Generator,
    ) -> PolicyDecision:
        if len(models) != len(catalog):
            raise ValueError(
                f"got {len(models)} models for {len(catalog)} hardware configurations"
            )
        estimates = self.estimate_runtimes(context, models, catalog)
        scores: Dict[str, float] = {}
        for hw, model in zip(catalog, models):
            width = model.uncertainty(context)
            if np.isinf(width):
                scores[hw.name] = -np.inf  # never-tried arms win immediately
            else:
                scores[hw.name] = estimates[hw.name] - self.alpha * width
        # Lowest optimistic runtime wins; ties break on catalog order for
        # determinism, with a random shuffle among exact -inf ties so cold
        # starts do not always hammer arm 0.
        best_score = min(scores.values())
        tied = [name for name, s in scores.items() if s == best_score]
        if len(tied) > 1 and np.isinf(best_score):
            chosen_name = tied[int(rng.integers(len(tied)))]
        else:
            chosen_name = min(tied, key=catalog.index_of)
        arm = catalog.index_of(chosen_name)
        explored = not models[arm].is_fitted
        return PolicyDecision(
            arm_index=arm,
            hardware=catalog[arm],
            explored=explored,
            estimates=estimates,
            detail={f"lcb_{name}": float(score) for name, score in scores.items()},
        )
