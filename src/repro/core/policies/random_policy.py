"""Uniformly random hardware selection (the paper's random-guess reference)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.core.policies.base import BanditPolicy, PolicyDecision
from repro.hardware import HardwareCatalog

__all__ = ["RandomPolicy"]


class RandomPolicy(BanditPolicy):
    """Pick a hardware configuration uniformly at random every round.

    The paper repeatedly compares BanditWare's accuracy to the random-guess
    rate (1/3 for the NDP triple, 1/5 for the matmul catalog); this policy
    makes that reference line an executable baseline rather than a constant.
    """

    def select(
        self,
        context: np.ndarray,
        models: Sequence[ArmModel],
        catalog: HardwareCatalog,
        rng: np.random.Generator,
    ) -> PolicyDecision:
        if len(models) != len(catalog):
            raise ValueError(
                f"got {len(models)} models for {len(catalog)} hardware configurations"
            )
        arm = int(rng.integers(len(catalog)))
        estimates = self.estimate_runtimes(context, models, catalog)
        return PolicyDecision(
            arm_index=arm,
            hardware=catalog[arm],
            explored=True,
            estimates=estimates,
        )
