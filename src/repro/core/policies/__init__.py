"""Arm-selection policies.

The paper's contribution uses one policy -- the decaying contextual ε-greedy
strategy with tolerant selection (Algorithm 1) -- and names "different and
more complex contextual bandit algorithms" as future work.  This sub-package
provides that policy plus the standard alternatives so the ablation
benchmarks can compare them on the same workloads:

* :class:`~repro.core.policies.epsilon_greedy.DecayingEpsilonGreedyPolicy` --
  the paper's Algorithm 1 selection rule.
* :class:`~repro.core.policies.greedy.GreedyPolicy` -- exploitation only
  (ε = 0 throughout), with the same tolerant selection.
* :class:`~repro.core.policies.random_policy.RandomPolicy` -- exploration
  only; the paper's "random guess" reference line.
* :class:`~repro.core.policies.ucb.LinUCBPolicy` -- optimism in the face of
  uncertainty over the per-arm linear models.
* :class:`~repro.core.policies.thompson.ThompsonSamplingPolicy` -- posterior
  sampling over the per-arm linear models.
"""

from repro.core.policies.base import BanditPolicy, PolicyDecision
from repro.core.policies.epsilon_greedy import DecayingEpsilonGreedyPolicy
from repro.core.policies.greedy import GreedyPolicy
from repro.core.policies.random_policy import RandomPolicy
from repro.core.policies.ucb import LinUCBPolicy
from repro.core.policies.thompson import ThompsonSamplingPolicy

__all__ = [
    "BanditPolicy",
    "PolicyDecision",
    "DecayingEpsilonGreedyPolicy",
    "GreedyPolicy",
    "RandomPolicy",
    "LinUCBPolicy",
    "ThompsonSamplingPolicy",
]
