"""The Decaying Contextual ε-Greedy strategy with tolerant selection (Algorithm 1)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.core.policies.base import BanditPolicy, PolicyDecision
from repro.core.selection import SelectionOutcome, ToleranceConfig, TolerantSelector
from repro.hardware import HardwareCatalog, ResourceCostModel
from repro.utils.validation import check_in_range, check_probability

__all__ = ["DecayingEpsilonGreedyPolicy"]


class DecayingEpsilonGreedyPolicy(BanditPolicy):
    """Algorithm 1's selection rule.

    Each round:

    * with probability ε, pick a hardware configuration uniformly at random
      (exploration);
    * otherwise, run tolerant selection over the per-arm runtime estimates
      (exploitation): find the estimated-fastest arm, widen it by the
      tolerance, and pick the most resource-efficient arm within the
      tolerance window;
    * decay ε by the factor α.

    The paper's experiments use ``epsilon0 = 1`` and ``decay = 0.99``.

    Parameters
    ----------
    epsilon0:
        Initial exploration probability ε₀.
    decay:
        Multiplicative decay factor α applied to ε after every selection.
    tolerance:
        ``tolerance_ratio`` / ``tolerance_seconds`` pair forwarded to the
        tolerant selector; defaults to strict (runtime-optimal) selection.
    cost_model:
        Resource-efficiency model used to break near-ties; defaults to the
        standard CPU+memory footprint.
    min_epsilon:
        Lower bound on ε so that very long runs keep a sliver of exploration.
    explore_unseen_first:
        When true (default), any arm that has never been tried is selected
        before exploitation starts.  The paper initialises every arm's
        coefficients at zero -- which makes all estimates identical until an
        arm has data -- so a round-robin "seed every arm once" phase is the
        behaviour its ε₀ = 1 start effectively produces, made deterministic.
    decay_during_seeding:
        When false (default), ε is *not* decayed on the deterministic
        seed-unseen-arms rounds: those rounds consume no ε-draw, so decaying
        there would shift the effective exploration schedule of Algorithm 1
        by ``|H|`` rounds.  Set true to restore the old (shifted) behaviour.
    audit_estimates:
        When true (default), every decision carries the per-arm runtime
        estimates in ``PolicyDecision.estimates`` even on exploration rounds
        where they do not influence the choice.  The evaluation engine turns
        this off: skipping the unused estimates on explore/seed rounds does
        not change any decision (no random draw is involved) but removes a
        per-round cost.
    """

    def __init__(
        self,
        epsilon0: float = 1.0,
        decay: float = 0.99,
        tolerance: Optional[ToleranceConfig] = None,
        cost_model: Optional[ResourceCostModel] = None,
        min_epsilon: float = 0.0,
        explore_unseen_first: bool = True,
        decay_during_seeding: bool = False,
        audit_estimates: bool = True,
    ):
        self.epsilon0 = check_probability(epsilon0, "epsilon0")
        self.decay = check_in_range(decay, "decay", 0.0, 1.0, inclusive=True)
        self.min_epsilon = check_probability(min_epsilon, "min_epsilon")
        if self.min_epsilon > self.epsilon0:
            raise ValueError(
                f"min_epsilon ({min_epsilon}) cannot exceed epsilon0 ({epsilon0})"
            )
        self.selector = TolerantSelector(tolerance=tolerance, cost_model=cost_model)
        self.explore_unseen_first = bool(explore_unseen_first)
        self.decay_during_seeding = bool(decay_during_seeding)
        self.audit_estimates = bool(audit_estimates)
        self._epsilon = self.epsilon0
        self._round = 0
        # Arms only ever gain observations within a run, so once every model
        # has been seen the per-round unseen scan can be skipped; reset()
        # re-arms it.
        self._all_seen = False

    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """The exploration probability that will be used for the next selection."""
        return self._epsilon

    @property
    def tolerance(self) -> ToleranceConfig:
        return self.selector.tolerance

    def reset(self) -> None:
        self._epsilon = self.epsilon0
        self._round = 0
        self._all_seen = False

    # ------------------------------------------------------------------ #
    def select(
        self,
        context: np.ndarray,
        models: Sequence[ArmModel],
        catalog: HardwareCatalog,
        rng: np.random.Generator,
    ) -> PolicyDecision:
        if len(models) != len(catalog):
            raise ValueError(
                f"got {len(models)} models for {len(catalog)} hardware configurations"
            )
        epsilon_used = self._epsilon
        explored = False
        seeded = False
        estimates: Dict[str, float] = {}
        detail: Dict[str, float] = {"epsilon": epsilon_used, "round": float(self._round)}

        if self.explore_unseen_first and not self._all_seen:
            unseen = [i for i, model in enumerate(models) if not model.is_fitted]
            if not unseen:
                self._all_seen = True
        else:
            unseen = []
        if self.explore_unseen_first and unseen:
            arm = int(unseen[0])
            explored = True
            seeded = True
            detail["seeded_unseen_arm"] = 1.0
        elif float(rng.random()) < epsilon_used:
            arm = int(rng.integers(len(catalog)))
            explored = True
        elif self.audit_estimates:
            estimates = self.estimate_runtimes(context, models, catalog)
            outcome: SelectionOutcome = self.selector.select(catalog, estimates)
            arm = catalog.index_of(outcome.chosen)
            detail["tolerance_limit"] = outcome.limit
            detail["n_candidates"] = float(len(outcome.candidates))
            detail["traded_runtime"] = outcome.traded_runtime
        else:
            # Hot path: identical decisions to the dict-based selector (see
            # TolerantSelector.select_index), minus the audit bookkeeping.
            values = self.estimate_runtime_vector(context, models)
            arm, fastest, limit, n_candidates = self.selector.select_index(catalog, values)
            detail["tolerance_limit"] = limit
            detail["n_candidates"] = float(n_candidates)
            detail["traded_runtime"] = float(values[arm] - values[fastest])
        if not estimates and self.audit_estimates:
            estimates = self.estimate_runtimes(context, models, catalog)

        # Decay ε after every round that ran the genuine ε-draw branch
        # (Algorithm 1, line 12).  Deterministic seeding rounds consume no
        # ε-draw, so by default they do not advance the schedule.
        if not seeded or self.decay_during_seeding:
            self._epsilon = max(self.min_epsilon, self._epsilon * self.decay)
        self._round += 1

        return PolicyDecision(
            arm_index=arm,
            hardware=catalog[arm],
            explored=explored,
            estimates=estimates,
            detail=detail,
        )
