"""Thompson sampling over the per-arm linear-model posteriors.

Each round, a runtime is *sampled* from every arm's coefficient posterior and
the arm with the smallest sampled runtime is chosen.  Arms the system is
uncertain about produce widely varying samples and therefore keep getting
tried occasionally; well-understood arms converge to their point estimates.

Requires arm models that can sample predictions
(:class:`~repro.core.models.online_linear.RecursiveLeastSquaresModel`).  For
models without a posterior the policy falls back to the point estimate plus
Gaussian noise proportional to the model's uncertainty score, which preserves
the explore-while-uncertain behaviour.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.core.models.online_linear import RecursiveLeastSquaresModel
from repro.core.policies.base import BanditPolicy, PolicyDecision
from repro.hardware import HardwareCatalog
from repro.utils.validation import check_positive

__all__ = ["ThompsonSamplingPolicy"]


class ThompsonSamplingPolicy(BanditPolicy):
    """Posterior-sampling arm selection for runtime minimisation.

    Parameters
    ----------
    prior_scale:
        Standard deviation of the pseudo-posterior used for never-tried arms
        and for models that expose no sampling interface; expressed as a
        fraction of the current best point estimate (or 1.0 s when no arm has
        data yet).
    """

    def __init__(self, prior_scale: float = 1.0):
        self.prior_scale = check_positive(prior_scale, "prior_scale")

    def _sample_runtime(
        self, model: ArmModel, context: np.ndarray, rng: np.random.Generator, reference: float
    ) -> float:
        if isinstance(model, RecursiveLeastSquaresModel) and model.is_fitted:
            return model.sample_prediction(context, rng)
        if not model.is_fitted:
            # An uninformed arm: sample far-and-wide around the reference so
            # it has a real chance of winning the round.
            return float(rng.normal(reference, self.prior_scale * max(reference, 1.0)))
        estimate = model.predict(context)
        width = model.uncertainty(context)
        if not np.isfinite(width):
            width = self.prior_scale * max(abs(estimate), 1.0)
        return float(rng.normal(estimate, width))

    def select(
        self,
        context: np.ndarray,
        models: Sequence[ArmModel],
        catalog: HardwareCatalog,
        rng: np.random.Generator,
    ) -> PolicyDecision:
        if len(models) != len(catalog):
            raise ValueError(
                f"got {len(models)} models for {len(catalog)} hardware configurations"
            )
        estimates = self.estimate_runtimes(context, models, catalog)
        fitted = [v for m, v in zip(models, estimates.values()) if m.is_fitted]
        reference = float(min(fitted)) if fitted else 1.0
        samples: Dict[str, float] = {
            hw.name: self._sample_runtime(model, context, rng, reference)
            for hw, model in zip(catalog, models)
        }
        chosen_name = min(samples, key=lambda name: (samples[name], catalog.index_of(name)))
        arm = catalog.index_of(chosen_name)
        explored = not models[arm].is_fitted
        return PolicyDecision(
            arm_index=arm,
            hardware=catalog[arm],
            explored=explored,
            estimates=estimates,
            detail={f"sample_{name}": float(v) for name, v in samples.items()},
        )
