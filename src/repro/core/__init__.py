"""The paper's primary contribution: the BanditWare recommender.

Sub-packages:

* :mod:`repro.core.models` -- per-arm runtime models (the linear
  ``R(H_i, x) = w_iᵀx + b_i`` assumption, in batch, ridge and recursive
  forms).
* :mod:`repro.core.policies` -- arm-selection policies, including the paper's
  decaying contextual ε-greedy strategy and the future-work alternatives
  (LinUCB, Thompson sampling).
* :mod:`repro.core.selection` -- the tolerant selection step
  (``tolerance_ratio`` / ``tolerance_seconds``).
* :mod:`repro.core.rewards` -- reward/regret accounting.
* :mod:`repro.core.banditware` -- the :class:`BanditWare` façade tying it all
  together.
"""

from repro.core.banditware import BanditWare, ModelSnapshot, ObservationRecord, Recommendation
from repro.core.models import (
    ArmModel,
    LeastSquaresModel,
    RecursiveLeastSquaresModel,
    RidgeModel,
)
from repro.core.policies import (
    BanditPolicy,
    DecayingEpsilonGreedyPolicy,
    GreedyPolicy,
    LinUCBPolicy,
    PolicyDecision,
    RandomPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.rewards import RegretLedger, RewardConfig, RoundOutcome, runtime_to_reward
from repro.core.selection import SelectionOutcome, ToleranceConfig, TolerantSelector

__all__ = [
    "BanditWare",
    "Recommendation",
    "ObservationRecord",
    "ModelSnapshot",
    "ArmModel",
    "LeastSquaresModel",
    "RidgeModel",
    "RecursiveLeastSquaresModel",
    "BanditPolicy",
    "PolicyDecision",
    "DecayingEpsilonGreedyPolicy",
    "GreedyPolicy",
    "RandomPolicy",
    "LinUCBPolicy",
    "ThompsonSamplingPolicy",
    "ToleranceConfig",
    "TolerantSelector",
    "SelectionOutcome",
    "RegretLedger",
    "RewardConfig",
    "RoundOutcome",
    "runtime_to_reward",
]
