"""Interface shared by all per-arm runtime models."""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_feature_matrix

__all__ = ["ArmModel"]


class ArmModel(abc.ABC):
    """A runtime model for one hardware configuration (one bandit arm).

    Implementations estimate ``R(x) ≈ wᵀ x + b`` from the ``(x, runtime)``
    observations assigned to the arm, and expose:

    * :meth:`update` -- incorporate one observation.
    * :meth:`predict` -- point estimate of the runtime for a context.
    * :meth:`uncertainty` -- (optional) standard-error-style score used by
      optimism/posterior-sampling policies; models that do not track
      uncertainty return ``inf`` until fitted and ``0`` afterwards.

    Parameters
    ----------
    n_features:
        Dimensionality of the context vector ``x``.
    """

    def __init__(self, n_features: int):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.n_features = int(n_features)
        self._n_observations = 0

    # ------------------------------------------------------------------ #
    @property
    def n_observations(self) -> int:
        """Number of observations the model has been updated with."""
        return self._n_observations

    @property
    def is_fitted(self) -> bool:
        """Whether the model has seen at least one observation."""
        return self._n_observations > 0

    def _check_context(self, x: Sequence[float] | np.ndarray) -> np.ndarray:
        arr = check_feature_matrix(x, name="x", n_features=self.n_features)
        if arr.shape[0] != 1:
            raise ValueError(f"expected a single context vector, got {arr.shape[0]} rows")
        return arr[0]

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def update(self, x: Sequence[float] | np.ndarray, runtime: float) -> None:
        """Incorporate one ``(context, observed runtime)`` pair."""

    def update_vector(self, context: np.ndarray, runtime: float) -> None:
        """Hot-path :meth:`update` for an already-validated context/runtime.

        Callers (the BanditWare façade) guarantee ``context`` is a finite 1-D
        float array of length :attr:`n_features` and ``runtime`` a finite
        non-negative float.  The default simply delegates to :meth:`update`.
        """
        self.update(context, runtime)

    @abc.abstractmethod
    def predict(self, x: Sequence[float] | np.ndarray) -> float:
        """Point estimate of the runtime for context ``x`` (seconds)."""

    def predict_vector(self, context: np.ndarray) -> float:
        """Point estimate for an already-validated 1-D context vector.

        This is the hot path used by the policies (the façade validates the
        context once); overrides must stay numerically identical to
        :meth:`predict`.  The default delegates to :meth:`predict` so custom
        (possibly non-linear) models stay correct; the built-in linear models
        override it with validation-free arithmetic.
        """
        return float(self.predict(context))

    def uncertainty(self, x: Sequence[float] | np.ndarray) -> float:
        """A non-negative uncertainty score for the prediction at ``x``.

        The default implementation knows nothing about uncertainty: it returns
        ``inf`` before the first observation (forcing optimistic policies to
        try the arm) and ``0`` afterwards.
        """
        self._check_context(x)
        return float("inf") if not self.is_fitted else 0.0

    @property
    @abc.abstractmethod
    def coefficients(self) -> np.ndarray:
        """Current slope estimates ``w`` (length ``n_features``)."""

    @property
    @abc.abstractmethod
    def intercept(self) -> float:
        """Current intercept estimate ``b``."""

    # ------------------------------------------------------------------ #
    def predict_batch(self, X: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Vectorised point estimates over the rows of an ``(n, m)`` design matrix.

        Every model in the library is linear in the context, so the default
        implementation evaluates ``X @ w + b`` in one matrix product.
        Subclasses with extra structure override this (and must stay
        numerically consistent with calling :meth:`predict` row by row).
        """
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        return X @ self.coefficients + self.intercept

    def predict_many(self, X: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Alias of :meth:`predict_batch` (kept for backwards compatibility)."""
        return self.predict_batch(X)

    def update_batch(
        self,
        X: Sequence[Sequence[float]] | np.ndarray,
        y: Sequence[float] | np.ndarray,
    ) -> None:
        """Incorporate many ``(context, runtime)`` pairs at once.

        The default implementation loops over :meth:`update`; models whose
        refit cost does not depend on the number of new rows (e.g. batch
        least squares) override this to defer the solve until all rows are
        ingested, which is exactly equivalent to sequential updates because
        only the final coefficients are observable.
        """
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        for row, value in zip(X, y):
            self.update(row, float(value))

    def coefficient_dict(self, feature_names: Sequence[str]) -> Dict[str, float]:
        """Named coefficients ``{"w_<feature>": ..., "b": ...}``."""
        if len(feature_names) != self.n_features:
            raise ValueError(
                f"expected {self.n_features} feature names, got {len(feature_names)}"
            )
        out = {f"w_{name}": float(w) for name, w in zip(feature_names, self.coefficients)}
        out["b"] = float(self.intercept)
        return out

    def clone_unfitted(self) -> "ArmModel":
        """A fresh, unfitted model with the same hyper-parameters."""
        return type(self)(self.n_features)  # pragma: no cover - overridden where needed
