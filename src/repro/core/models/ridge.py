"""L2-regularised per-arm model."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.utils.validation import check_feature_matrix, check_positive

__all__ = ["RidgeModel"]


class RidgeModel(ArmModel):
    """Ridge regression ``argmin Σ (R - (wᵀx + b))² + λ‖w‖²``.

    Early bandit rounds give each arm only a handful of observations; plain
    least squares is then ill-conditioned (and the minimum-norm solution can
    swing wildly between rounds).  A small L2 penalty keeps the per-arm
    estimates stable, which is why the BanditWare facade exposes this model as
    an alternative ``arm_model`` choice and why the ablation benchmark
    compares it against the paper's plain OLS.

    The intercept is never penalised.

    Parameters
    ----------
    n_features:
        Context dimensionality.
    alpha:
        Regularisation strength λ (must be positive).
    fit_intercept:
        When false the intercept is pinned at zero.
    """

    def __init__(self, n_features: int, alpha: float = 1.0, fit_intercept: bool = True):
        super().__init__(n_features)
        self.alpha = check_positive(alpha, "alpha")
        self.fit_intercept = bool(fit_intercept)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._w = np.zeros(self.n_features)
        self._b = 0.0

    # ------------------------------------------------------------------ #
    @property
    def coefficients(self) -> np.ndarray:
        return self._w.copy()

    @property
    def intercept(self) -> float:
        return float(self._b)

    # ------------------------------------------------------------------ #
    def _refit(self) -> None:
        X = np.vstack(self._X)
        y = np.asarray(self._y, dtype=float)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        n_params = design.shape[1]
        penalty = self.alpha * np.eye(n_params)
        if self.fit_intercept:
            penalty[-1, -1] = 0.0  # do not shrink the intercept
        gram = design.T @ design + penalty
        solution = np.linalg.solve(gram, design.T @ y)
        if self.fit_intercept:
            self._w = solution[:-1]
            self._b = float(solution[-1])
        else:
            self._w = solution
            self._b = 0.0

    def update(self, x: Sequence[float] | np.ndarray, runtime: float) -> None:
        context = self._check_context(x)
        runtime = float(runtime)
        if not np.isfinite(runtime) or runtime < 0:
            raise ValueError(f"runtime must be a finite non-negative number, got {runtime}")
        self._X.append(context)
        self._y.append(runtime)
        self._n_observations += 1
        self._refit()

    def update_batch(
        self,
        X: Sequence[Sequence[float]] | np.ndarray,
        y: Sequence[float] | np.ndarray,
    ) -> None:
        """Ingest many rows with a single refit at the end.

        The ridge refit recomputes the penalised gram from the stored data, so
        deferring it until the last row yields exactly the coefficients that a
        sequence of :meth:`update` calls would leave behind.
        """
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        if y.size and (not np.all(np.isfinite(y)) or np.any(y < 0)):
            raise ValueError("y must contain finite non-negative runtimes")
        for row, value in zip(X, y):
            self._X.append(np.asarray(row, dtype=float))
            self._y.append(float(value))
            self._n_observations += 1
        if len(y):
            self._refit()

    def fit(self, X, y) -> "RidgeModel":
        """Replace stored data with ``(X, y)`` and refit."""
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        self._X = [row for row in X]
        self._y = list(map(float, y))
        self._n_observations = len(self._y)
        if self._X:
            self._refit()
        else:
            self._w = np.zeros(self.n_features)
            self._b = 0.0
        return self

    def predict(self, x: Sequence[float] | np.ndarray) -> float:
        context = self._check_context(x)
        return float(self._w @ context + self._b)

    def predict_vector(self, context: np.ndarray) -> float:
        return float(self._w @ context + self._b)

    def predict_batch(self, X: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        return X @ self._w + self._b

    def uncertainty(self, x: Sequence[float] | np.ndarray) -> float:
        """Ridge-posterior style score ``sqrt(xᵀ (XᵀX + λI)⁻¹ x)``."""
        context = self._check_context(x)
        if not self.is_fitted:
            return float("inf")
        X = np.vstack(self._X)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
            query = np.concatenate([context, [1.0]])
        else:
            design = X
            query = context
        gram = design.T @ design + self.alpha * np.eye(design.shape[1])
        inv = np.linalg.inv(gram)
        return float(np.sqrt(max(query @ inv @ query, 0.0)))

    def clone_unfitted(self) -> "RidgeModel":
        return RidgeModel(self.n_features, alpha=self.alpha, fit_intercept=self.fit_intercept)
