"""Recursive (online) least-squares per-arm model.

Algorithm 1 refits from the arm's full data store every round; that is O(n·m²)
per update and requires keeping every observation.  The recursive
least-squares (RLS) formulation maintains the inverse Gram matrix directly via
the Sherman–Morrison identity, giving O(m²) updates with no stored data and
identical predictions to ridge regression on the same stream.  It also exposes
the posterior covariance ``A⁻¹`` needed by LinUCB and Thompson-sampling
policies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.utils.validation import check_feature_matrix, check_positive

__all__ = ["RecursiveLeastSquaresModel"]


class RecursiveLeastSquaresModel(ArmModel):
    """Sherman–Morrison recursive least squares with an un-penalised intercept column.

    Maintains ``A = λI + Σ zᵢzᵢᵀ`` and ``c = Σ zᵢ·Rᵢ`` for augmented contexts
    ``z = [x, 1]``, storing ``A⁻¹`` directly.

    Parameters
    ----------
    n_features:
        Context dimensionality (excluding the intercept column).
    regularization:
        Initial λ on the diagonal of ``A`` (ridge prior precision).
    noise_std:
        Assumed observation-noise standard deviation; scales
        :meth:`uncertainty` and :meth:`sample_prediction`.
    """

    def __init__(self, n_features: int, regularization: float = 1.0, noise_std: float = 1.0):
        super().__init__(n_features)
        self.regularization = check_positive(regularization, "regularization")
        self.noise_std = check_positive(noise_std, "noise_std")
        dim = self.n_features + 1
        self._a_inv = np.eye(dim) / self.regularization
        self._c = np.zeros(dim)
        self._theta = np.zeros(dim)

    # ------------------------------------------------------------------ #
    def _augment(self, x: Sequence[float] | np.ndarray) -> np.ndarray:
        context = self._check_context(x)
        return np.concatenate([context, [1.0]])

    @property
    def coefficients(self) -> np.ndarray:
        return self._theta[:-1].copy()

    @property
    def intercept(self) -> float:
        return float(self._theta[-1])

    @property
    def covariance(self) -> np.ndarray:
        """The current ``A⁻¹`` (posterior covariance up to the noise scale)."""
        return self._a_inv.copy()

    # ------------------------------------------------------------------ #
    def update(self, x: Sequence[float] | np.ndarray, runtime: float) -> None:
        runtime = float(runtime)
        if not np.isfinite(runtime) or runtime < 0:
            raise ValueError(f"runtime must be a finite non-negative number, got {runtime}")
        z = self._augment(x)
        # Sherman–Morrison rank-1 update of A⁻¹.
        a_inv_z = self._a_inv @ z
        denom = 1.0 + float(z @ a_inv_z)
        self._a_inv -= np.outer(a_inv_z, a_inv_z) / denom
        self._c += z * runtime
        self._theta = self._a_inv @ self._c
        self._n_observations += 1

    def predict(self, x: Sequence[float] | np.ndarray) -> float:
        z = self._augment(x)
        return float(self._theta @ z)

    def predict_vector(self, context: np.ndarray) -> float:
        z = np.concatenate([np.asarray(context, dtype=float), [1.0]])
        return float(self._theta @ z)

    def predict_batch(self, X: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        return X @ self._theta[:-1] + self._theta[-1]

    def uncertainty(self, x: Sequence[float] | np.ndarray) -> float:
        """Posterior predictive standard deviation ``σ·sqrt(zᵀA⁻¹z)``."""
        z = self._augment(x)
        return float(self.noise_std * np.sqrt(max(z @ self._a_inv @ z, 0.0)))

    def sample_prediction(self, x: Sequence[float] | np.ndarray, rng: np.random.Generator) -> float:
        """Draw a runtime prediction from the coefficient posterior (Thompson sampling)."""
        z = self._augment(x)
        cov = (self.noise_std**2) * self._a_inv
        # Symmetrise to protect the Cholesky-based sampler from rounding drift.
        cov = 0.5 * (cov + cov.T)
        theta_sample = rng.multivariate_normal(self._theta, cov, method="eigh")
        return float(theta_sample @ z)

    def clone_unfitted(self) -> "RecursiveLeastSquaresModel":
        return RecursiveLeastSquaresModel(
            self.n_features, regularization=self.regularization, noise_std=self.noise_std
        )
