"""Batch ordinary-least-squares per-arm model (the paper's Algorithm 1, line 11).

Algorithm 1 literally re-stacks the arm's full data store and re-solves the
least-squares problem after every observation, which is O(n·m²) per round.
This implementation keeps the same observable behaviour while maintaining the
normal equations ``XᵀX`` and ``Xᵀy`` incrementally (a rank-1 update per
observation), so once the system is over-determined each refit is an O(m³)
solve of an m×m system instead of a decomposition of the full n×m design.
The under-determined early rounds still use :func:`numpy.linalg.lstsq` on the
stored design, reproducing the seed implementation's minimum-norm solution
bit for bit; ``solver="full"`` forces that literal re-solve on every update
and is kept as the reference baseline for the engine benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.models.base import ArmModel
from repro.utils.validation import check_feature_matrix

try:  # Raw LAPACK fast paths; the numpy wrappers remain as fallbacks.
    from scipy.linalg.lapack import dgelsd as _dgelsd
    from scipy.linalg.lapack import dgelsd_lwork as _dgelsd_lwork
    from scipy.linalg.lapack import dposv as _dposv
except ImportError:  # pragma: no cover - scipy is present in the dev image
    _dgelsd = _dgelsd_lwork = _dposv = None

#: Workspace sizes for dgelsd, keyed by (n_rows, n_params).
_GELSD_WORKSPACE: Dict[Tuple[int, int], Tuple[int, int]] = {}

__all__ = ["LeastSquaresModel"]


class LeastSquaresModel(ArmModel):
    """Refit ``w, b = argmin Σ (R - (wᵀx + b))²`` over all stored observations.

    Parameters
    ----------
    n_features:
        Context dimensionality.
    fit_intercept:
        When false the intercept is pinned to zero and only slopes are fitted.
    solver:
        ``"incremental"`` (default) maintains the normal equations across
        updates and solves the m×m system once the fit is over-determined;
        ``"full"`` re-solves :func:`numpy.linalg.lstsq` on the stacked design
        after every update (the seed implementation's literal behaviour).
        Both store the full data so :attr:`observations` and
        :meth:`uncertainty` are identical.
    """

    def __init__(self, n_features: int, fit_intercept: bool = True, solver: str = "incremental"):
        super().__init__(n_features)
        if solver not in ("incremental", "full"):
            raise ValueError(f"solver must be 'incremental' or 'full', got {solver!r}")
        self.fit_intercept = bool(fit_intercept)
        self.solver = solver
        self._w = np.zeros(self.n_features)
        self._b = 0.0
        p = self._n_params
        self._gram = np.zeros((p, p))
        self._xty = np.zeros(p)
        # Stored data: rows of the *augmented* design [x | 1] (or just x when
        # fit_intercept is off) in a capacity-doubling buffer, so refits never
        # re-stack Python lists.
        self._capacity = 8
        self._design = np.empty((self._capacity, p))
        self._targets = np.empty(self._capacity)
        self._outer_buf = np.empty((p, p))

    # ------------------------------------------------------------------ #
    @property
    def _n_params(self) -> int:
        return self.n_features + (1 if self.fit_intercept else 0)

    @property
    def coefficients(self) -> np.ndarray:
        return self._w.copy()

    @property
    def intercept(self) -> float:
        return float(self._b)

    @property
    def observations(self) -> tuple:
        """The stored ``(X, y)`` data as arrays (copies)."""
        n = self._n_observations
        return (
            self._design[:n, : self.n_features].copy(),
            self._targets[:n].copy(),
        )

    # ------------------------------------------------------------------ #
    def _grow(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        while self._capacity < needed:
            self._capacity *= 2
        design = np.empty((self._capacity, self._n_params))
        targets = np.empty(self._capacity)
        n = self._n_observations
        design[:n] = self._design[:n]
        targets[:n] = self._targets[:n]
        self._design = design
        self._targets = targets

    def _set_solution(self, solution: np.ndarray) -> None:
        if self.fit_intercept:
            self._w = solution[:-1]
            self._b = float(solution[-1])
        else:
            self._w = solution
            self._b = 0.0

    def _refit_full(self) -> None:
        """The seed behaviour: minimum-norm lstsq on the stacked design.

        Uses the dgelsd LAPACK driver directly when scipy is available --
        dgelsd with numpy's default cutoff is bit-identical to
        ``numpy.linalg.lstsq(..., rcond=None)`` (same routine, same inputs)
        without the wrapper overhead.
        """
        n = self._n_observations
        p = self._n_params
        if _dgelsd is not None:
            key = (n, p)
            workspace = _GELSD_WORKSPACE.get(key)
            if workspace is None:
                lwork, iwork, _ = _dgelsd_lwork(n, p, 1)
                workspace = (int(lwork), int(iwork))
                _GELSD_WORKSPACE[key] = workspace
            rhs = np.zeros(max(n, p))
            rhs[:n] = self._targets[:n]
            rcond = np.finfo(np.float64).eps * max(n, p)
            solution, _, _, info = _dgelsd(
                self._design[:n], rhs, workspace[0], workspace[1], rcond, False, True
            )
            if info == 0:
                self._set_solution(solution[:p])
                return
        solution, *_ = np.linalg.lstsq(self._design[:n], self._targets[:n], rcond=None)
        self._set_solution(solution)

    def _resolve(self) -> None:
        """Recompute coefficients after the data store / gram changed."""
        if not self._n_observations:
            self._w = np.zeros(self.n_features)
            self._b = 0.0
            return
        if self.solver == "full" or self._n_observations < self._n_params:
            # Under-determined rounds keep the minimum-norm solution the
            # normal equations cannot express.
            self._refit_full()
            return
        if _dposv is not None:
            # Cholesky solve of the SPD normal equations; info > 0 flags a
            # (semi-)singular gram, e.g. repeated contexts.
            _, solution, info = _dposv(self._gram, self._xty, lower=0)
            if info == 0 and np.all(np.isfinite(solution)):
                self._set_solution(solution)
                return
            self._refit_full()
            return
        try:
            solution = np.linalg.solve(self._gram, self._xty)
        except np.linalg.LinAlgError:
            # Singular gram (e.g. repeated contexts): fall back to lstsq.
            self._refit_full()
            return
        if not np.all(np.isfinite(solution)):
            self._refit_full()
            return
        self._set_solution(solution)

    def _ingest(self, context: np.ndarray, runtime: float) -> None:
        n = self._n_observations
        self._grow(n + 1)
        row = self._design[n]
        row[: self.n_features] = context
        if self.fit_intercept:
            row[-1] = 1.0
        self._targets[n] = runtime
        np.multiply(row[:, None], row[None, :], out=self._outer_buf)
        self._gram += self._outer_buf
        self._xty += row * runtime
        self._n_observations = n + 1

    def update(self, x: Sequence[float] | np.ndarray, runtime: float) -> None:
        context = self._check_context(x)
        runtime = float(runtime)
        if not np.isfinite(runtime) or runtime < 0:
            raise ValueError(f"runtime must be a finite non-negative number, got {runtime}")
        self._ingest(context, runtime)
        self._resolve()

    def update_vector(self, context: np.ndarray, runtime: float) -> None:
        self._ingest(context, runtime)
        self._resolve()

    def update_batch(
        self,
        X: Sequence[Sequence[float]] | np.ndarray,
        y: Sequence[float] | np.ndarray,
    ) -> None:
        """Ingest many rows with a single refit at the end.

        Equivalent to sequential :meth:`update` calls (rank-1 gram updates are
        applied in row order, so the final state is identical); only the
        intermediate solves are skipped.
        """
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        if y.size and (not np.all(np.isfinite(y)) or np.any(y < 0)):
            raise ValueError("y must contain finite non-negative runtimes")
        for row, value in zip(X, y):
            self._ingest(row, float(value))
        if len(y):
            self._resolve()

    def fit(self, X: Sequence[Sequence[float]] | np.ndarray, y: Sequence[float] | np.ndarray) -> "LeastSquaresModel":
        """Replace the stored data with ``(X, y)`` and refit in one shot."""
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        if y.size and (not np.all(np.isfinite(y)) or np.any(y < 0)):
            raise ValueError("y must contain finite non-negative runtimes")
        n = X.shape[0]
        p = self._n_params
        self._n_observations = 0
        self._grow(max(n, 8))
        self._n_observations = n
        self._design[:n, : self.n_features] = X
        if self.fit_intercept:
            self._design[:n, -1] = 1.0
        self._targets[:n] = y
        if n:
            design = self._design[:n]
            self._gram = design.T @ design
            self._xty = design.T @ y
            self._resolve()
        else:
            self._gram = np.zeros((p, p))
            self._xty = np.zeros(p)
            self._w = np.zeros(self.n_features)
            self._b = 0.0
        return self

    def predict(self, x: Sequence[float] | np.ndarray) -> float:
        context = self._check_context(x)
        return float(self._w @ context + self._b)

    def predict_vector(self, context: np.ndarray) -> float:
        return float(self._w @ context + self._b)

    def predict_batch(self, X: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        return X @ self._w + self._b

    def uncertainty(self, x: Sequence[float] | np.ndarray) -> float:
        """Standard error of the prediction under a homoscedastic-noise OLS model.

        Returns ``inf`` until the arm has strictly more observations than
        parameters (so residual variance is estimable).
        """
        context = self._check_context(x)
        n_params = self._n_params
        if self._n_observations <= n_params:
            return float("inf")
        n = self._n_observations
        design = self._design[:n]
        y = self._targets[:n]
        if self.fit_intercept:
            query = np.concatenate([context, [1.0]])
            theta = np.concatenate([self._w, [self._b]])
        else:
            query = context
            theta = self._w
        residuals = y - design @ theta
        dof = max(n - n_params, 1)
        sigma2 = float(residuals @ residuals) / dof
        # pseudo-inverse guards against collinear contexts in early rounds.
        cov = np.linalg.pinv(design.T @ design) * sigma2
        return float(np.sqrt(max(query @ cov @ query, 0.0)))

    def clone_unfitted(self) -> "LeastSquaresModel":
        return LeastSquaresModel(
            self.n_features, fit_intercept=self.fit_intercept, solver=self.solver
        )
