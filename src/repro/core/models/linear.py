"""Batch ordinary-least-squares per-arm model (the paper's Algorithm 1, line 11)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.models.base import ArmModel
from repro.utils.validation import check_feature_matrix

__all__ = ["LeastSquaresModel"]


class LeastSquaresModel(ArmModel):
    """Refit ``w, b = argmin Σ (R - (wᵀx + b))²`` over all stored observations.

    This is a literal implementation of line 11 of Algorithm 1: the arm keeps
    its full data store ``D_k`` and re-solves the least-squares problem after
    every new observation.  The solve uses :func:`numpy.linalg.lstsq` on the
    design matrix ``[X | 1]``, which handles the under-determined early rounds
    (fewer samples than features) by returning the minimum-norm solution.

    Parameters
    ----------
    n_features:
        Context dimensionality.
    fit_intercept:
        When false the intercept is pinned to zero and only slopes are fitted.
    """

    def __init__(self, n_features: int, fit_intercept: bool = True):
        super().__init__(n_features)
        self.fit_intercept = bool(fit_intercept)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._w = np.zeros(self.n_features)
        self._b = 0.0

    # ------------------------------------------------------------------ #
    @property
    def coefficients(self) -> np.ndarray:
        return self._w.copy()

    @property
    def intercept(self) -> float:
        return float(self._b)

    @property
    def observations(self) -> tuple:
        """The stored ``(X, y)`` data as arrays (copies)."""
        if not self._X:
            return np.empty((0, self.n_features)), np.empty(0)
        return np.vstack(self._X), np.asarray(self._y, dtype=float)

    # ------------------------------------------------------------------ #
    def _refit(self) -> None:
        X = np.vstack(self._X)
        y = np.asarray(self._y, dtype=float)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self._w = solution[:-1]
            self._b = float(solution[-1])
        else:
            self._w = solution
            self._b = 0.0

    def update(self, x: Sequence[float] | np.ndarray, runtime: float) -> None:
        context = self._check_context(x)
        runtime = float(runtime)
        if not np.isfinite(runtime) or runtime < 0:
            raise ValueError(f"runtime must be a finite non-negative number, got {runtime}")
        self._X.append(context)
        self._y.append(runtime)
        self._n_observations += 1
        self._refit()

    def fit(self, X: Sequence[Sequence[float]] | np.ndarray, y: Sequence[float] | np.ndarray) -> "LeastSquaresModel":
        """Replace the stored data with ``(X, y)`` and refit in one shot."""
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        if y.size and (not np.all(np.isfinite(y)) or np.any(y < 0)):
            raise ValueError("y must contain finite non-negative runtimes")
        self._X = [row for row in X]
        self._y = list(map(float, y))
        self._n_observations = len(self._y)
        if self._X:
            self._refit()
        else:
            self._w = np.zeros(self.n_features)
            self._b = 0.0
        return self

    def predict(self, x: Sequence[float] | np.ndarray) -> float:
        context = self._check_context(x)
        return float(self._w @ context + self._b)

    def uncertainty(self, x: Sequence[float] | np.ndarray) -> float:
        """Standard error of the prediction under a homoscedastic-noise OLS model.

        Returns ``inf`` until the arm has strictly more observations than
        parameters (so residual variance is estimable).
        """
        context = self._check_context(x)
        n_params = self.n_features + (1 if self.fit_intercept else 0)
        if self._n_observations <= n_params:
            return float("inf")
        X, y = self.observations
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
            query = np.concatenate([context, [1.0]])
        else:
            design = X
            query = context
        residuals = y - design @ np.concatenate([self._w, [self._b]] if self.fit_intercept else [self._w])
        dof = max(self._n_observations - n_params, 1)
        sigma2 = float(residuals @ residuals) / dof
        gram = design.T @ design
        # pseudo-inverse guards against collinear contexts in early rounds.
        cov = np.linalg.pinv(gram) * sigma2
        return float(np.sqrt(max(query @ cov @ query, 0.0)))

    def clone_unfitted(self) -> "LeastSquaresModel":
        return LeastSquaresModel(self.n_features, fit_intercept=self.fit_intercept)
