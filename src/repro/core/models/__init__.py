"""Per-arm runtime models.

Algorithm 1 assumes ``R(H_i, x) = w_iᵀ x + b_i`` and refits each arm's
coefficients by least squares after every observation.  This sub-package
provides that estimator plus two drop-in alternatives:

* :class:`~repro.core.models.linear.LeastSquaresModel` -- the paper's batch
  ordinary-least-squares fit over all stored observations for the arm.
* :class:`~repro.core.models.ridge.RidgeModel` -- L2-regularised variant,
  better conditioned when an arm has seen fewer samples than features.
* :class:`~repro.core.models.online_linear.RecursiveLeastSquaresModel` --
  an O(m²) per-update recursive formulation that never re-touches stored
  data; numerically equivalent to ridge on the same stream.  Also exposes the
  posterior covariance needed by LinUCB / Thompson-sampling policies.
"""

from repro.core.models.base import ArmModel
from repro.core.models.linear import LeastSquaresModel
from repro.core.models.ridge import RidgeModel
from repro.core.models.online_linear import RecursiveLeastSquaresModel

__all__ = [
    "ArmModel",
    "LeastSquaresModel",
    "RidgeModel",
    "RecursiveLeastSquaresModel",
]
