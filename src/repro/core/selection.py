"""Tolerant hardware selection (the exploitation branch of Algorithm 1).

Given estimated runtimes for every hardware configuration, the paper's
exploitation step is:

1. find the estimated-fastest configuration ``H_fastest``;
2. compute the tolerance threshold
   ``R_limit = (1 + tolerance_ratio) · R̂(H_fastest, x) + tolerance_seconds``;
3. among all configurations with ``R̂(H_i, x) ≤ R_limit``, choose the one with
   the most resource efficiency.

Setting both tolerance parameters to zero makes the selection purely
runtime-optimal; non-zero values trade a bounded slowdown for lighter-weight
hardware, which is what Figures 11 and 12 study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware import HardwareCatalog, HardwareConfig, ResourceCostModel
from repro.utils.validation import check_non_negative

__all__ = ["ToleranceConfig", "TolerantSelector", "SelectionOutcome"]


@dataclass(frozen=True)
class ToleranceConfig:
    """The two tolerance knobs of Algorithm 1.

    Attributes
    ----------
    ratio:
        ``tolerance_ratio`` (``tr``): allowed *relative* slowdown over the
        estimated-fastest runtime (0.05 = 5 %).
    seconds:
        ``tolerance_seconds`` (``ts``): allowed *absolute* extra seconds.
    """

    ratio: float = 0.0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.ratio, "tolerance ratio")
        check_non_negative(self.seconds, "tolerance seconds")

    def limit(self, fastest_estimate: float | np.ndarray) -> float | np.ndarray:
        """``R_limit`` for a given estimated-fastest runtime.

        Accepts a scalar or an array of fastest estimates (the vectorised
        scorer passes one per evaluation workflow).

        The threshold is clamped to never fall below the fastest estimate
        itself: early under-determined linear fits can predict a *negative*
        fastest runtime, and ``(1 + ratio) · R̂`` with ``R̂ < 0`` would then
        shrink the window so far that even the estimated-fastest arm fails to
        qualify.  The fastest arm must always be a candidate.
        """
        if isinstance(fastest_estimate, (int, float)):
            fastest = float(fastest_estimate)
            raw = (1.0 + self.ratio) * fastest + self.seconds
            return raw if raw >= fastest else fastest
        fastest = np.asarray(fastest_estimate, dtype=float)
        if self.ratio == 0.0 and self.seconds == 0.0:
            # Strict tolerance: the limit is the fastest estimate itself.
            clamped = fastest
        else:
            raw = (1.0 + self.ratio) * fastest + self.seconds
            clamped = np.maximum(raw, fastest)
        if np.ndim(fastest_estimate) == 0:
            return float(clamped)
        return clamped

    @property
    def is_strict(self) -> bool:
        """True when both tolerances are zero (pure runtime minimisation)."""
        return self.ratio == 0.0 and self.seconds == 0.0


@dataclass(frozen=True)
class SelectionOutcome:
    """The result of one tolerant selection, with its full explanation.

    Attributes
    ----------
    chosen:
        The selected hardware configuration.
    fastest:
        The estimated-fastest configuration.
    estimates:
        ``{hardware_name: estimated runtime}`` used for the decision.
    limit:
        The tolerance threshold ``R_limit``.
    candidates:
        Names of configurations whose estimates fell within the threshold.
    """

    chosen: HardwareConfig
    fastest: HardwareConfig
    estimates: Dict[str, float]
    limit: float
    candidates: List[str]

    @property
    def traded_runtime(self) -> float:
        """Extra estimated seconds accepted relative to the fastest option."""
        return self.estimates[self.chosen.name] - self.estimates[self.fastest.name]


class TolerantSelector:
    """Implements the tolerant selection strategy of Algorithm 1.

    Parameters
    ----------
    tolerance:
        The ratio/seconds tolerance pair (defaults to strict selection).
    cost_model:
        Resource-efficiency scoring used to pick among near-fastest
        candidates; defaults to the standard CPU+memory footprint.
    """

    def __init__(
        self,
        tolerance: Optional[ToleranceConfig] = None,
        cost_model: Optional[ResourceCostModel] = None,
    ):
        self.tolerance = tolerance or ToleranceConfig()
        self.cost_model = cost_model or ResourceCostModel()
        self._order_cache: dict = {}

    # ------------------------------------------------------------------ #
    def efficiency_order(self, catalog: HardwareCatalog) -> np.ndarray:
        """Arm indices sorted most-efficient first (cached per catalog).

        The ordering (including tie-breaks) is exactly the one
        :meth:`ResourceCostModel.rank` produces, so picking the first
        candidate in this order equals
        :meth:`ResourceCostModel.most_efficient` over the candidate set.
        """
        key = id(catalog)
        cached = self._order_cache.get(key)
        if cached is None or cached[0] is not catalog:
            order = np.asarray(
                [catalog.index_of(hw) for hw in self.cost_model.rank(catalog)],
                dtype=np.intp,
            )
            cached = (catalog, order)
            self._order_cache = {key: cached}
        return cached[1]

    def select_index(self, catalog: HardwareCatalog, values: np.ndarray) -> tuple:
        """Array-based tolerant selection (the policies' hot path).

        ``values`` are per-arm runtime estimates in catalog order.  Returns
        ``(chosen_arm, fastest_arm, limit, n_candidates)`` and makes exactly
        the same choice as :meth:`select` on the same estimates.
        """
        values = np.asarray(values, dtype=float)
        if values.shape[0] != len(catalog):
            raise ValueError(f"expected {len(catalog)} estimates, got {values.shape[0]}")
        # A finite sum implies all-finite; the detailed scan only runs when
        # the cheap scalar check trips (non-finite entries or fp overflow).
        if not np.isfinite(values.sum()) and not np.all(np.isfinite(values)):
            bad = {catalog[int(i)].name: float(values[i]) for i in np.flatnonzero(~np.isfinite(values))}
            raise ValueError(f"runtime estimates must be finite, got {bad}")
        fastest = int(np.argmin(values))
        limit = self.tolerance.limit(float(values[fastest]))
        mask = values <= limit
        chosen = fastest
        for arm in self.efficiency_order(catalog):
            if mask[arm]:
                chosen = int(arm)
                break
        return chosen, fastest, limit, int(mask.sum())
    def select(
        self,
        catalog: HardwareCatalog,
        estimates: Dict[str, float] | Sequence[float] | np.ndarray,
    ) -> SelectionOutcome:
        """Apply tolerant selection to runtime ``estimates``.

        Parameters
        ----------
        catalog:
            The hardware configurations under consideration.
        estimates:
            Either a mapping ``{hardware_name: runtime}`` or a sequence whose
            order matches the catalog's arm order.

        Returns
        -------
        SelectionOutcome
            The chosen configuration plus the decision's full audit trail.
        """
        est = self._normalise_estimates(catalog, estimates)
        fastest_name = min(est, key=lambda name: (est[name], catalog.index_of(name)))
        fastest = catalog[fastest_name]
        limit = self.tolerance.limit(est[fastest_name])
        candidates = [hw for hw in catalog if est[hw.name] <= limit]
        if not candidates:  # numerical guard: the fastest always qualifies
            candidates = [fastest]
        chosen = self.cost_model.most_efficient(candidates)
        return SelectionOutcome(
            chosen=chosen,
            fastest=fastest,
            estimates=est,
            limit=limit,
            candidates=[hw.name for hw in candidates],
        )

    @staticmethod
    def _normalise_estimates(
        catalog: HardwareCatalog,
        estimates: Dict[str, float] | Sequence[float] | np.ndarray,
    ) -> Dict[str, float]:
        if isinstance(estimates, dict):
            missing = [name for name in catalog.names if name not in estimates]
            if missing:
                raise KeyError(f"estimates missing hardware {missing}")
            est = {name: float(estimates[name]) for name in catalog.names}
        else:
            values = np.asarray(estimates, dtype=float).ravel()
            if values.shape[0] != len(catalog):
                raise ValueError(
                    f"expected {len(catalog)} estimates, got {values.shape[0]}"
                )
            est = {name: float(v) for name, v in zip(catalog.names, values)}
        bad = {k: v for k, v in est.items() if not np.isfinite(v)}
        if bad:
            raise ValueError(f"runtime estimates must be finite, got {bad}")
        return est
