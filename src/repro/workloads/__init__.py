"""Application workload models and trace generators.

The paper evaluates BanditWare on three applications whose run histories were
collected on real NDP hardware.  Those traces are not public, so each
application is modelled here as a *workload model*: a feature sampler plus a
ground-truth runtime function per hardware configuration, calibrated to the
qualitative behaviour the paper reports (see DESIGN.md, "Substitutions").

* :mod:`~repro.workloads.base` -- abstractions shared by all workload models
  (:class:`WorkloadModel`, :class:`RunRecord`, :class:`TraceGenerator`).
* :mod:`~repro.workloads.cycles` -- the Cycles agroecosystem workflow
  (Experiment 1): makespan linear in the number of tasks, with hardware
  settings that present a clear trade-off.
* :mod:`~repro.workloads.burnpro3d` -- the BurnPro3D prescribed-fire platform
  (Experiment 2): the Table 1 feature set, runtimes linear in the features
  with heavy noise, and hardware settings that behave nearly identically.
* :mod:`~repro.workloads.matmul` -- the tiled matrix-squaring application
  (Experiment 3): runtime dominated by matrix size, five hardware options
  with genuinely different parallel efficiency, plus an actually executable
  tiled kernel.
* :mod:`~repro.workloads.synthetic` -- a generic linear-runtime workload used
  by property tests and ablations.
* :mod:`~repro.workloads.arrivals` -- workflow arrival processes (Poisson,
  bursty, closed-loop) for the multi-tenant contention evaluation.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoopArrivals,
    HotspotArrivals,
    PoissonArrivals,
)
from repro.workloads.base import (
    RunRecord,
    TraceGenerator,
    WorkloadModel,
    records_to_frame,
)
from repro.workloads.cycles import CyclesWorkload
from repro.workloads.burnpro3d import BurnPro3DWorkload, BP3D_FEATURES, BP3D_FEATURE_DESCRIPTIONS
from repro.workloads.matmul import MatrixMultiplicationWorkload, tiled_matrix_square
from repro.workloads.synthetic import LinearRuntimeWorkload
from repro.workloads.llm import LLMInferenceWorkload, gpu_catalog

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "ClosedLoopArrivals",
    "HotspotArrivals",
    "LLMInferenceWorkload",
    "gpu_catalog",
    "RunRecord",
    "TraceGenerator",
    "WorkloadModel",
    "records_to_frame",
    "CyclesWorkload",
    "BurnPro3DWorkload",
    "BP3D_FEATURES",
    "BP3D_FEATURE_DESCRIPTIONS",
    "MatrixMultiplicationWorkload",
    "tiled_matrix_square",
    "LinearRuntimeWorkload",
]
