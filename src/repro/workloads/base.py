"""Abstractions shared by every application workload model."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.rng import SeedLike, as_generator

__all__ = ["WorkloadModel", "RunRecord", "TraceGenerator", "records_to_frame"]


@dataclass(frozen=True)
class RunRecord:
    """One observed application run.

    This is the unit of the run-history tables the paper's Figure 1 pipeline
    parses: workflow features, the hardware it ran on, and the observed
    runtime in seconds.
    """

    run_id: str
    application: str
    hardware: str
    runtime_seconds: float
    features: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.runtime_seconds < 0:
            raise ValueError(
                f"runtime_seconds must be non-negative, got {self.runtime_seconds}"
            )

    def feature_vector(self, feature_names: Sequence[str]) -> np.ndarray:
        """Return the features in the order given by ``feature_names``."""
        missing = [name for name in feature_names if name not in self.features]
        if missing:
            raise KeyError(f"run {self.run_id} is missing features {missing}")
        return np.asarray([float(self.features[name]) for name in feature_names])

    def to_row(self) -> Dict[str, Any]:
        """Flatten into a row dictionary suitable for a :class:`DataFrame`."""
        row: Dict[str, Any] = {
            "run_id": self.run_id,
            "application": self.application,
            "hardware": self.hardware,
            "runtime_seconds": self.runtime_seconds,
        }
        row.update({k: float(v) for k, v in self.features.items()})
        return row


def records_to_frame(records: Iterable[RunRecord]) -> DataFrame:
    """Convert run records into a columnar :class:`DataFrame`."""
    rows = [r.to_row() for r in records]
    if not rows:
        return DataFrame({})
    return DataFrame.from_records(rows)


class WorkloadModel(abc.ABC):
    """A feature sampler plus a per-hardware ground-truth runtime function.

    Subclasses describe one application.  They must expose:

    * :attr:`name` -- application name used in run records.
    * :attr:`feature_names` -- ordered feature names (the context ``x``).
    * :meth:`sample_features` -- draw one workflow's feature dictionary.
    * :meth:`expected_runtime` -- noise-free expected runtime of the workflow
      on a hardware configuration (seconds).
    * :meth:`noise_scale` -- standard deviation of the runtime noise for a
      given workflow/hardware pair (may depend on both).

    :meth:`observed_runtime` then draws a noisy, non-negative runtime, which
    is what the cluster simulator reports back to BanditWare.
    """

    #: application name; subclasses override.
    name: str = "workload"

    @property
    @abc.abstractmethod
    def feature_names(self) -> List[str]:
        """Ordered names of the context features."""

    @abc.abstractmethod
    def sample_features(self, rng: np.random.Generator) -> Dict[str, float]:
        """Draw the feature dictionary of one incoming workflow."""

    @abc.abstractmethod
    def expected_runtime(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        """Noise-free expected runtime (seconds) of ``features`` on ``hardware``."""

    def noise_scale(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        """Standard deviation of runtime noise; default 2% of the expectation."""
        return 0.02 * self.expected_runtime(features, hardware)

    # ------------------------------------------------------------------ #
    def feature_vector(self, features: Dict[str, float]) -> np.ndarray:
        """Order ``features`` according to :attr:`feature_names`."""
        missing = [name for name in self.feature_names if name not in features]
        if missing:
            raise KeyError(f"features missing {missing} for workload {self.name!r}")
        return np.asarray([float(features[name]) for name in self.feature_names])

    def observed_runtime(
        self,
        features: Dict[str, float],
        hardware: HardwareConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Draw a noisy runtime observation (never below 1% of the expectation)."""
        rng = as_generator(rng)
        mean = self.expected_runtime(features, hardware)
        sigma = self.noise_scale(features, hardware)
        value = float(rng.normal(mean, sigma)) if sigma > 0 else mean
        return max(value, 0.01 * mean, 0.0)

    def best_hardware(
        self, features: Dict[str, float], catalog: HardwareCatalog
    ) -> HardwareConfig:
        """The configuration with the smallest *expected* runtime for ``features``."""
        return min(catalog, key=lambda hw: (self.expected_runtime(features, hw), hw.name))

    def runtime_table(
        self, features: Dict[str, float], catalog: HardwareCatalog
    ) -> Dict[str, float]:
        """Expected runtime of ``features`` on every configuration in ``catalog``."""
        return {hw.name: self.expected_runtime(features, hw) for hw in catalog}


class TraceGenerator:
    """Generate run-history tables from a workload model and hardware catalog.

    The paper starts from "a small dataset of application runs collected
    previously"; this class manufactures the equivalent synthetic dataset so
    experiments and benchmarks have a deterministic stand-in.

    Parameters
    ----------
    workload:
        The application model to sample from.
    catalog:
        Hardware configurations runs may be placed on.
    seed:
        Seed controlling both feature sampling and runtime noise.
    """

    def __init__(self, workload: WorkloadModel, catalog: HardwareCatalog, seed: SeedLike = None):
        self.workload = workload
        self.catalog = catalog
        self._rng = as_generator(seed)
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self.workload.name}-{self._counter:06d}"

    def generate_run(self, hardware: Optional[HardwareConfig] = None) -> RunRecord:
        """Sample one workflow and run it on ``hardware`` (random if omitted)."""
        features = self.workload.sample_features(self._rng)
        if hardware is None:
            hardware = self.catalog[int(self._rng.integers(len(self.catalog)))]
        runtime = self.workload.observed_runtime(features, hardware, self._rng)
        return RunRecord(
            run_id=self._next_id(),
            application=self.workload.name,
            hardware=hardware.name,
            runtime_seconds=runtime,
            features=features,
        )

    def generate_runs(self, n: int, hardware: Optional[HardwareConfig] = None) -> List[RunRecord]:
        """Generate ``n`` runs (each on ``hardware`` or on random hardware)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return [self.generate_run(hardware) for _ in range(n)]

    def generate_grid(self, n_per_hardware: int) -> List[RunRecord]:
        """Generate ``n_per_hardware`` runs on *every* configuration.

        This mirrors how the paper collected its datasets: the same burn units
        / workflow sizes repeated "across all hardware configurations".
        """
        if n_per_hardware < 0:
            raise ValueError(f"n_per_hardware must be non-negative, got {n_per_hardware}")
        records: List[RunRecord] = []
        for _ in range(n_per_hardware):
            features = self.workload.sample_features(self._rng)
            for hw in self.catalog:
                runtime = self.workload.observed_runtime(features, hw, self._rng)
                records.append(
                    RunRecord(
                        run_id=self._next_id(),
                        application=self.workload.name,
                        hardware=hw.name,
                        runtime_seconds=runtime,
                        features=dict(features),
                    )
                )
        return records

    def generate_frame(self, n: int, grid: bool = False) -> DataFrame:
        """Generate a dataset and return it as a :class:`DataFrame`.

        With ``grid=True``, ``n`` is interpreted as runs *per hardware* and the
        same sampled workflows are repeated on every configuration.
        """
        records = self.generate_grid(n) if grid else self.generate_runs(n)
        return records_to_frame(records)
