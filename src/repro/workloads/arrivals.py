"""Workflow arrival processes for multi-tenant cluster evaluation.

The paper's online loop schedules exactly one workflow per round -- an
idealised, contention-free arrival pattern.  Shared platforms see something
else entirely: independent tenants submitting on their own clocks, traffic
bursts, and users who wait for one workflow to finish before launching the
next.  These small models generate those streams for the contention-aware
evaluation (:mod:`repro.evaluation.contention`):

* :class:`PoissonArrivals` -- memoryless open-loop traffic at a fixed rate;
* :class:`BurstyArrivals` -- open-loop traffic arriving in periodic bursts
  (workflow campaigns, cron-triggered pipelines);
* :class:`ClosedLoopArrivals` -- a closed loop keeping a fixed number of
  workflows in flight, submitting the next one when a previous one finishes
  (with an optional think time).  With ``concurrency=1`` and zero think time
  this reproduces the paper's one-workflow-per-round loop exactly.
* :class:`HotspotArrivals` -- Poisson traffic whose rate multiplies by
  ``hotspot_factor`` inside a window (a flash crowd on one tenant); the
  serving-layer load harness uses it to stress a single shard.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "ClosedLoopArrivals",
    "HotspotArrivals",
]


class ArrivalProcess(abc.ABC):
    """An open-loop arrival process: submission times independent of completions."""

    @abc.abstractmethod
    def arrival_times(self, n: int, rng: np.random.Generator) -> List[float]:
        """Absolute submission times (seconds, non-decreasing) for ``n`` workflows."""


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Workflows arrive as a Poisson process of ``rate_per_second``.

    Attributes
    ----------
    rate_per_second:
        Mean arrival rate; inter-arrival gaps are exponential with mean
        ``1 / rate_per_second``.
    start_time:
        Time of reference for the first gap.
    """

    rate_per_second: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError(f"rate_per_second must be positive, got {self.rate_per_second}")
        if self.start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {self.start_time}")

    def arrival_times(self, n: int, rng: np.random.Generator) -> List[float]:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        gaps = rng.exponential(1.0 / self.rate_per_second, size=n)
        return [float(t) for t in self.start_time + np.cumsum(gaps)]


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Workflows arrive in periodic bursts of ``burst_size``.

    Every ``burst_interval_seconds`` a batch of ``burst_size`` workflows is
    submitted (optionally spread over ``jitter_seconds`` of uniform jitter so
    submissions within a burst are not perfectly simultaneous).  This is the
    saturating pattern of campaign-style workloads -- e.g. a parameter sweep
    launched all at once -- and is what exposes head-of-line behaviour in the
    scheduler.
    """

    burst_size: int
    burst_interval_seconds: float
    start_time: float = 0.0
    jitter_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {self.burst_size}")
        if self.burst_interval_seconds <= 0:
            raise ValueError(
                f"burst_interval_seconds must be positive, got {self.burst_interval_seconds}"
            )
        if self.start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {self.start_time}")
        if self.jitter_seconds < 0:
            raise ValueError(f"jitter_seconds must be non-negative, got {self.jitter_seconds}")

    def arrival_times(self, n: int, rng: np.random.Generator) -> List[float]:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        times: List[float] = []
        burst_index = 0
        while len(times) < n:
            base = self.start_time + burst_index * self.burst_interval_seconds
            for _ in range(min(self.burst_size, n - len(times))):
                jitter = float(rng.uniform(0.0, self.jitter_seconds)) if self.jitter_seconds else 0.0
                times.append(base + jitter)
            burst_index += 1
        return sorted(times)


@dataclass(frozen=True)
class HotspotArrivals(ArrivalProcess):
    """Poisson traffic with a flash-crowd window at an elevated rate.

    Outside ``[hotspot_start, hotspot_start + hotspot_duration)`` arrivals
    follow a Poisson process at ``base_rate_per_second``; inside the window
    the rate multiplies by ``hotspot_factor``.  This is the "one tenant goes
    viral" pattern that concentrates load on a single shard of the serving
    layer (the Zipfian mix skews *which* application is hot; the hotspot
    skews *when*).

    Implemented by thinning-free piecewise simulation: exponential gaps are
    drawn at the rate in force at the current time, so the process is exact
    on each piece and only the boundary gap is approximated (negligible for
    window lengths many gaps long).
    """

    base_rate_per_second: float
    hotspot_factor: float = 5.0
    hotspot_start: float = 0.0
    hotspot_duration: float = 10.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_per_second <= 0:
            raise ValueError(
                f"base_rate_per_second must be positive, got {self.base_rate_per_second}"
            )
        if self.hotspot_factor < 1:
            raise ValueError(f"hotspot_factor must be >= 1, got {self.hotspot_factor}")
        if self.hotspot_start < 0:
            raise ValueError(f"hotspot_start must be non-negative, got {self.hotspot_start}")
        if self.hotspot_duration <= 0:
            raise ValueError(
                f"hotspot_duration must be positive, got {self.hotspot_duration}"
            )
        if self.start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {self.start_time}")

    def _rate_at(self, t: float) -> float:
        if self.hotspot_start <= t < self.hotspot_start + self.hotspot_duration:
            return self.base_rate_per_second * self.hotspot_factor
        return self.base_rate_per_second

    def arrival_times(self, n: int, rng: np.random.Generator) -> List[float]:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        times: List[float] = []
        t = self.start_time
        for _ in range(n):
            t += float(rng.exponential(1.0 / self._rate_at(t)))
            times.append(t)
        return times


@dataclass(frozen=True)
class ClosedLoopArrivals:
    """A closed loop: at most ``concurrency`` workflows in flight per tenant.

    The first ``concurrency`` workflows are submitted at ``start_time``; each
    subsequent workflow is submitted ``think_time_seconds`` after one of the
    tenant's previous workflows completes.  Unlike the open-loop processes,
    submission times depend on completions, so the contention runner drives
    this process event by event rather than from a precomputed schedule.
    """

    concurrency: int = 1
    think_time_seconds: float = 0.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.think_time_seconds < 0:
            raise ValueError(
                f"think_time_seconds must be non-negative, got {self.think_time_seconds}"
            )
        if self.start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {self.start_time}")
