"""The BurnPro3D (BP3D) prescribed-fire simulation workload (Experiment 2).

BP3D runs QUIC-Fire style physics simulations over GeoJSON "burn units".  The
paper's Table 1 lists the workflow features considered; prior work cited by
the paper established that BP3D runtime is well approximated as a linear
combination of those features, and Experiment 2 shows two further properties
this model must reproduce:

* the three NDP hardware settings behave **nearly identically** -- the paper
  measures a hardware-selection accuracy of ~34 %, i.e. the random-guess rate
  for three arms, and explains that "running the application on any of the
  configurations results in nearly identical runtime";
* the data are **noisy**: the full 1316-sample fit has an RMSE of ~12 k
  seconds while runtimes reach ~70 k seconds (Figure 6), and 25-sample linear
  regressions achieve R² of only ~13 % on average (Figure 5).

The synthetic model therefore uses a single linear response dominated by the
burn-unit ``area`` and the simulation length, multiplies it by a per-hardware
factor within ±2 %, and adds heavy heteroscedastic noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware import HardwareConfig
from repro.workloads.base import WorkloadModel

__all__ = ["BurnPro3DWorkload", "BP3D_FEATURES", "BP3D_FEATURE_DESCRIPTIONS"]


#: Feature names, in the order used as the bandit context (Table 1 of the paper).
BP3D_FEATURES: List[str] = [
    "surface_moisture",
    "canopy_moisture",
    "wind_direction",
    "wind_speed",
    "sim_time",
    "run_max_mem_rss_bytes",
    "area",
]

#: Human-readable descriptions copied from Table 1.
BP3D_FEATURE_DESCRIPTIONS: Dict[str, str] = {
    "surface_moisture": "surface fuel moisture",
    "canopy_moisture": "canopy fuel moisture",
    "wind_direction": "direction of surface winds",
    "wind_speed": "speed of surface winds",
    "sim_time": "maximum simulation steps allowed",
    "run_max_mem_rss_bytes": "maximum RSS bytes allowed per run",
    "area": "calculated regional surface area",
}


class BurnPro3DWorkload(WorkloadModel):
    """Synthetic BP3D runtime model over the Table 1 feature set.

    Parameters
    ----------
    n_burn_units:
        Number of distinct burn units (the paper uses six of varying sizes
        and regions); each unit has a characteristic area and the sampler
        picks a unit then perturbs weather inputs.
    area_range:
        Minimum and maximum burn-unit area in square metres.  Figure 6's
        x-axis spans roughly 1e6 to 2.5e6 m².
    hardware_spread:
        Maximum relative runtime difference between hardware settings.  The
        paper observes near-identical behaviour, so the default is 2 %.
    noise_seconds:
        Base standard deviation of the runtime noise (seconds); combined with
        a component proportional to the expected runtime it yields a full-fit
        RMSE on the order of 1e4 seconds, as in the paper.
    seed_units:
        Seed used only to place the burn-unit areas (kept separate from the
        sampling RNG so the same six units are used across experiments).
    """

    name = "burnpro3d"

    def __init__(
        self,
        n_burn_units: int = 6,
        area_range: tuple = (1.0e6, 2.5e6),
        hardware_spread: float = 0.02,
        noise_seconds: float = 9000.0,
        seed_units: int = 20240613,
    ):
        if n_burn_units < 1:
            raise ValueError(f"n_burn_units must be >= 1, got {n_burn_units}")
        lo, hi = float(area_range[0]), float(area_range[1])
        if not (0 < lo < hi):
            raise ValueError(f"area_range must satisfy 0 < lo < hi, got {area_range}")
        if hardware_spread < 0:
            raise ValueError("hardware_spread must be non-negative")
        if noise_seconds < 0:
            raise ValueError("noise_seconds must be non-negative")
        self.n_burn_units = int(n_burn_units)
        self.area_range = (lo, hi)
        self.hardware_spread = float(hardware_spread)
        self.noise_seconds = float(noise_seconds)
        unit_rng = np.random.default_rng(seed_units)
        # Six (by default) fixed burn units spanning the area range.
        self.burn_unit_areas = np.sort(unit_rng.uniform(lo, hi, size=self.n_burn_units))

        # Ground-truth linear coefficients (seconds per unit of each feature).
        # Runtime is dominated by area and sim_time; weather terms are small
        # modifiers; the memory cap barely matters.  With area up to 2.5e6 and
        # sim_time up to ~12000 steps the expected runtime tops out around
        # 6-7e4 seconds, matching Figure 6's y-axis.
        self._coefficients: Dict[str, float] = {
            "surface_moisture": -60.0,
            "canopy_moisture": -40.0,
            "wind_direction": 0.5,
            "wind_speed": 90.0,
            "sim_time": 1.8,
            "run_max_mem_rss_bytes": 2.0e-7,
            "area": 0.016,
        }
        self._intercept = 1200.0

    # ------------------------------------------------------------------ #
    @property
    def feature_names(self) -> List[str]:
        return list(BP3D_FEATURES)

    def sample_features(self, rng: np.random.Generator) -> Dict[str, float]:
        """Pick a burn unit, then draw weather and simulation settings."""
        area = float(self.burn_unit_areas[int(rng.integers(self.n_burn_units))])
        # small per-run jitter: re-gridding the same unit changes its
        # calculated surface area slightly.
        area *= float(rng.uniform(0.97, 1.03))
        return {
            "surface_moisture": float(rng.uniform(2.0, 20.0)),        # percent
            "canopy_moisture": float(rng.uniform(40.0, 140.0)),       # percent
            "wind_direction": float(rng.uniform(0.0, 360.0)),         # degrees
            "wind_speed": float(rng.uniform(1.0, 12.0)),              # m/s
            "sim_time": float(rng.integers(2000, 12001)),             # steps
            "run_max_mem_rss_bytes": float(rng.uniform(4.0e9, 3.2e10)),
            "area": area,
        }

    def _hardware_factor(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        """Per-hardware, per-workflow runtime multiplier within ``1 ± hardware_spread``.

        The paper observes that the three NDP settings behave nearly
        identically and that even the full-data fit only reaches random-guess
        accuracy at picking the best one.  To reproduce that, the factor has
        (i) a tiny systematic component that shrinks with compute capacity and
        (ii) a workflow-dependent oscillation (a smooth, deterministic
        function of the weather inputs and the hardware) that decides which
        configuration actually wins a given run.  The oscillation is far
        below the runtime noise and is not linear in the features, so no
        linear recommender -- bandit or full fit -- can predict the winner
        better than chance, which is exactly the regime Experiment 2 reports.
        """
        capacity = hardware.compute_capacity
        # Systematic part: capacity ~[5, 10] (the NDP triple) mapped onto
        # [+spread/4, -spread/4].
        reference = 7.5
        scale = (capacity - reference) / reference
        systematic = -self.hardware_spread * 0.25 * np.clip(scale, -1.0, 1.0)
        # Workflow-dependent part: which configuration wins depends on the
        # run's inputs (cache/IO alignment effects in the real platform).
        phase = (
            0.017 * float(features.get("wind_direction", 0.0))
            + 0.23 * float(features.get("surface_moisture", 0.0))
            + 0.00071 * float(features.get("sim_time", 0.0))
        )
        wobble = self.hardware_spread * 0.5 * np.sin(phase * (1.0 + 0.37 * capacity))
        return 1.0 + systematic + wobble

    def expected_runtime(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        base = self._intercept + sum(
            self._coefficients[name] * float(features[name]) for name in self.feature_names
        )
        base = max(base, 300.0)
        return base * self._hardware_factor(features, hardware)

    def noise_scale(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        expected = self.expected_runtime(features, hardware)
        return float(np.hypot(self.noise_seconds, 0.12 * expected))

    # ------------------------------------------------------------------ #
    def true_coefficients(self, hardware: HardwareConfig) -> Dict[str, float]:
        """The linear backbone of the runtime model (hardware wobble excluded).

        The per-workflow hardware factor averages to roughly 1, so these
        coefficients are what a well-fitted linear model should approach.
        """
        coeffs = {f"w_{k}": v for k, v in self._coefficients.items()}
        coeffs["b"] = self._intercept
        return coeffs

    @staticmethod
    def feature_table() -> List[Dict[str, str]]:
        """Rows of Table 1 (feature name + description)."""
        return [
            {"feature": name, "description": BP3D_FEATURE_DESCRIPTIONS[name]}
            for name in BP3D_FEATURES
        ]
