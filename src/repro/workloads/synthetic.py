"""A generic linear-runtime workload for property tests and ablations.

Algorithm 1 assumes the runtime of a workflow on hardware ``H_i`` follows a
linear model ``R(H_i, x) = w_iᵀ x + b_i``.  :class:`LinearRuntimeWorkload`
realises exactly that assumption with user-supplied (or randomly drawn)
coefficients, so property-based tests can verify that the bandit recovers
known ground truth and ablation benchmarks can sweep how violations of the
assumption (extra noise, curvature) degrade accuracy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.base import WorkloadModel

__all__ = ["LinearRuntimeWorkload"]


class LinearRuntimeWorkload(WorkloadModel):
    """A workload whose expected runtime is exactly linear in its features.

    Parameters
    ----------
    feature_ranges:
        ``{feature_name: (low, high)}`` -- features are sampled uniformly in
        their range.
    coefficients:
        ``{hardware_name: (w, b)}`` where ``w`` maps feature names to slopes
        and ``b`` is the intercept.  Every hardware the workload will run on
        must have an entry.
    noise_sigma:
        Homoscedastic runtime noise standard deviation (seconds).
    nonlinearity:
        Optional callable applied to the linear prediction, e.g. to study
        model mis-specification.  Defaults to identity.
    name:
        Application name recorded in run records.
    """

    def __init__(
        self,
        feature_ranges: Mapping[str, Tuple[float, float]],
        coefficients: Mapping[str, Tuple[Mapping[str, float], float]],
        noise_sigma: float = 1.0,
        nonlinearity: Optional[Callable[[float], float]] = None,
        name: str = "synthetic-linear",
    ):
        if not feature_ranges:
            raise ValueError("feature_ranges must contain at least one feature")
        for fname, (lo, hi) in feature_ranges.items():
            if not lo <= hi:
                raise ValueError(f"feature {fname!r} has empty range ({lo}, {hi})")
        if not coefficients:
            raise ValueError("coefficients must contain at least one hardware entry")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self._feature_ranges = {k: (float(lo), float(hi)) for k, (lo, hi) in feature_ranges.items()}
        self._coefficients: Dict[str, Tuple[Dict[str, float], float]] = {}
        for hw_name, (w, b) in coefficients.items():
            missing = set(self._feature_ranges) - set(w)
            if missing:
                raise ValueError(
                    f"coefficients for {hw_name!r} missing features {sorted(missing)}"
                )
            self._coefficients[hw_name] = ({k: float(v) for k, v in w.items()}, float(b))
        self.noise_sigma = float(noise_sigma)
        # ``None`` means identity; storing it (instead of a lambda) keeps the
        # workload picklable, which the parallel evaluation engine relies on.
        self.nonlinearity = nonlinearity
        self.name = name

    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        catalog: HardwareCatalog,
        n_features: int = 3,
        seed: SeedLike = None,
        noise_sigma: float = 1.0,
        slope_scale: float = 5.0,
        intercept_scale: float = 50.0,
        feature_high: float = 100.0,
        name: str = "synthetic-linear",
    ) -> "LinearRuntimeWorkload":
        """Draw a random linear workload whose arms genuinely differ.

        Slopes are positive (bigger inputs run longer) and each hardware gets
        its own slope/intercept draw, so with high probability different
        regions of the feature space prefer different hardware.
        """
        rng = as_generator(seed)
        feature_names = [f"x{i}" for i in range(n_features)]
        feature_ranges = {name_: (0.0, feature_high) for name_ in feature_names}
        coefficients = {}
        for hw in catalog:
            w = {name_: float(rng.uniform(0.1, slope_scale)) for name_ in feature_names}
            b = float(rng.uniform(0.0, intercept_scale))
            coefficients[hw.name] = (w, b)
        return cls(
            feature_ranges=feature_ranges,
            coefficients=coefficients,
            noise_sigma=noise_sigma,
            name=name,
        )

    # ------------------------------------------------------------------ #
    @property
    def feature_names(self) -> List[str]:
        return list(self._feature_ranges.keys())

    @property
    def hardware_names(self) -> List[str]:
        """Hardware names this workload has coefficients for."""
        return list(self._coefficients.keys())

    def sample_features(self, rng: np.random.Generator) -> Dict[str, float]:
        return {
            name: float(rng.uniform(lo, hi))
            for name, (lo, hi) in self._feature_ranges.items()
        }

    def expected_runtime(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        if hardware.name not in self._coefficients:
            raise KeyError(
                f"no coefficients for hardware {hardware.name!r}; "
                f"known: {self.hardware_names}"
            )
        w, b = self._coefficients[hardware.name]
        value = b + sum(w[name] * float(features[name]) for name in self.feature_names)
        if self.nonlinearity is not None:
            value = self.nonlinearity(value)
        return max(float(value), 0.0)

    def noise_scale(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        return self.noise_sigma

    # ------------------------------------------------------------------ #
    def true_coefficients(self, hardware: HardwareConfig) -> Dict[str, float]:
        """Ground-truth ``w``/``b`` for ``hardware`` (prefixed like the fitted models)."""
        w, b = self._coefficients[hardware.name]
        out = {f"w_{k}": v for k, v in w.items()}
        out["b"] = b
        return out
