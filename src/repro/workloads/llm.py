"""A GPU-aware LLM-inference workload (the paper's stated future work).

Section 5 of the paper lists "additional applications, including large
language models (LLMs), enabling us to incorporate GPU information into
hardware recommendations" as future work.  This module implements that
extension so the recommender can be exercised on a catalog whose
configurations differ in GPU count as well as CPU/memory.

The runtime model follows the standard decomposition of autoregressive
inference into a compute-bound prefill phase and a memory-bandwidth-bound
decode phase:

``runtime = prefill(prompt_tokens) + decode(output_tokens) + batching/queueing overhead``

Both phases scale inversely with the number of GPUs (with an efficiency loss
for multi-GPU tensor parallelism); CPU-only configurations fall back to a much
slower CPU path, which is what makes GPU information decisive for this
application.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.hardware import HardwareCatalog, HardwareConfig
from repro.workloads.base import WorkloadModel

__all__ = ["LLMInferenceWorkload", "gpu_catalog"]


def gpu_catalog() -> HardwareCatalog:
    """A small catalog mixing CPU-only and GPU configurations.

    The CPU-only entries reuse the NDP sizing; the GPU entries model the kind
    of accelerator nodes the Nautilus cluster exposes.
    """
    return HardwareCatalog(
        [
            HardwareConfig("C4", cpus=4, memory_gb=32),
            HardwareConfig("C8", cpus=8, memory_gb=64),
            HardwareConfig("G1", cpus=8, memory_gb=64, gpus=1),
            HardwareConfig("G2", cpus=16, memory_gb=128, gpus=2),
            HardwareConfig("G4", cpus=32, memory_gb=256, gpus=4),
        ]
    )


class LLMInferenceWorkload(WorkloadModel):
    """Batch LLM-inference jobs parameterised by prompt/output length and batch size.

    Parameters
    ----------
    model_billion_params:
        Model size in billions of parameters; fixes the per-token cost.
    gpu_tokens_per_second:
        Decode throughput of a single GPU for a 7B-parameter model
        (tokens/second); scaled by model size and GPU count.
    cpu_slowdown:
        How much slower the CPU fallback path is than a single GPU.
    tensor_parallel_efficiency:
        Fraction of ideal speedup retained per additional GPU.
    noise_fraction:
        Runtime noise standard deviation as a fraction of the expectation.
    """

    name = "llm-inference"

    def __init__(
        self,
        model_billion_params: float = 7.0,
        gpu_tokens_per_second: float = 120.0,
        cpu_slowdown: float = 25.0,
        tensor_parallel_efficiency: float = 0.85,
        noise_fraction: float = 0.08,
    ):
        if model_billion_params <= 0:
            raise ValueError("model_billion_params must be positive")
        if gpu_tokens_per_second <= 0:
            raise ValueError("gpu_tokens_per_second must be positive")
        if cpu_slowdown < 1:
            raise ValueError("cpu_slowdown must be >= 1")
        if not 0.0 < tensor_parallel_efficiency <= 1.0:
            raise ValueError("tensor_parallel_efficiency must lie in (0, 1]")
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        self.model_billion_params = float(model_billion_params)
        self.gpu_tokens_per_second = float(gpu_tokens_per_second)
        self.cpu_slowdown = float(cpu_slowdown)
        self.tensor_parallel_efficiency = float(tensor_parallel_efficiency)
        self.noise_fraction = float(noise_fraction)

    # ------------------------------------------------------------------ #
    @property
    def feature_names(self) -> List[str]:
        return ["prompt_tokens", "output_tokens", "batch_size"]

    def sample_features(self, rng: np.random.Generator) -> Dict[str, float]:
        return {
            "prompt_tokens": float(rng.integers(64, 4097)),
            "output_tokens": float(rng.integers(16, 1025)),
            "batch_size": float(rng.integers(1, 65)),
        }

    # ------------------------------------------------------------------ #
    def _effective_tokens_per_second(self, hardware: HardwareConfig) -> Tuple[float, float]:
        """(decode tokens/s, prefill tokens/s) for ``hardware``."""
        size_factor = 7.0 / self.model_billion_params
        if hardware.gpus > 0:
            parallel = 1.0 + self.tensor_parallel_efficiency * (hardware.gpus - 1)
            decode = self.gpu_tokens_per_second * size_factor * parallel
        else:
            # CPU fallback: scales weakly with core count.
            cpu_scale = 1.0 + 0.05 * (hardware.cpus - 1)
            decode = self.gpu_tokens_per_second * size_factor * cpu_scale / self.cpu_slowdown
        # Prefill processes the prompt in parallel over its length, so it is
        # roughly an order of magnitude faster per token than decode.
        return decode, decode * 12.0

    def expected_runtime(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        prompt = float(features["prompt_tokens"])
        output = float(features["output_tokens"])
        batch = max(float(features.get("batch_size", 1.0)), 1.0)
        if prompt < 0 or output < 0:
            raise ValueError("token counts must be non-negative")
        decode_tps, prefill_tps = self._effective_tokens_per_second(hardware)
        # Requests in a batch share prefill bandwidth; decode is sequential in
        # output length but batched across requests with mild contention.
        prefill_seconds = batch * prompt / prefill_tps
        decode_seconds = output / decode_tps * (1.0 + 0.015 * (batch - 1.0))
        startup_seconds = 5.0 + 2.0 * hardware.gpus  # model load / shard init
        return startup_seconds + prefill_seconds + decode_seconds

    def noise_scale(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        return self.noise_fraction * self.expected_runtime(features, hardware)
