"""The Cycles agroecosystem workflow model (Experiment 1).

Cycles is an HTC scientific workflow whose makespan, per the paper, is well
explained by a single feature -- the number of tasks in the workflow
(``num_tasks``); the evaluated dataset contains 80 runs of two sizes (100 and
500 tasks), executed on four *synthetic* hardware settings that present a
clear performance trade-off (Figure 3 shows four well-separated lines with
different slopes).

The model here is deliberately simple and linear, because that is exactly the
regime the paper positions Experiment 1 in ("when the runtime can be
predicted as a linear combination of input variables and the hardware
configurations present a meaningful trade-off"):

``makespan(H, num_tasks) = per_task_seconds(H) * num_tasks + startup_seconds(H)``

where ``per_task_seconds`` shrinks with the hardware's aggregate compute
capacity.  The scale is calibrated so that a 500-task workflow takes roughly
3000 s on the smallest configuration, matching Figure 3's y-axis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware import HardwareConfig
from repro.workloads.base import WorkloadModel

__all__ = ["CyclesWorkload"]


class CyclesWorkload(WorkloadModel):
    """Makespan model for the Cycles agroecosystem workflow.

    Parameters
    ----------
    task_sizes:
        Workflow sizes (number of tasks) the feature sampler draws from.  The
        paper's dataset uses 100 and 500; examples also exercise intermediate
        sizes so the linear fits are identifiable from more than two points.
    work_seconds_per_task:
        Serial work contained in one task, in seconds on a 1 GHz core.  The
        default (30 s) puts a 500-task run at ~3000 s on the 2-CPU synthetic
        configuration, matching the magnitude of Figure 3.
    startup_seconds:
        Hardware-independent workflow startup overhead (workflow-engine
        submission, container pulls).
    parallel_fraction:
        Fraction of the per-task work that parallelises across cores
        (Amdahl-style).  Cycles scales well, so the default is high.
    noise_fraction:
        Standard deviation of observation noise as a fraction of the
        expected makespan.
    """

    name = "cycles"

    def __init__(
        self,
        task_sizes: Sequence[int] = (100, 500),
        work_seconds_per_task: float = 30.0,
        startup_seconds: float = 60.0,
        parallel_fraction: float = 0.95,
        noise_fraction: float = 0.03,
    ):
        if not task_sizes:
            raise ValueError("task_sizes must contain at least one workflow size")
        if any(int(s) <= 0 for s in task_sizes):
            raise ValueError(f"task sizes must be positive, got {list(task_sizes)}")
        if work_seconds_per_task <= 0:
            raise ValueError("work_seconds_per_task must be positive")
        if startup_seconds < 0:
            raise ValueError("startup_seconds must be non-negative")
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must lie in [0, 1]")
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        self.task_sizes = [int(s) for s in task_sizes]
        self.work_seconds_per_task = float(work_seconds_per_task)
        self.startup_seconds = float(startup_seconds)
        self.parallel_fraction = float(parallel_fraction)
        self.noise_fraction = float(noise_fraction)

    # ------------------------------------------------------------------ #
    @property
    def feature_names(self) -> List[str]:
        return ["num_tasks"]

    def sample_features(self, rng: np.random.Generator) -> Dict[str, float]:
        """Draw one workflow size uniformly from :attr:`task_sizes`."""
        size = self.task_sizes[int(rng.integers(len(self.task_sizes)))]
        return {"num_tasks": float(size)}

    def per_task_seconds(self, hardware: HardwareConfig) -> float:
        """Effective seconds of makespan contributed by each task on ``hardware``.

        Amdahl's law applied per task: the parallel fraction of the task's
        work is divided across the configuration's aggregate capacity
        (``cpus * clock``), the serial remainder only benefits from clock.
        """
        serial = (1.0 - self.parallel_fraction) * self.work_seconds_per_task / hardware.cpu_clock_ghz
        parallel = self.parallel_fraction * self.work_seconds_per_task / hardware.compute_capacity
        return serial + parallel

    def expected_runtime(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        num_tasks = float(features["num_tasks"])
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        return self.startup_seconds + self.per_task_seconds(hardware) * num_tasks

    def noise_scale(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        return self.noise_fraction * self.expected_runtime(features, hardware)

    # ------------------------------------------------------------------ #
    def true_coefficients(self, hardware: HardwareConfig) -> Dict[str, float]:
        """The ground-truth linear model ``makespan = w·num_tasks + b`` for ``hardware``.

        Used by tests and Figure 3's benchmark to compare BanditWare's learned
        per-arm coefficients against the generator's truth.
        """
        return {"w_num_tasks": self.per_task_seconds(hardware), "b": self.startup_seconds}
