"""The tiled matrix-squaring workload (Experiment 3).

The paper uses "a fully parallelized, tiled matrix squaring algorithm that
takes advantage of the full number of CPU cores given to it" to stress
BanditWare on a hardware-sensitive application.  Two things are provided
here:

* :func:`tiled_matrix_square` -- an actually executable tiled matrix-squaring
  kernel (NumPy blocks over a thread pool), used by the examples and by tests
  that check the kernel agrees with ``A @ A``.
* :class:`MatrixMultiplicationWorkload` -- the synthetic runtime model used
  for dataset generation, calibrated to the paper's description of the 2520
  run dataset: matrix sizes from 100 to 12 500, most runs (≈ 1800 of 2520)
  with ``size < 5000`` finishing within a minute, and the largest runs
  approaching 30 minutes; ``size`` is by far the most predictive feature while
  sparsity and the random-value range barely matter; five hardware options
  with genuinely different parallel efficiency (random-guess accuracy 0.2).
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware import HardwareConfig
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.base import WorkloadModel

__all__ = ["tiled_matrix_square", "MatrixMultiplicationWorkload"]


def tiled_matrix_square(
    matrix: np.ndarray,
    tile_size: int = 256,
    n_workers: int = 1,
) -> np.ndarray:
    """Compute ``matrix @ matrix`` using a blocked (tiled) decomposition.

    The output is assembled tile-by-tile; each output tile ``C[i, j]`` is the
    sum over ``k`` of ``A[i, k] @ A[k, j]``.  Tiles of the output are computed
    independently and can therefore be distributed over a thread pool, which
    is how the real application "takes advantage of the full number of CPU
    cores given to it".

    Parameters
    ----------
    matrix:
        A square 2-D array.
    tile_size:
        Edge length of the square tiles.
    n_workers:
        Number of worker threads computing output tiles concurrently.

    Returns
    -------
    numpy.ndarray
        ``matrix @ matrix``, exactly (up to floating-point associativity).
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square 2-D, got shape {a.shape}")
    if tile_size <= 0:
        raise ValueError(f"tile_size must be positive, got {tile_size}")
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")

    n = a.shape[0]
    boundaries = list(range(0, n, tile_size)) + [n]
    spans = [(boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)]
    out = np.zeros_like(a)

    def compute_tile(span_i: Tuple[int, int], span_j: Tuple[int, int]) -> None:
        i0, i1 = span_i
        j0, j1 = span_j
        acc = np.zeros((i1 - i0, j1 - j0), dtype=float)
        for k0, k1 in spans:
            acc += a[i0:i1, k0:k1] @ a[k0:k1, j0:j1]
        out[i0:i1, j0:j1] = acc

    tasks = [(si, sj) for si in spans for sj in spans]
    if n_workers == 1:
        for si, sj in tasks:
            compute_tile(si, sj)
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(compute_tile, si, sj) for si, sj in tasks]
            for fut in futures:
                fut.result()
    return out


class MatrixMultiplicationWorkload(WorkloadModel):
    """Synthetic runtime model for the tiled matrix-squaring application.

    Runtime follows a cubic cost in matrix size divided by the hardware's
    effective parallel throughput (Amdahl-style), plus a small size-dependent
    setup term.  Sparsity and the random-value range are included as features
    (they are part of the paper's dataset) but have almost no effect on
    runtime, matching the statement that "the other features do not
    significantly impact the runtime".

    Parameters
    ----------
    size_range:
        Minimum and maximum matrix size.
    small_size_fraction:
        Fraction of sampled runs with ``size < small_size_threshold``; the
        paper's dataset has 1800 of 2520 runs below 5000.
    small_size_threshold:
        Boundary between the "small" and "large" sampling regimes and the
        truncation threshold used by Experiment 3's subset dataset.
    flops_per_second_per_core:
        Effective per-core throughput used to convert the cubic operation
        count to seconds.  The default puts a 12 500² squaring at roughly
        20-30 minutes on the smaller configurations, as in the paper.
    parallel_fraction:
        Fraction of the kernel that parallelises across cores.
    noise_fraction:
        Runtime noise standard deviation as a fraction of the expectation.
    startup_seconds_per_cpu:
        Fixed per-core startup overhead (container creation, thread-pool and
        tile bookkeeping).  Larger allocations pay more overhead, so for small
        matrices the *smallest* configuration is genuinely fastest and the
        best hardware crosses over to the big configurations as size grows --
        the regime in which the paper observes that "most hardware
        configurations perform similarly" for sub-minute runs and
        recommendations should favour resource efficiency.
    """

    name = "matmul"

    def __init__(
        self,
        size_range: Tuple[int, int] = (100, 12500),
        small_size_fraction: float = 1800.0 / 2520.0,
        small_size_threshold: int = 5000,
        flops_per_second_per_core: float = 2.2e9,
        parallel_fraction: float = 0.92,
        noise_fraction: float = 0.06,
        startup_seconds_per_cpu: float = 1.5,
    ):
        lo, hi = int(size_range[0]), int(size_range[1])
        if not (0 < lo < hi):
            raise ValueError(f"size_range must satisfy 0 < lo < hi, got {size_range}")
        if not 0.0 <= small_size_fraction <= 1.0:
            raise ValueError("small_size_fraction must lie in [0, 1]")
        if not lo <= small_size_threshold <= hi:
            raise ValueError("small_size_threshold must lie inside size_range")
        if flops_per_second_per_core <= 0:
            raise ValueError("flops_per_second_per_core must be positive")
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must lie in [0, 1]")
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        if startup_seconds_per_cpu < 0:
            raise ValueError("startup_seconds_per_cpu must be non-negative")
        self.size_range = (lo, hi)
        self.small_size_fraction = float(small_size_fraction)
        self.small_size_threshold = int(small_size_threshold)
        self.flops_per_second_per_core = float(flops_per_second_per_core)
        self.parallel_fraction = float(parallel_fraction)
        self.noise_fraction = float(noise_fraction)
        self.startup_seconds_per_cpu = float(startup_seconds_per_cpu)

    # ------------------------------------------------------------------ #
    @property
    def feature_names(self) -> List[str]:
        return ["size", "sparsity", "min_value", "max_value"]

    def sample_features(self, rng: np.random.Generator) -> Dict[str, float]:
        """Draw matrix parameters matching the paper dataset's composition."""
        lo, hi = self.size_range
        if rng.random() < self.small_size_fraction:
            size = int(rng.integers(lo, self.small_size_threshold))
        else:
            size = int(rng.integers(self.small_size_threshold, hi + 1))
        min_value = float(rng.integers(-100, 1))
        max_value = float(rng.integers(1, 101))
        return {
            "size": float(size),
            "sparsity": float(rng.uniform(0.0, 0.9)),
            "min_value": min_value,
            "max_value": max_value,
        }

    def effective_throughput(self, hardware: HardwareConfig) -> float:
        """Effective FLOP/s of ``hardware`` for this kernel (Amdahl-adjusted)."""
        single = self.flops_per_second_per_core * hardware.cpu_clock_ghz / 2.5
        serial_time_share = 1.0 - self.parallel_fraction
        speedup = 1.0 / (serial_time_share + self.parallel_fraction / hardware.cpus)
        return single * speedup

    def expected_runtime(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        size = float(features["size"])
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        sparsity = float(features.get("sparsity", 0.0))
        # 2·n³ flops for a dense square; sparsity gives a tiny (few percent)
        # discount because zero blocks still pass through the kernel.
        flops = 2.0 * size**3 * (1.0 - 0.05 * sparsity)
        compute_seconds = flops / self.effective_throughput(hardware)
        # Memory/setup overhead: allocation and tile bookkeeping (~n² bytes)
        # plus a per-core startup cost, so small matrices run fastest on the
        # smallest allocation and the best hardware crosses over with size.
        setup_seconds = (
            0.5
            + self.startup_seconds_per_cpu * hardware.cpus
            + 1.5e-8 * size**2
        )
        return compute_seconds + setup_seconds

    def noise_scale(self, features: Dict[str, float], hardware: HardwareConfig) -> float:
        expected = self.expected_runtime(features, hardware)
        return float(np.hypot(0.5, self.noise_fraction * expected))

    # ------------------------------------------------------------------ #
    def generate_matrix(self, features: Dict[str, float], rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Materialise the random integer matrix described by ``features``.

        Matrix generation is *not* part of the measured runtime in the paper;
        this helper exists so the examples can execute the real kernel on the
        same inputs the synthetic model describes (at small sizes).
        """
        rng = as_generator(rng)
        size = int(features["size"])
        lo = int(features.get("min_value", 0))
        hi = int(features.get("max_value", 100))
        if hi <= lo:
            hi = lo + 1
        matrix = rng.integers(lo, hi + 1, size=(size, size)).astype(float)
        sparsity = float(features.get("sparsity", 0.0))
        if sparsity > 0:
            mask = rng.random((size, size)) < sparsity
            matrix[mask] = 0.0
        return matrix
