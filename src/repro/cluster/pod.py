"""Pods: one workload run bound to a hardware (resource) request."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hardware import HardwareConfig

__all__ = ["PodPhase", "Pod"]


class PodPhase(str, enum.Enum):
    """Lifecycle phases, a subset of Kubernetes pod phases."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass
class Pod:
    """A scheduled unit of work.

    Attributes
    ----------
    name:
        Unique pod name.
    request:
        Hardware configuration requested (the bandit's chosen arm).
    features:
        The workflow's context features (kept for bookkeeping / post-hoc
        analysis of what ran where).
    application:
        Application name the pod belongs to.
    priority:
        Priority class (higher = more important).  Only the
        :class:`~repro.cluster.scheduler.PriorityScheduler` reads it; the
        FIFO family treats every pod equally.
    submit_time, start_time, finish_time:
        Simulation timestamps (seconds); ``None`` until the corresponding
        transition happens.
    node:
        Name of the node the pod was placed on.
    phase:
        Current lifecycle phase.
    preemptions:
        How many times the pod was preempted (evicted mid-run and requeued).
    wasted_runtime_seconds:
        Run time lost to preemptions: the work is checkpoint-free, so every
        eviction discards the partial execution and the pod restarts from
        scratch.
    """

    name: str
    request: HardwareConfig
    features: Dict[str, float] = field(default_factory=dict)
    application: str = "unknown"
    priority: int = 0
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    node: Optional[str] = None
    phase: PodPhase = PodPhase.PENDING
    preemptions: int = 0
    wasted_runtime_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: accumulated time spent waiting for capacity (all pending stretches)
    _waited_seconds: float = field(default=0.0, repr=False)
    #: when the current pending stretch began (None while running/terminal)
    _queued_since: Optional[float] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    def mark_submitted(self, time: float) -> None:
        if self.submit_time is not None:
            raise RuntimeError(f"pod {self.name!r} was already submitted")
        self.submit_time = float(time)
        self._queued_since = float(time)
        self.phase = PodPhase.PENDING

    def mark_running(self, time: float, node: str) -> None:
        if self.phase is not PodPhase.PENDING:
            raise RuntimeError(f"pod {self.name!r} cannot start from phase {self.phase}")
        if self._queued_since is not None:
            self._waited_seconds += float(time) - self._queued_since
            self._queued_since = None
        self.start_time = float(time)
        self.node = node
        self.phase = PodPhase.RUNNING

    def mark_preempted(self, time: float) -> None:
        """Evict a running pod back to the pending queue (checkpoint-free).

        The partial execution is discarded: the elapsed run time is added to
        :attr:`wasted_runtime_seconds` and the pod waits for capacity again
        from scratch.
        """
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot be preempted from phase {self.phase}")
        self.wasted_runtime_seconds += float(time) - float(self.start_time or 0.0)
        self.preemptions += 1
        self.start_time = None
        self.node = None
        self._queued_since = float(time)
        self.phase = PodPhase.PENDING

    def mark_finished(self, time: float, succeeded: bool = True) -> None:
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot finish from phase {self.phase}")
        self.finish_time = float(time)
        self.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED

    # ------------------------------------------------------------------ #
    @property
    def queue_seconds(self) -> Optional[float]:
        """Total time spent pending before (each) start, if the pod ever started.

        For a never-preempted pod this is exactly ``start_time - submit_time``;
        preempted pods accumulate every pending stretch.
        """
        if self.submit_time is None or self.start_time is None:
            return None
        return self._waited_seconds

    @property
    def runtime_seconds(self) -> Optional[float]:
        """Execution time (start to finish), if the pod has finished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def is_terminal(self) -> bool:
        return self.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten into a serialisable dictionary."""
        return {
            "name": self.name,
            "application": self.application,
            "hardware": self.request.name,
            "node": self.node,
            "phase": self.phase.value,
            "priority": self.priority,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "queue_seconds": self.queue_seconds,
            "runtime_seconds": self.runtime_seconds,
            "preemptions": self.preemptions,
            "wasted_runtime_seconds": self.wasted_runtime_seconds,
            **{f"feature_{k}": v for k, v in self.features.items()},
        }
