"""Pods: one workload run bound to a hardware (resource) request."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hardware import HardwareConfig

__all__ = ["PodPhase", "Pod"]


class PodPhase(str, enum.Enum):
    """Lifecycle phases, a subset of Kubernetes pod phases."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass
class Pod:
    """A scheduled unit of work.

    Attributes
    ----------
    name:
        Unique pod name.
    request:
        Hardware configuration requested (the bandit's chosen arm).
    features:
        The workflow's context features (kept for bookkeeping / post-hoc
        analysis of what ran where).
    application:
        Application name the pod belongs to.
    priority:
        Priority class (higher = more important).  Only the
        :class:`~repro.cluster.scheduler.PriorityScheduler` reads it; the
        FIFO family treats every pod equally.
    submit_time, start_time, finish_time:
        Simulation timestamps (seconds); ``None`` until the corresponding
        transition happens.
    node:
        Name of the node the pod was placed on.
    phase:
        Current lifecycle phase.
    preemptions:
        How many times the pod was preempted (evicted mid-run and requeued).
    wasted_runtime_seconds:
        Run time lost to preemptions: the work is checkpoint-free, so every
        eviction discards the partial execution and the pod restarts from
        scratch.
    work_seconds:
        Ground-truth contention-free runtime of the workload, drawn **once
        at submission** (stable across preemption restarts, so observed
        runtimes cannot depend on scheduling order).
    progress_seconds:
        Work completed so far in the current attempt; reaches
        :attr:`work_seconds` at completion.  Progress advances at
        :attr:`speed` work-seconds per wall second and is re-integrated by
        the simulator whenever the pod's node topology changes.
    speed:
        Current progress rate from the cluster's interference model
        (``None`` until the current attempt's rate is first computed).
    observed_runtime_seconds:
        Wall-clock execution time of the successful attempt -- the runtime
        the platform *observes*.  Equals :attr:`work_seconds` without
        interference; inflated when co-residents slowed the pod down.
    """

    name: str
    request: HardwareConfig
    features: Dict[str, float] = field(default_factory=dict)
    application: str = "unknown"
    priority: int = 0
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    node: Optional[str] = None
    phase: PodPhase = PodPhase.PENDING
    preemptions: int = 0
    wasted_runtime_seconds: float = 0.0
    work_seconds: Optional[float] = None
    progress_seconds: float = 0.0
    speed: Optional[float] = None
    observed_runtime_seconds: Optional[float] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: wall seconds of the current attempt accumulated at re-integration
    #: points (progress-rate changes); the remainder to the tentative finish
    #: is carried separately so an uninterrupted run reports its drawn
    #: runtime exactly (no ``finish - start`` bit loss on a large clock)
    _running_wall_seconds: float = field(default=0.0, repr=False)
    #: simulation time progress was last integrated to (None while pending)
    _progress_updated_at: Optional[float] = field(default=None, repr=False)
    #: ``(time, speed)`` changepoints of the current attempt; the work
    #: conservation property test integrates this piecewise-constant rate
    progress_log: list = field(default_factory=list, repr=False)
    #: accumulated time spent waiting for capacity (all pending stretches)
    _waited_seconds: float = field(default=0.0, repr=False)
    #: when the current pending stretch began (None while running/terminal)
    _queued_since: Optional[float] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    def mark_submitted(self, time: float) -> None:
        if self.submit_time is not None:
            raise RuntimeError(f"pod {self.name!r} was already submitted")
        self.submit_time = float(time)
        self._queued_since = float(time)
        self.phase = PodPhase.PENDING

    def mark_running(self, time: float, node: str) -> None:
        if self.phase is not PodPhase.PENDING:
            raise RuntimeError(f"pod {self.name!r} cannot start from phase {self.phase}")
        if self._queued_since is not None:
            self._waited_seconds += float(time) - self._queued_since
            self._queued_since = None
        self.start_time = float(time)
        self.node = node
        self.phase = PodPhase.RUNNING
        self.progress_seconds = 0.0
        self.speed = None
        self._running_wall_seconds = 0.0
        self._progress_updated_at = float(time)
        self.progress_log = []

    def mark_preempted(self, time: float) -> None:
        """Evict a running pod back to the pending queue (checkpoint-free).

        The partial execution is discarded: the elapsed run time is added to
        :attr:`wasted_runtime_seconds` and the pod waits for capacity again
        from scratch.
        """
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot be preempted from phase {self.phase}")
        self.wasted_runtime_seconds += float(time) - float(self.start_time or 0.0)
        self.preemptions += 1
        self.start_time = None
        self.node = None
        self._queued_since = float(time)
        self.phase = PodPhase.PENDING
        # Checkpoint-free restart: the attempt's partial progress is lost.
        self.progress_seconds = 0.0
        self.speed = None
        self._running_wall_seconds = 0.0
        self._progress_updated_at = None
        self.progress_log = []

    def mark_finished(self, time: float, succeeded: bool = True) -> None:
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot finish from phase {self.phase}")
        self.finish_time = float(time)
        self.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED

    # ------------------------------------------------------------------ #
    # Progress-based execution (driven by the cluster simulator)
    # ------------------------------------------------------------------ #
    def set_speed(self, time: float, new_speed: float) -> None:
        """Integrate progress up to ``time`` at the current rate, then switch.

        The progress rate is piecewise constant between topology changes, so
        integrating lazily -- only when the rate actually changes -- is
        exact.  The first call of an attempt (``speed is None``) merely
        records the initial rate.
        """
        time = float(time)
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} is not running; cannot set a progress rate")
        if self.speed is not None:
            since = self._progress_updated_at if self._progress_updated_at is not None else time
            elapsed = time - since
            self.progress_seconds += elapsed * self.speed
            self._running_wall_seconds += elapsed
        self._progress_updated_at = time
        self.speed = float(new_speed)
        self.progress_log.append((time, float(new_speed)))

    def remaining_wall_seconds(self) -> float:
        """Wall-clock seconds to completion at the current rate."""
        if self.work_seconds is None or self.speed is None:
            raise RuntimeError(f"pod {self.name!r} has no work/rate; was it started?")
        return max(self.work_seconds - self.progress_seconds, 0.0) / self.speed

    def complete_progress(self, remaining_wall: float) -> float:
        """Close out the attempt's progress and return the observed runtime.

        ``remaining_wall`` is the wall time from the last integration point
        to the finish instant, *as scheduled* -- carrying it explicitly
        (rather than re-deriving ``finish - last_update``) keeps the
        uninterrupted case bit-exact: zero accumulated wall plus a remainder
        of ``work_seconds`` reports the drawn runtime verbatim.
        """
        self.progress_seconds = float(self.work_seconds or 0.0)
        self.observed_runtime_seconds = self._running_wall_seconds + float(remaining_wall)
        return self.observed_runtime_seconds

    @property
    def slowdown(self) -> Optional[float]:
        """Observed over contention-free runtime (>= 1 under interference)."""
        if self.observed_runtime_seconds is None or not self.work_seconds:
            return None
        return self.observed_runtime_seconds / self.work_seconds

    # ------------------------------------------------------------------ #
    @property
    def queue_seconds(self) -> Optional[float]:
        """Total time spent pending before (each) start, if the pod ever started.

        For a never-preempted pod this is exactly ``start_time - submit_time``;
        preempted pods accumulate every pending stretch.
        """
        if self.submit_time is None or self.start_time is None:
            return None
        return self._waited_seconds

    @property
    def runtime_seconds(self) -> Optional[float]:
        """Execution time (start to finish), if the pod has finished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def is_terminal(self) -> bool:
        return self.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten into a serialisable dictionary."""
        return {
            "name": self.name,
            "application": self.application,
            "hardware": self.request.name,
            "node": self.node,
            "phase": self.phase.value,
            "priority": self.priority,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "queue_seconds": self.queue_seconds,
            "runtime_seconds": self.runtime_seconds,
            "preemptions": self.preemptions,
            "wasted_runtime_seconds": self.wasted_runtime_seconds,
            "work_seconds": self.work_seconds,
            "observed_runtime_seconds": self.observed_runtime_seconds,
            "slowdown": self.slowdown,
            **{f"feature_{k}": v for k, v in self.features.items()},
        }
