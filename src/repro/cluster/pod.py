"""Pods: one workload run bound to a hardware (resource) request.

:class:`Pod` is a *facade* since the array-kernel refactor: a pod
constructed directly (tests, examples, probes) stores its state in plain
attributes and behaves exactly as the pre-refactor dataclass did; a pod
adopted by a :class:`~repro.cluster.state.ClusterState` (which the
simulator does at submission) keeps its hot numeric fields -- work,
progress, speed, wall-clock accumulators -- in the state's flat arrays so
the simulator can batch-update thousands of pods without attribute-walking
Python objects.  The public surface (constructor signature, attributes,
methods) is unchanged either way.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.hardware import HardwareConfig

__all__ = ["PodPhase", "Pod"]


class PodPhase(str, enum.Enum):
    """Lifecycle phases, a subset of Kubernetes pod phases."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


_PHASE_CODES = {
    PodPhase.PENDING: 0,
    PodPhase.RUNNING: 1,
    PodPhase.SUCCEEDED: 2,
    PodPhase.FAILED: 3,
}


def _hot(local_name: str, array_name: str):
    """An array-backed-when-bound float property (``None`` <-> ``NaN``)."""

    def getter(self):
        state = self._state
        if state is None:
            return getattr(self, local_name)
        value = getattr(state, array_name)[self._index]
        # NaN encodes None; NaN != NaN makes the check branch-free.
        return None if value != value else float(value)

    def setter(self, value):
        state = self._state
        if state is None:
            object.__setattr__(self, local_name, value)
        else:
            getattr(state, array_name)[self._index] = (
                float("nan") if value is None else value
            )

    return property(getter, setter)


class Pod:
    """A scheduled unit of work.

    Attributes
    ----------
    name:
        Unique pod name.
    request:
        Hardware configuration requested (the bandit's chosen arm).
    features:
        The workflow's context features (kept for bookkeeping / post-hoc
        analysis of what ran where).
    application:
        Application name the pod belongs to.
    priority:
        Priority class (higher = more important).  Only the
        :class:`~repro.cluster.scheduler.PriorityScheduler` reads it; the
        FIFO family treats every pod equally.
    submit_time, start_time, finish_time:
        Simulation timestamps (seconds); ``None`` until the corresponding
        transition happens.
    node:
        Name of the node the pod was placed on.
    phase:
        Current lifecycle phase.
    preemptions:
        How many times the pod was preempted (evicted mid-run and requeued).
    wasted_runtime_seconds:
        Run time lost to preemptions: the work is checkpoint-free, so every
        eviction discards the partial execution and the pod restarts from
        scratch.
    work_seconds:
        Ground-truth contention-free runtime of the workload, drawn **once
        at submission** (stable across preemption restarts, so observed
        runtimes cannot depend on scheduling order).
    progress_seconds:
        Work completed so far in the current attempt; reaches
        :attr:`work_seconds` at completion.  Progress advances at
        :attr:`speed` work-seconds per wall second and is re-integrated by
        the simulator whenever the pod's node topology changes.
    speed:
        Current progress rate from the cluster's interference model
        (``None`` until the current attempt's rate is first computed).
    observed_runtime_seconds:
        Wall-clock execution time of the successful attempt -- the runtime
        the platform *observes*.  Equals :attr:`work_seconds` without
        interference; inflated when co-residents slowed the pod down.
    """

    def __init__(
        self,
        name: str,
        request: HardwareConfig,
        features: Optional[Dict[str, float]] = None,
        application: str = "unknown",
        priority: int = 0,
        submit_time: Optional[float] = None,
        start_time: Optional[float] = None,
        finish_time: Optional[float] = None,
        node: Optional[str] = None,
        phase: PodPhase = PodPhase.PENDING,
        preemptions: int = 0,
        wasted_runtime_seconds: float = 0.0,
        work_seconds: Optional[float] = None,
        progress_seconds: float = 0.0,
        speed: Optional[float] = None,
        observed_runtime_seconds: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        # Facade plumbing must exist before any hot-property assignment.
        self._state = None
        self._index = -1
        self.name = name
        self.request = request
        self.features = {} if features is None else features
        self.application = application
        self.priority = priority
        self.submit_time = submit_time
        self.start_time = start_time
        self.finish_time = finish_time
        self._node = node
        self._phase = phase
        self.preemptions = preemptions
        self.wasted_runtime_seconds = wasted_runtime_seconds
        self.work_seconds = work_seconds
        self.progress_seconds = progress_seconds
        self.speed = speed
        self.observed_runtime_seconds = observed_runtime_seconds
        self.metadata = {} if metadata is None else metadata
        #: wall seconds of the current attempt accumulated at re-integration
        #: points (progress-rate changes); the remainder to the tentative
        #: finish is carried separately so an uninterrupted run reports its
        #: drawn runtime exactly (no ``finish - start`` bit loss on a large
        #: clock)
        self._running_wall_seconds = 0.0
        #: simulation time progress was last integrated to (None while pending)
        self._progress_updated_at = None
        #: ``(time, speed)`` changepoints of the current attempt; the work
        #: conservation property test integrates this piecewise-constant rate
        self.progress_log: list = []
        #: accumulated time spent waiting for capacity (all pending stretches)
        self._waited_seconds = 0.0
        #: when the current pending stretch began (None while running/terminal)
        self._queued_since: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Array-backed hot fields (plain attributes until the simulator adopts
    # the pod into a ClusterState)
    # ------------------------------------------------------------------ #
    work_seconds = _hot("_local_work", "work")
    progress_seconds = _hot("_local_progress", "progress")
    speed = _hot("_local_speed", "speed")
    _running_wall_seconds = _hot("_local_running_wall", "running_wall")
    _progress_updated_at = _hot("_local_updated_at", "updated_at")

    @property
    def phase(self) -> PodPhase:
        return self._phase

    @phase.setter
    def phase(self, value: PodPhase) -> None:
        self._phase = value
        if self._state is not None:
            self._state.status[self._index] = _PHASE_CODES[value]

    @property
    def node(self) -> Optional[str]:
        return self._node

    @node.setter
    def node(self, value: Optional[str]) -> None:
        self._node = value
        if self._state is not None:
            slot = -1 if value is None else self._state.node_slot_by_name.get(value, -1)
            self._state.node_slot[self._index] = slot

    def _bind(self, state, index: int) -> None:
        """Adopt this pod into ``state`` (called by ``ClusterState``).

        The caller has already copied the current attribute values into the
        arrays at ``index``; from here on the hot properties read/write the
        arrays.
        """
        self._state = state
        self._index = index

    # ------------------------------------------------------------------ #
    def mark_submitted(self, time: float) -> None:
        if self.submit_time is not None:
            raise RuntimeError(f"pod {self.name!r} was already submitted")
        self.submit_time = float(time)
        self._queued_since = float(time)
        self.phase = PodPhase.PENDING

    def mark_running(self, time: float, node: str) -> None:
        if self.phase is not PodPhase.PENDING:
            raise RuntimeError(f"pod {self.name!r} cannot start from phase {self.phase}")
        if self._queued_since is not None:
            self._waited_seconds += float(time) - self._queued_since
            self._queued_since = None
        self.start_time = float(time)
        self.node = node
        self.phase = PodPhase.RUNNING
        self.progress_seconds = 0.0
        self.speed = None
        self._running_wall_seconds = 0.0
        self._progress_updated_at = float(time)
        self.progress_log = []

    def mark_preempted(self, time: float) -> None:
        """Evict a running pod back to the pending queue (checkpoint-free).

        The partial execution is discarded: the elapsed run time is added to
        :attr:`wasted_runtime_seconds` and the pod waits for capacity again
        from scratch.
        """
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot be preempted from phase {self.phase}")
        self.wasted_runtime_seconds += float(time) - float(self.start_time or 0.0)
        self.preemptions += 1
        self.start_time = None
        self.node = None
        self._queued_since = float(time)
        self.phase = PodPhase.PENDING
        # Checkpoint-free restart: the attempt's partial progress is lost.
        self.progress_seconds = 0.0
        self.speed = None
        self._running_wall_seconds = 0.0
        self._progress_updated_at = None
        self.progress_log = []

    def mark_finished(self, time: float, succeeded: bool = True) -> None:
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot finish from phase {self.phase}")
        self.finish_time = float(time)
        self.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED

    # ------------------------------------------------------------------ #
    # Progress-based execution (driven by the cluster simulator)
    # ------------------------------------------------------------------ #
    def set_speed(self, time: float, new_speed: float) -> None:
        """Integrate progress up to ``time`` at the current rate, then switch.

        The progress rate is piecewise constant between topology changes, so
        integrating lazily -- only when the rate actually changes -- is
        exact.  The first call of an attempt (``speed is None``) merely
        records the initial rate.
        """
        time = float(time)
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} is not running; cannot set a progress rate")
        if self.speed is not None:
            since = self._progress_updated_at if self._progress_updated_at is not None else time
            elapsed = time - since
            self.progress_seconds += elapsed * self.speed
            self._running_wall_seconds += elapsed
        self._progress_updated_at = time
        self.speed = float(new_speed)
        self.progress_log.append((time, float(new_speed)))

    def remaining_wall_seconds(self) -> float:
        """Wall-clock seconds to completion at the current rate."""
        if self.work_seconds is None or self.speed is None:
            raise RuntimeError(f"pod {self.name!r} has no work/rate; was it started?")
        return max(self.work_seconds - self.progress_seconds, 0.0) / self.speed

    def complete_progress(self, remaining_wall: float) -> float:
        """Close out the attempt's progress and return the observed runtime.

        ``remaining_wall`` is the wall time from the last integration point
        to the finish instant, *as scheduled* -- carrying it explicitly
        (rather than re-deriving ``finish - last_update``) keeps the
        uninterrupted case bit-exact: zero accumulated wall plus a remainder
        of ``work_seconds`` reports the drawn runtime verbatim.
        """
        self.progress_seconds = float(self.work_seconds or 0.0)
        self.observed_runtime_seconds = self._running_wall_seconds + float(remaining_wall)
        return self.observed_runtime_seconds

    @property
    def slowdown(self) -> Optional[float]:
        """Observed over contention-free runtime (>= 1 under interference)."""
        if self.observed_runtime_seconds is None or not self.work_seconds:
            return None
        return self.observed_runtime_seconds / self.work_seconds

    # ------------------------------------------------------------------ #
    @property
    def queue_seconds(self) -> Optional[float]:
        """Total time spent pending before (each) start, if the pod ever started.

        For a never-preempted pod this is exactly ``start_time - submit_time``;
        preempted pods accumulate every pending stretch.
        """
        if self.submit_time is None or self.start_time is None:
            return None
        return self._waited_seconds

    @property
    def runtime_seconds(self) -> Optional[float]:
        """Execution time (start to finish), if the pod has finished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def is_terminal(self) -> bool:
        return self.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten into a serialisable dictionary."""
        return {
            "name": self.name,
            "application": self.application,
            "hardware": self.request.name,
            "node": self.node,
            "phase": self.phase.value,
            "priority": self.priority,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "queue_seconds": self.queue_seconds,
            "runtime_seconds": self.runtime_seconds,
            "preemptions": self.preemptions,
            "wasted_runtime_seconds": self.wasted_runtime_seconds,
            "work_seconds": self.work_seconds,
            "observed_runtime_seconds": self.observed_runtime_seconds,
            "slowdown": self.slowdown,
            **{f"feature_{k}": v for k, v in self.features.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Pod(name={self.name!r}, request={self.request!r}, "
            f"phase={self.phase!r}, node={self.node!r}, "
            f"work_seconds={self.work_seconds!r}, speed={self.speed!r})"
        )
