"""Pods: one workload run bound to a hardware (resource) request."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hardware import HardwareConfig

__all__ = ["PodPhase", "Pod"]


class PodPhase(str, enum.Enum):
    """Lifecycle phases, a subset of Kubernetes pod phases."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass
class Pod:
    """A scheduled unit of work.

    Attributes
    ----------
    name:
        Unique pod name.
    request:
        Hardware configuration requested (the bandit's chosen arm).
    features:
        The workflow's context features (kept for bookkeeping / post-hoc
        analysis of what ran where).
    application:
        Application name the pod belongs to.
    submit_time, start_time, finish_time:
        Simulation timestamps (seconds); ``None`` until the corresponding
        transition happens.
    node:
        Name of the node the pod was placed on.
    phase:
        Current lifecycle phase.
    """

    name: str
    request: HardwareConfig
    features: Dict[str, float] = field(default_factory=dict)
    application: str = "unknown"
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    node: Optional[str] = None
    phase: PodPhase = PodPhase.PENDING
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def mark_submitted(self, time: float) -> None:
        if self.submit_time is not None:
            raise RuntimeError(f"pod {self.name!r} was already submitted")
        self.submit_time = float(time)
        self.phase = PodPhase.PENDING

    def mark_running(self, time: float, node: str) -> None:
        if self.phase is not PodPhase.PENDING:
            raise RuntimeError(f"pod {self.name!r} cannot start from phase {self.phase}")
        self.start_time = float(time)
        self.node = node
        self.phase = PodPhase.RUNNING

    def mark_finished(self, time: float, succeeded: bool = True) -> None:
        if self.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"pod {self.name!r} cannot finish from phase {self.phase}")
        self.finish_time = float(time)
        self.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED

    # ------------------------------------------------------------------ #
    @property
    def queue_seconds(self) -> Optional[float]:
        """Time spent pending before starting, if both timestamps are known."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime_seconds(self) -> Optional[float]:
        """Execution time (start to finish), if the pod has finished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def is_terminal(self) -> bool:
        return self.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten into a serialisable dictionary."""
        return {
            "name": self.name,
            "application": self.application,
            "hardware": self.request.name,
            "node": self.node,
            "phase": self.phase.value,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "queue_seconds": self.queue_seconds,
            "runtime_seconds": self.runtime_seconds,
            **{f"feature_{k}": v for k, v in self.features.items()},
        }
