"""Pluggable interference models: co-located pods slow each other down.

The paper's datasets record each run executing *alone* on its hardware, but a
shared cluster rarely grants that luxury: co-resident tenants compete for the
caches, memory bandwidth and I/O paths that resource *requests* do not
reserve.  This module describes that contention as a **progress rate**: a pod
holding a node with co-residents advances its work at ``speed`` work-seconds
per wall-clock second, where ``speed`` is 1.0 alone and drops as neighbours
pile on.

The :class:`~repro.cluster.simulator.ClusterSimulator` consults the model on
every topology change (pod start/finish, preemption, autoscale provision or
drain), re-integrates each running pod's progress at its previous rate, and
reschedules its tentative finish event at the new rate -- see the simulator's
progress-based execution engine.  Models therefore only need to answer one
pure question: *given this pod, this node, and these co-residents, how fast
does the pod run right now?*

Invariants every model must satisfy (validated by the simulator):

* ``0 < speed <= 1`` -- interference can only slow a pod down;
* a pod running **alone** must report ``speed == 1.0`` exactly, so
  contention-free executions reproduce the paper's per-run runtimes
  bit-for-bit (this is what keeps the zero-contention parity suite exact
  even under non-null models).

All models are frozen dataclasses, so scenarios embedding them stay
picklable and sweep-able over process pools.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.node import Node
from repro.cluster.pod import Pod

#: Pre-extracted resident requests for the batched path: ``(cpus, memory_gb,
#: gpus)`` arrays aligned with the pod sequence, gathered from the cluster's
#: flat state so batched evaluation needs no per-pod attribute walks.
RequestArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]

__all__ = [
    "InterferenceModel",
    "NoInterference",
    "LinearSlowdown",
    "CapacityContention",
    "uses_batched_speeds",
]


def uses_batched_speeds(model: "InterferenceModel") -> bool:
    """Whether ``model.node_speeds`` may be dispatched instead of ``speed``.

    Batched dispatch is only sound when the class providing ``node_speeds``
    is at least as derived as the class providing ``speed``: a subclass of a
    built-in model that overrides ``speed()`` alone would otherwise inherit
    the built-in's closed-form ``node_speeds`` and have its override
    silently ignored.  Such models (and models that never override
    ``node_speeds``) keep the per-pod scalar call pattern verbatim via
    ``InterferenceModel.node_speeds``.
    """
    cls = type(model)
    speed_owner = None
    node_speeds_owner = None
    for klass in cls.__mro__:
        if speed_owner is None and "speed" in vars(klass):
            speed_owner = klass
        if node_speeds_owner is None and "node_speeds" in vars(klass):
            node_speeds_owner = klass
    return (
        node_speeds_owner is not None
        and node_speeds_owner is not InterferenceModel
        and (speed_owner is None or issubclass(node_speeds_owner, speed_owner))
    )


def _co_resident_utilisation(node: Node, co_residents: Sequence[Pod]) -> float:
    """The co-residents' bottleneck utilisation fraction of ``node``.

    The fraction of each resource dimension allocated to the *other* pods on
    the node, taking the maximum across dimensions (GPU only when the node
    has GPUs): the most contended shared resource is the one that hurts.
    """
    if not co_residents:
        return 0.0
    cpus = sum(p.request.cpus for p in co_residents) / node.cpus
    memory = sum(p.request.memory_gb for p in co_residents) / node.memory_gb
    fractions = [cpus, memory]
    if node.gpus:
        fractions.append(sum(p.request.gpus for p in co_residents) / node.gpus)
    return max(fractions)


def _request_arrays(pods: Sequence[Pod]) -> RequestArrays:
    """Extract request arrays from pod objects (fallback when no state)."""
    cpus = np.array([p.request.cpus for p in pods], dtype=np.int64)
    mem = np.array([p.request.memory_gb for p in pods], dtype=np.float64)
    gpus = np.array([p.request.gpus for p in pods], dtype=np.int64)
    return cpus, mem, gpus


class InterferenceModel(abc.ABC):
    """How co-located pods perturb each other's progress rate."""

    @abc.abstractmethod
    def speed(self, pod: Pod, node: Node, co_residents: Sequence[Pod]) -> float:
        """Progress rate of ``pod`` on ``node`` given its ``co_residents``.

        Returns work-seconds completed per wall-clock second, in ``(0, 1]``.
        ``co_residents`` are the *other* pods currently running on ``node``
        (never includes ``pod`` itself).  Must return exactly ``1.0`` when
        ``co_residents`` is empty.
        """

    def node_speeds(
        self,
        node: Node,
        pods: Sequence[Pod],
        requests: Optional[RequestArrays] = None,
    ) -> np.ndarray:
        """Progress rates of **all** of a node's residents at once.

        The array kernel's batched entry point: one call per topology
        change replaces k per-pod :meth:`speed` calls (each of which
        rebuilt a k-1 co-resident list).  The default implementation falls
        back to the per-pod loop so custom third-party models keep working
        unchanged; the built-in models override it with closed-form array
        math that reproduces the scalar path bit for bit on the
        integer-valued requests every catalog uses.

        ``requests`` optionally carries the residents' pre-extracted
        ``(cpus, memory_gb, gpus)`` arrays (from
        :meth:`~repro.cluster.state.ClusterState.resident_requests`);
        models that only need request totals can then skip touching the pod
        objects entirely.
        """
        speeds = np.empty(len(pods), dtype=np.float64)
        for i, pod in enumerate(pods):
            others = [p for p in pods if p is not pod]
            speeds[i] = self.speed(pod, node, others)
        return speeds


@dataclass(frozen=True)
class NoInterference(InterferenceModel):
    """Co-located pods do not perturb each other (the pre-interference engine).

    Every pod always runs at full speed, so observed runtimes equal the
    drawn ground truth bit-for-bit -- the parity suite pins this.
    """

    def speed(self, pod: Pod, node: Node, co_residents: Sequence[Pod]) -> float:
        return 1.0

    def node_speeds(
        self,
        node: Node,
        pods: Sequence[Pod],
        requests: Optional[RequestArrays] = None,
    ) -> np.ndarray:
        return np.ones(len(pods), dtype=np.float64)


@dataclass(frozen=True)
class LinearSlowdown(InterferenceModel):
    """Slowdown growing linearly with co-resident utilisation.

    ``speed = 1 / (1 + alpha_node * u)`` where ``u`` is the co-residents'
    bottleneck utilisation fraction of the node (their allocated share of
    the most contended resource dimension).  ``alpha`` is the slowdown per
    unit of neighbour utilisation: with ``alpha=0.5`` a pod sharing a node
    whose other tenants fill 80% of it runs at ``1/1.4 ~ 71%`` speed.

    Heterogeneous clusters can weight the slowdown per node tier:
    ``class_weights`` maps a node's
    :attr:`~repro.cluster.node.Node.interference_class` to a multiplier on
    ``alpha`` (``alpha_node = alpha * weight``; classes absent from the map
    weigh 1.0).  A NUMA-partitioned tier might weigh 0.25 while an
    oversubscribed-I/O tier weighs 2.5 -- same request, very different
    noisy-neighbour damage, which is exactly what interference-aware
    placement exploits.  The solo invariant is unaffected: ``u = 0`` alone,
    so every class runs solo pods at full speed.

    This is the classic linear interference fit used for co-located
    batch workloads: cheap, monotone, and exact in the solo case.
    """

    alpha: float = 0.5
    #: Optional per-interference-class multiplier on ``alpha``.  Accepts a
    #: mapping (or an items tuple) at construction; *stored* normalised as a
    #: sorted tuple of ``(class, weight)`` pairs so the frozen dataclass
    #: stays hashable and picklable -- read it back as a mapping via
    #: :attr:`weight_map`.
    class_weights: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.class_weights is not None:
            items = tuple(
                sorted((str(k), float(v)) for k, v in dict(self.class_weights).items())
            )
            for name, weight in items:
                if weight < 0:
                    raise ValueError(
                        f"class weight for {name!r} must be non-negative, got {weight}"
                    )
            object.__setattr__(self, "class_weights", items)
            object.__setattr__(self, "_weight_map", dict(items))

    @property
    def weight_map(self) -> Mapping[str, float]:
        """The per-class multipliers as a plain mapping (empty when unset)."""
        if self.class_weights is None:
            return {}
        return dict(getattr(self, "_weight_map", dict(self.class_weights)))

    def node_alpha(self, node: Node) -> float:
        """The effective slowdown coefficient for one node's tier."""
        if self.class_weights is None:
            return self.alpha
        return self.alpha * getattr(self, "_weight_map", {}).get(
            node.interference_class, 1.0
        )

    def speed(self, pod: Pod, node: Node, co_residents: Sequence[Pod]) -> float:
        return 1.0 / (
            1.0 + self.node_alpha(node) * _co_resident_utilisation(node, co_residents)
        )

    def node_speeds(
        self,
        node: Node,
        pods: Sequence[Pod],
        requests: Optional[RequestArrays] = None,
    ) -> np.ndarray:
        """Batched form of :meth:`speed` for every resident of ``node``.

        Each pod's co-resident total is the node total minus its own
        request (exact for the integer-valued requests catalogs use, which
        is what makes this bit-identical to the sequential per-pod sums of
        the scalar path); the bottleneck fraction and the linear slowdown
        are then one elementwise expression.
        """
        k = len(pods)
        if k == 0:
            return np.empty(0, dtype=np.float64)
        cpus, mem, gpus = requests if requests is not None else _request_arrays(pods)
        if k == 1:
            # Solo pods short-circuit to exactly 1.0, mirroring the scalar
            # path's u = 0 -> 1/(1 + a*0) == 1.0.
            return np.ones(1, dtype=np.float64)
        co_cpus = (int(cpus.sum()) - cpus) / node.cpus
        co_mem = (float(mem.sum()) - mem) / node.memory_gb
        u = np.maximum(co_cpus, co_mem)
        if node.gpus:
            u = np.maximum(u, (int(gpus.sum()) - gpus) / node.gpus)
        return 1.0 / (1.0 + self.node_alpha(node) * u)


@dataclass(frozen=True)
class CapacityContention(InterferenceModel):
    """Per-resource contention: shared capacity delivers less than nominal.

    Resource *requests* reserve cores and bytes, but the shared paths behind
    them (last-level cache, memory bandwidth, NIC) do not scale to the full
    nominal capacity once multiple tenants run side by side.  This model
    says each resource dimension of a **shared** node only sustains a
    ``usable_fraction`` of its nominal capacity: when the residents'
    combined allocation of resource ``r`` exceeds
    ``usable_fraction_r * capacity_r``, every resident is throttled by the
    ratio, and a pod's speed is the factor of its most-contended resource::

        speed = min over r of min(1, usable_r / allocated_r)

    A pod running alone gets the whole machine (no sharing, no throttle), so
    solo executions stay exact.

    Parameters
    ----------
    cpu_fraction, memory_fraction, gpu_fraction:
        Usable fraction of each dimension's nominal capacity under sharing,
        in ``(0, 1]``.  The defaults model CPU as the contended path
        (caches/bandwidth) while memory capacity and GPUs partition cleanly.
    """

    cpu_fraction: float = 0.75
    memory_fraction: float = 1.0
    gpu_fraction: float = 1.0

    def __post_init__(self) -> None:
        for name in ("cpu_fraction", "memory_fraction", "gpu_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    def speed(self, pod: Pod, node: Node, co_residents: Sequence[Pod]) -> float:
        if not co_residents:
            return 1.0
        residents = [pod, *co_residents]
        factors = []
        for capacity, fraction, total in (
            (node.cpus, self.cpu_fraction, sum(p.request.cpus for p in residents)),
            (
                node.memory_gb,
                self.memory_fraction,
                sum(p.request.memory_gb for p in residents),
            ),
            (node.gpus, self.gpu_fraction, sum(p.request.gpus for p in residents)),
        ):
            if capacity and total:
                factors.append(min(1.0, (fraction * capacity) / total))
        return min(factors) if factors else 1.0

    def node_speeds(
        self,
        node: Node,
        pods: Sequence[Pod],
        requests: Optional[RequestArrays] = None,
    ) -> np.ndarray:
        """Batched form of :meth:`speed` for every resident of ``node``.

        The throttle depends only on the node-wide allocation totals
        (which include the pod itself), so all k residents share one
        speed: compute it once, broadcast, done -- versus the scalar
        path's k re-summations of the same totals.
        """
        k = len(pods)
        if k == 0:
            return np.empty(0, dtype=np.float64)
        if k == 1:
            return np.ones(1, dtype=np.float64)
        cpus, mem, gpus = requests if requests is not None else _request_arrays(pods)
        factors = []
        for capacity, fraction, total in (
            (node.cpus, self.cpu_fraction, int(cpus.sum())),
            (node.memory_gb, self.memory_fraction, float(mem.sum())),
            (node.gpus, self.gpu_fraction, int(gpus.sum())),
        ):
            if capacity and total:
                factors.append(min(1.0, (fraction * capacity) / total))
        shared = min(factors) if factors else 1.0
        return np.full(k, shared, dtype=np.float64)
