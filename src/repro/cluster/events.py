"""A minimal discrete-event engine with O(1) lazy cancellation.

The simulator's hot path is the *frontier protocol*: each node keeps at most
one live ``node_next_finish`` event (the earliest tentative finish among its
residents).  When a topology change moves a node's frontier, the outstanding
event is :meth:`EventQueue.cancel`-ed (a flag flip, no heap surgery) and a
fresh one is pushed.  Dead entries are pruned lazily the next time the heap
head is inspected, so :meth:`pop`, :meth:`peek_time` and :meth:`drain` never
surface a superseded time and never advance the clock past one.

The queue keeps three monotonic counters -- :attr:`~EventQueue.pushed`,
:attr:`~EventQueue.popped` (live events handled) and
:attr:`~EventQueue.skipped` (cancelled entries discarded) -- which the
simulator mirrors into :class:`~repro.cluster.state.KernelProfile` so event
machinery regressions show up in ``run-contention --profile`` and the kernel
benchmark suite.
"""

from __future__ import annotations

import heapq
import itertools
import sys
from typing import Any, Callable, Dict, Optional

__all__ = [
    "Event",
    "EventQueue",
    "POD_SUBMITTED",
    "NODE_NEXT_FINISH",
    "NODE_PROVISIONED",
    "NODE_DRAIN_CHECK",
]

# The hot event kinds, interned once at import: every dispatch compares the
# popped event's kind against these, and interning makes each comparison a
# pointer check instead of a character scan.
POD_SUBMITTED = sys.intern("pod_submitted")
NODE_NEXT_FINISH = sys.intern("node_next_finish")
NODE_PROVISIONED = sys.intern("node_provisioned")
NODE_DRAIN_CHECK = sys.intern("node_drain_check")


class Event:
    """A timestamped event.

    A plain ``__slots__`` class rather than a dataclass: construction cost is
    pure event-machinery overhead on the simulator's hottest path.  Treat
    instances as immutable except through :meth:`EventQueue.cancel`.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        Event name (``"pod_submitted"``, ``"node_next_finish"`` ...).
    payload:
        Data attached to the event.  Frontier events carry ``None`` -- their
        only datum is :attr:`node_slot`, stored as a slot field so the hot
        path allocates no per-event dict.
    seq:
        Tie-breaking sequence number assigned by the queue; events at equal
        times are processed in insertion order.
    node_slot:
        Kernel slot of the node a ``node_next_finish`` event belongs to
        (``-1`` for every other kind).
    alive:
        ``False`` once cancelled; dead entries are skipped, not handled.
    """

    __slots__ = ("time", "kind", "payload", "seq", "node_slot", "alive")

    def __init__(
        self,
        time: float,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        seq: int = -1,
        node_slot: int = -1,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = time
        self.kind = kind
        self.payload = {} if payload is None else payload
        self.seq = seq
        self.node_slot = node_slot
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event(time={self.time!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, seq={self.seq}, "
            f"node_slot={self.node_slot}, alive={self.alive})"
        )


class EventQueue:
    """A priority queue of :class:`Event` ordered by (time, insertion order).

    Supports O(1) cancellation: :meth:`cancel` marks an entry dead in place
    and the heap prunes it lazily.  ``len(queue)`` / ``bool(queue)`` count
    live entries only, so "has work" checks are unaffected by cancelled
    backlog.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._now = 0.0
        self._live = 0
        #: Total events ever scheduled.
        self.pushed = 0
        #: Live events popped (i.e. actually handled).
        self.popped = 0
        #: Cancelled entries discarded while pruning the heap.  Equals the
        #: number of cancels once the queue drains past them.
        self.skipped = 0

    @property
    def now(self) -> float:
        """The time of the most recently popped event (starts at 0)."""
        return self._now

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, kind: str, **payload: Any) -> Event:
        """Schedule an event at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = next(self._counter)
        # ``payload`` is the fresh kwargs dict -- no defensive copy needed.
        event = Event(float(time), kind, payload, seq)
        heapq.heappush(self._heap, (event.time, seq, event))
        self._live += 1
        self.pushed += 1
        return event

    def push_frontier(self, time: float, node_slot: int) -> Event:
        """Schedule a ``node_next_finish`` event for ``node_slot``.

        The payload-free fast path: the event is built via ``__new__`` with
        ``payload=None`` and the node slot in a slot field, so re-pushing a
        node's frontier allocates no dict and runs no keyword plumbing.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = next(self._counter)
        event = Event.__new__(Event)
        event.time = float(time)
        event.kind = NODE_NEXT_FINISH
        event.payload = None
        event.seq = seq
        event.node_slot = node_slot
        event.alive = True
        heapq.heappush(self._heap, (event.time, seq, event))
        self._live += 1
        self.pushed += 1
        return event

    def push_in(self, delay: float, kind: str, **payload: Any) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.push(self._now + delay, kind, **payload)

    def cancel(self, event: Event) -> None:
        """Invalidate a scheduled event in O(1) (idempotent).

        The entry stays in the heap but will be discarded -- counted in
        :attr:`skipped` -- instead of surfaced by :meth:`pop`,
        :meth:`peek_time` or :meth:`drain`.
        """
        if event.alive:
            event.alive = False
            self._live -= 1

    def pop(self) -> Event:
        """Pop and return the next *live* event, advancing the clock to its time.

        Cancelled entries encountered on the way are discarded without
        touching the clock.
        """
        heap = self._heap
        while heap:
            _, _, event = heapq.heappop(heap)
            if not event.alive:
                self.skipped += 1
                continue
            self._now = event.time
            self._live -= 1
            self.popped += 1
            return event
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the queue is empty.

        Prunes cancelled heads so a superseded frontier time is never
        reported (callers interleaving external arrivals would otherwise
        wake at meaningless timestamps).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].alive:
                return head[0]
            heapq.heappop(heap)
            self.skipped += 1
        return None

    def drain(self, handler: Callable[[Event], None], until: Optional[float] = None) -> int:
        """Pop live events (optionally only up to time ``until``), passing each to ``handler``.

        Returns the number of events processed; cancelled entries are
        discarded silently and do not count.  The handler may push (or
        cancel) events while draining.
        """
        processed = 0
        while self._live:
            next_time = self.peek_time()
            if until is not None and next_time > until:
                break
            handler(self.pop())
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed
