"""A minimal discrete-event engine."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Optional

__all__ = ["Event", "EventQueue"]


class Event:
    """A timestamped event.

    A plain ``__slots__`` class rather than a dataclass: the simulator
    creates one per scheduled finish (hundreds of thousands per busy run),
    and construction cost is pure event-machinery overhead.  Treat
    instances as immutable.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        Event name (``"pod_submitted"``, ``"pod_finished"`` ...).
    payload:
        Arbitrary data attached to the event.
    seq:
        Tie-breaking sequence number assigned by the queue; events at equal
        times are processed in insertion order.
    """

    __slots__ = ("time", "kind", "payload", "seq")

    def __init__(
        self,
        time: float,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        seq: int = -1,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = time
        self.kind = kind
        self.payload = {} if payload is None else payload
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event(time={self.time!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, seq={self.seq})"
        )


class EventQueue:
    """A priority queue of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """The time of the most recently popped event (starts at 0)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: str, **payload: Any) -> Event:
        """Schedule an event at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = next(self._counter)
        # ``payload`` is the fresh kwargs dict -- no defensive copy needed.
        event = Event(float(time), kind, payload, seq)
        heapq.heappush(self._heap, (event.time, seq, event))
        return event

    def push_in(self, delay: float, kind: str, **payload: Any) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.push(self._now + delay, kind, **payload)

    def pop(self) -> Event:
        """Pop and return the next event, advancing the clock to its time."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        _, _, event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self, handler: Callable[[Event], None], until: Optional[float] = None) -> int:
        """Pop events (optionally only up to time ``until``), passing each to ``handler``.

        Returns the number of events processed.  The handler may push new
        events while draining.
        """
        processed = 0
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                break
            handler(self.pop())
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed
