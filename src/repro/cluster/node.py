"""Cluster nodes with resource-capacity accounting.

:class:`Node` is a *facade* since the array-kernel refactor: allocation
totals are maintained incrementally (the pre-refactor properties re-summed
the allocation dict on every read, which dominated the simulator's
feasibility checks), and a node adopted by a
:class:`~repro.cluster.state.ClusterState` additionally mirrors its totals
into the state's flat per-node arrays so placement and interference
evaluation can gather them in batch.  The public surface is unchanged;
standalone nodes (tests, probes, autoscaler deficit bins) never touch the
array store.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware import HardwareConfig

__all__ = ["Node", "InsufficientCapacityError"]


class InsufficientCapacityError(RuntimeError):
    """Raised when an allocation would exceed a node's free capacity."""


class Node:
    """One cluster node with CPU, memory and GPU capacity.

    Parameters
    ----------
    name:
        Node identifier (unique within a cluster).
    cpus, memory_gb, gpus:
        Total allocatable capacity.
    labels:
        Arbitrary metadata (zone, architecture, ...), mirroring Kubernetes
        node labels.
    interference_class:
        Hardware tier of the node's *shared* paths (NUMA layout, last-level
        cache, I/O fabric) -- e.g. ``"standard"`` (the default),
        ``"numa-quiet"``, ``"io-noisy"``.  Interference models may weight
        co-residency slowdown per class (see
        :class:`~repro.cluster.interference.LinearSlowdown`), and
        interference-aware placement steers pods toward quiet tiers.
    """

    def __init__(
        self,
        name: str,
        cpus: int,
        memory_gb: float,
        gpus: int = 0,
        labels: Optional[Dict[str, str]] = None,
        interference_class: str = "standard",
    ):
        if not name:
            raise ValueError("node requires a non-empty name")
        if cpus <= 0 or memory_gb <= 0 or gpus < 0:
            raise ValueError(
                f"invalid capacity for node {name!r}: cpus={cpus}, memory_gb={memory_gb}, gpus={gpus}"
            )
        if not interference_class:
            raise ValueError(f"node {name!r} requires a non-empty interference class")
        self.name = name
        self.cpus = int(cpus)
        self.memory_gb = float(memory_gb)
        self.gpus = int(gpus)
        self.labels = dict(labels or {})
        self.interference_class = str(interference_class)
        self._allocations: Dict[str, HardwareConfig] = {}
        # Incremental allocation totals: exact for the integer-valued
        # requests every catalog uses, and O(1) to read where the old
        # properties re-summed the dict on every access.
        self._alloc_cpus = 0
        self._alloc_memory_gb = 0.0
        self._alloc_gpus = 0
        # Array-kernel binding (None/-1 while unbound).
        self._state = None
        self._slot = -1

    def _bind(self, state, slot: int) -> None:
        """Adopt this node into ``state`` (called by ``ClusterState``)."""
        self._state = state
        self._slot = slot

    def _unbind(self) -> None:
        self._state = None
        self._slot = -1

    # ------------------------------------------------------------------ #
    @property
    def allocated_cpus(self) -> int:
        return self._alloc_cpus

    @property
    def allocated_memory_gb(self) -> float:
        return self._alloc_memory_gb

    @property
    def allocated_gpus(self) -> int:
        return self._alloc_gpus

    @property
    def free_cpus(self) -> int:
        return self.cpus - self._alloc_cpus

    @property
    def free_memory_gb(self) -> float:
        return self.memory_gb - self._alloc_memory_gb

    @property
    def free_gpus(self) -> int:
        return self.gpus - self._alloc_gpus

    @property
    def allocations(self) -> Dict[str, HardwareConfig]:
        """Current allocations keyed by pod name."""
        return dict(self._allocations)

    def utilisation(self) -> Dict[str, float]:
        """Fractional utilisation of each resource dimension."""
        return {
            "cpus": self._alloc_cpus / self.cpus,
            "memory_gb": self._alloc_memory_gb / self.memory_gb,
            "gpus": (self._alloc_gpus / self.gpus) if self.gpus else 0.0,
        }

    # ------------------------------------------------------------------ #
    def fits(self, request: HardwareConfig) -> bool:
        """Whether ``request`` fits in the node's *free* capacity."""
        return (
            request.cpus <= self.cpus - self._alloc_cpus
            and request.memory_gb <= self.memory_gb - self._alloc_memory_gb
            and request.gpus <= self.gpus - self._alloc_gpus
        )

    def allocate(self, pod_name: str, request: HardwareConfig) -> None:
        """Reserve ``request`` for ``pod_name``.

        Raises
        ------
        InsufficientCapacityError
            If the request does not fit.
        ValueError
            If ``pod_name`` already holds an allocation on this node.
        """
        if pod_name in self._allocations:
            raise ValueError(f"pod {pod_name!r} already allocated on node {self.name!r}")
        if not self.fits(request):
            raise InsufficientCapacityError(
                f"node {self.name!r} cannot fit request {request.as_tuple()} "
                f"(free: {self.free_cpus} CPU, {self.free_memory_gb:g} GiB, {self.free_gpus} GPU)"
            )
        self._allocations[pod_name] = request
        self._alloc_cpus += request.cpus
        self._alloc_memory_gb += request.memory_gb
        self._alloc_gpus += request.gpus
        if self._state is not None:
            self._state.on_allocate(
                self._slot, pod_name, request.cpus, request.memory_gb, request.gpus
            )

    def clone(self) -> "Node":
        """An unallocated copy of this node (same capacity and labels).

        Used wherever pristine capacity matters -- feasibility probes and
        fresh per-run clusters -- so capacity fields added to ``Node`` later
        cannot silently be dropped by ad-hoc copy sites.  Clones are always
        unbound, whatever the original was.
        """
        return Node(
            self.name,
            cpus=self.cpus,
            memory_gb=self.memory_gb,
            gpus=self.gpus,
            labels=self.labels,
            interference_class=self.interference_class,
        )

    def release(self, pod_name: str) -> HardwareConfig:
        """Release the allocation held by ``pod_name`` and return it."""
        if pod_name not in self._allocations:
            raise KeyError(f"pod {pod_name!r} holds no allocation on node {self.name!r}")
        request = self._allocations.pop(pod_name)
        self._alloc_cpus -= request.cpus
        self._alloc_memory_gb -= request.memory_gb
        self._alloc_gpus -= request.gpus
        if self._state is not None:
            self._state.on_release(
                self._slot, pod_name, request.cpus, request.memory_gb, request.gpus
            )
        return request

    @property
    def resident_pods(self) -> List[str]:
        """Names of pods currently allocated, in allocation order."""
        return list(self._allocations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node({self.name!r}, cpus={self.allocated_cpus}/{self.cpus}, "
            f"mem={self.allocated_memory_gb:g}/{self.memory_gb:g}GiB, pods={len(self._allocations)})"
        )
