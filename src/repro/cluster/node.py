"""Cluster nodes with resource-capacity accounting."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware import HardwareConfig

__all__ = ["Node", "InsufficientCapacityError"]


class InsufficientCapacityError(RuntimeError):
    """Raised when an allocation would exceed a node's free capacity."""


class Node:
    """One cluster node with CPU, memory and GPU capacity.

    Parameters
    ----------
    name:
        Node identifier (unique within a cluster).
    cpus, memory_gb, gpus:
        Total allocatable capacity.
    labels:
        Arbitrary metadata (zone, architecture, ...), mirroring Kubernetes
        node labels.
    interference_class:
        Hardware tier of the node's *shared* paths (NUMA layout, last-level
        cache, I/O fabric) -- e.g. ``"standard"`` (the default),
        ``"numa-quiet"``, ``"io-noisy"``.  Interference models may weight
        co-residency slowdown per class (see
        :class:`~repro.cluster.interference.LinearSlowdown`), and
        interference-aware placement steers pods toward quiet tiers.
    """

    def __init__(
        self,
        name: str,
        cpus: int,
        memory_gb: float,
        gpus: int = 0,
        labels: Optional[Dict[str, str]] = None,
        interference_class: str = "standard",
    ):
        if not name:
            raise ValueError("node requires a non-empty name")
        if cpus <= 0 or memory_gb <= 0 or gpus < 0:
            raise ValueError(
                f"invalid capacity for node {name!r}: cpus={cpus}, memory_gb={memory_gb}, gpus={gpus}"
            )
        if not interference_class:
            raise ValueError(f"node {name!r} requires a non-empty interference class")
        self.name = name
        self.cpus = int(cpus)
        self.memory_gb = float(memory_gb)
        self.gpus = int(gpus)
        self.labels = dict(labels or {})
        self.interference_class = str(interference_class)
        self._allocations: Dict[str, HardwareConfig] = {}

    # ------------------------------------------------------------------ #
    @property
    def allocated_cpus(self) -> int:
        return sum(cfg.cpus for cfg in self._allocations.values())

    @property
    def allocated_memory_gb(self) -> float:
        return sum(cfg.memory_gb for cfg in self._allocations.values())

    @property
    def allocated_gpus(self) -> int:
        return sum(cfg.gpus for cfg in self._allocations.values())

    @property
    def free_cpus(self) -> int:
        return self.cpus - self.allocated_cpus

    @property
    def free_memory_gb(self) -> float:
        return self.memory_gb - self.allocated_memory_gb

    @property
    def free_gpus(self) -> int:
        return self.gpus - self.allocated_gpus

    @property
    def allocations(self) -> Dict[str, HardwareConfig]:
        """Current allocations keyed by pod name."""
        return dict(self._allocations)

    def utilisation(self) -> Dict[str, float]:
        """Fractional utilisation of each resource dimension."""
        return {
            "cpus": self.allocated_cpus / self.cpus,
            "memory_gb": self.allocated_memory_gb / self.memory_gb,
            "gpus": (self.allocated_gpus / self.gpus) if self.gpus else 0.0,
        }

    # ------------------------------------------------------------------ #
    def fits(self, request: HardwareConfig) -> bool:
        """Whether ``request`` fits in the node's *free* capacity."""
        return (
            request.cpus <= self.free_cpus
            and request.memory_gb <= self.free_memory_gb
            and request.gpus <= self.free_gpus
        )

    def allocate(self, pod_name: str, request: HardwareConfig) -> None:
        """Reserve ``request`` for ``pod_name``.

        Raises
        ------
        InsufficientCapacityError
            If the request does not fit.
        ValueError
            If ``pod_name`` already holds an allocation on this node.
        """
        if pod_name in self._allocations:
            raise ValueError(f"pod {pod_name!r} already allocated on node {self.name!r}")
        if not self.fits(request):
            raise InsufficientCapacityError(
                f"node {self.name!r} cannot fit request {request.as_tuple()} "
                f"(free: {self.free_cpus} CPU, {self.free_memory_gb:g} GiB, {self.free_gpus} GPU)"
            )
        self._allocations[pod_name] = request

    def clone(self) -> "Node":
        """An unallocated copy of this node (same capacity and labels).

        Used wherever pristine capacity matters -- feasibility probes and
        fresh per-run clusters -- so capacity fields added to ``Node`` later
        cannot silently be dropped by ad-hoc copy sites.
        """
        return Node(
            self.name,
            cpus=self.cpus,
            memory_gb=self.memory_gb,
            gpus=self.gpus,
            labels=self.labels,
            interference_class=self.interference_class,
        )

    def release(self, pod_name: str) -> HardwareConfig:
        """Release the allocation held by ``pod_name`` and return it."""
        if pod_name not in self._allocations:
            raise KeyError(f"pod {pod_name!r} holds no allocation on node {self.name!r}")
        return self._allocations.pop(pod_name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node({self.name!r}, cpus={self.allocated_cpus}/{self.cpus}, "
            f"mem={self.allocated_memory_gb:g}/{self.memory_gb:g}GiB, pods={len(self._allocations)})"
        )
