"""Pluggable pod-to-node placement policies.

Scheduling on this cluster is two independent questions:

* **which pod next** -- the queue discipline (FIFO, backfill skip-ahead,
  priority classes).  That axis lives in the
  :mod:`~repro.cluster.scheduler` classes.
* **which node** -- given the pod the queue discipline picked, where does it
  go?  That axis lives here.

Before this module the answer to the second question was baked into each
scheduler (`FIFOScheduler` hard-coded first-fit, `BestFitScheduler`
hard-coded best-fit), so evaluating "priority scheduling with spread
placement" meant writing a new scheduler class.  Now every
:class:`~repro.cluster.scheduler.Scheduler` composes with any
:class:`PlacementPolicy`, and the cluster's interference model becomes a
placement *input*: :class:`LeastSlowdown` scores candidate nodes by the
post-placement slowdown of the pod **and** its prospective co-residents, so
the simulator can avoid (or, with :class:`Pack`, deliberately create) noisy
neighbours.

Every policy is a frozen dataclass (picklable, sweep-able over process
pools) and must be **deterministic**: ties are broken by cluster order or
node name, never by iteration order of a set or dict.  :class:`FirstFit` is
the default everywhere and reproduces the pre-refactor schedulers bit for
bit -- the placement parity suite pins this against reference values
captured before the refactor.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.cluster.interference import (  # noqa: F401
    InterferenceModel,
    NoInterference,
    uses_batched_speeds,
)
from repro.cluster.node import Node
from repro.cluster.pod import Pod

__all__ = [
    "PlacementContext",
    "PlacementPolicy",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "Pack",
    "LeastSlowdown",
    "PLACEMENT_POLICIES",
    "build_placement",
]


@dataclass(frozen=True)
class PlacementContext:
    """What a placement policy may know beyond free capacity.

    Attributes
    ----------
    interference:
        The cluster's active interference model.  Interference-aware
        policies query it for hypothetical post-placement progress rates.
    running:
        The pods currently executing on each node, keyed by node name.
        Policies must treat missing keys as "no residents" (feasibility
        probes and autoscaler deficit packing run against pristine nodes).
    """

    interference: InterferenceModel = field(default_factory=NoInterference)
    running: Mapping[str, Sequence[Pod]] = field(default_factory=dict)

    def residents(self, node: Node) -> Sequence[Pod]:
        return self.running.get(node.name, ())


class PlacementPolicy(abc.ABC):
    """Choose a node for one pod (or ``None`` when nothing fits).

    Subclasses must be deterministic pure functions of
    ``(pod, nodes, context)`` -- the scheduler owns *when* placement is
    attempted and performs the allocation; the policy only ranks nodes.
    """

    #: Registry/reporting name (kebab-case, stable across refactors).
    name: str = "placement"

    #: Human-readable explanation stamped on successful decisions.
    reason: str = "placed"

    #: Whether the policy reads :class:`PlacementContext` (co-residency /
    #: interference).  The simulator skips building the context for policies
    #: that only look at free capacity, keeping the default path as cheap as
    #: the pre-refactor schedulers.
    needs_context: bool = False

    @abc.abstractmethod
    def select(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> Optional[Node]:
        """The node ``pod`` should be placed on, or ``None`` when none fits."""


@dataclass(frozen=True)
class FirstFit(PlacementPolicy):
    """The first node in cluster order with room (the pre-refactor default).

    This is what every scheduler did before placement became pluggable:
    BanditWare controls the *resource request*, not the node choice, so the
    baseline placement's only job is to find capacity.  The placement parity
    suite pins that this policy reproduces the pre-refactor engine bit for
    bit under every scheduler.
    """

    name = "first-fit"
    reason = "first node with sufficient capacity"

    def select(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> Optional[Node]:
        for node in nodes:
            if node.fits(pod.request):
                return node
        return None


@dataclass(frozen=True)
class BestFit(PlacementPolicy):
    """The feasible node that leaves the least spare capacity.

    Classic best-fit bin packing: it keeps large contiguous capacity free
    for large requests, which reduces head-of-line blocking when workloads
    with mixed resource requests share the cluster.

    Tie-breaking is explicitly deterministic: candidates sort on the key
    ``(cpu_leftover, memory_leftover, node.name)``, so equal-fit nodes are
    always resolved by name regardless of cluster order -- pinned by a
    regression test so placement refactors cannot silently reorder them.
    """

    name = "best-fit"
    reason = "best-fit on remaining CPU"

    def select(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> Optional[Node]:
        feasible = [n for n in nodes if n.fits(pod.request)]
        if not feasible:
            return None
        return min(
            feasible,
            key=lambda n: (
                n.free_cpus - pod.request.cpus,
                n.free_memory_gb - pod.request.memory_gb,
                n.name,
            ),
        )


@dataclass(frozen=True)
class WorstFit(PlacementPolicy):
    """Spread: the feasible node with the *most* spare capacity.

    Worst-fit is the load-spreading heuristic: new pods land on the
    emptiest node, so co-residency (and therefore interference) is
    minimised without consulting the interference model at all.  Ties are
    broken by node name, mirroring :class:`BestFit`.
    """

    name = "spread"
    reason = "worst-fit spread onto the emptiest node"

    def select(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> Optional[Node]:
        feasible = [n for n in nodes if n.fits(pod.request)]
        if not feasible:
            return None
        return min(
            feasible,
            key=lambda n: (
                -(n.free_cpus - pod.request.cpus),
                -(n.free_memory_gb - pod.request.memory_gb),
                n.name,
            ),
        )


@dataclass(frozen=True)
class Pack(PlacementPolicy):
    """Consolidate: the most-utilised feasible node.

    The opposite of :class:`WorstFit`: keep filling the busiest node so the
    rest of the cluster stays empty (the shape autoscaler scale-*down*
    likes, and the shape that maximises noisy-neighbour interference --
    benchmarks use it as the adversarial baseline for
    :class:`LeastSlowdown`).  Utilisation is the node's bottleneck allocated
    fraction across resource dimensions; ties fall back to cluster order,
    so an empty cluster packs exactly like :class:`FirstFit`.
    """

    name = "pack"
    reason = "packed onto the most-utilised feasible node"

    def select(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> Optional[Node]:
        best: Optional[Node] = None
        best_key = None
        for index, node in enumerate(nodes):
            if not node.fits(pod.request):
                continue
            key = (-max(node.utilisation().values()), index)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best


@dataclass(frozen=True)
class LeastSlowdown(PlacementPolicy):
    """Interference-aware placement: minimise collective post-placement slowdown.

    For every feasible node the policy asks the cluster's active
    :class:`~repro.cluster.interference.InterferenceModel` a hypothetical
    question: *if this pod landed here, how fast would it run, and how much
    would it slow down the node's current residents?*  The node's score is
    the summed **excess** slowdown (``1 / speed - 1``, zero at full speed)
    of the pod **and** every prospective co-resident after placement; the
    lowest score wins, with ties falling back to cluster order.  Scoring
    the excess rather than the raw factor matters: it ranks nodes purely by
    the interference the placement would cause, with no constant
    per-resident term, so under
    :class:`~repro.cluster.interference.NoInterference` every node scores
    0.0 and the choice degenerates to first-fit exactly -- occupied or not.

    Because interference models weight nodes by
    :attr:`~repro.cluster.node.Node.interference_class`, this policy also
    steers pods toward quiet hardware tiers on heterogeneous clusters.
    """

    name = "least-slowdown"
    reason = "least post-placement slowdown for pod and co-residents"
    needs_context = True

    def select(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> Optional[Node]:
        context = context if context is not None else PlacementContext()
        model = context.interference
        # Built-in models override node_speeds with closed-form array math:
        # one batched call scores a node's whole hypothetical resident set.
        # Custom models that only implement speed() -- including subclasses
        # of the built-ins that override speed() alone -- keep the scalar
        # loop verbatim, preserving their exact call pattern (and
        # co-resident ordering) from before the array kernel.
        batched = uses_batched_speeds(model)
        best: Optional[Node] = None
        best_key = None
        for index, node in enumerate(nodes):
            if not node.fits(pod.request):
                continue
            residents = list(context.residents(node))
            if batched:
                speeds = model.node_speeds(node, [pod, *residents])
                # Accumulate the excess slowdown sequentially in the same
                # order as the scalar loop (pod first, then residents), so
                # the float sum -- and therefore every tie-break -- is
                # bit-identical to the pre-kernel policy.
                cost = 0.0
                for s in speeds.tolist():
                    cost += 1.0 / s - 1.0
            else:
                cost = 1.0 / model.speed(pod, node, residents) - 1.0
                for i, resident in enumerate(residents):
                    others = residents[:i] + residents[i + 1 :] + [pod]
                    cost += 1.0 / model.speed(resident, node, others) - 1.0
            key = (cost, index)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best


#: Placement registry: kebab-case name -> policy factory.  ``spread`` is the
#: canonical name of :class:`WorstFit` (the CLI vocabulary); ``worst-fit``
#: is accepted as an alias.
PLACEMENT_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "first-fit": FirstFit,
    "best-fit": BestFit,
    "spread": WorstFit,
    "worst-fit": WorstFit,
    "pack": Pack,
    "least-slowdown": LeastSlowdown,
}


def build_placement(name: str) -> PlacementPolicy:
    """Build a registered placement policy by name."""
    if name not in PLACEMENT_POLICIES:
        raise KeyError(
            f"unknown placement policy {name!r}; available: {sorted(PLACEMENT_POLICIES)}"
        )
    return PLACEMENT_POLICIES[name]()
