"""The structure-of-arrays cluster kernel: flat runtime state + profiling.

Before this module every hot path of the cluster simulator walked Python
objects: a topology change re-integrated each resident pod's progress one
attribute access at a time, and the interference model was consulted pod by
pod with a freshly built co-resident list (O(k^2) work per change on a node
with k residents).  :class:`ClusterState` stores the hot runtime state of
pods and nodes in flat numpy arrays instead, so re-integration, tentative
finish computation, interference speed evaluation and placement scoring all
become batched array operations.

**Facade contract.**  :class:`~repro.cluster.pod.Pod` and
:class:`~repro.cluster.node.Node` remain the public API; they become thin
views over these arrays once *adopted* (bound) by a state store:

* A pod/node constructed directly (tests, examples, feasibility probes,
  autoscaler deficit bins) is **unbound**: it keeps plain attribute storage
  and behaves exactly as before this refactor.
* The simulator adopts every node at construction and every pod at
  submission.  Adoption copies the current attribute values into the arrays;
  from then on the facade's hot fields (pod progress/speed/work/
  wall-clock accumulators, node allocation totals) read and write the
  arrays, so object-level mutation and array-level batch updates can never
  disagree.
* External code may freely *read* any facade attribute and may mutate pods
  and nodes through their public methods (``allocate``/``release``,
  ``mark_*``, ``set_speed``); it must not reach into ``ClusterState``
  arrays directly -- array layout is an implementation detail of the
  kernel and may change between versions.

**Exactness.**  The arrays hold the same float64 values the per-object
engine held; batched updates use elementwise operations in the same order
as the scalar code, so results are bit-identical on every registered
scenario (pinned by ``benchmarks/kernel_parity_reference.json``, the
kernel-parity tests, CI, and ``bench_engine.py --suite kernel``).

``NaN`` encodes ``None`` for the optional per-pod floats (``speed`` and the
last-integration timestamp): the simulator's rate-unchanged check
(``pod.speed == speed``) is never taken for an unset rate, and ``NaN != x``
preserves exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (facades import us)
    from repro.cluster.node import Node
    from repro.cluster.pod import Pod

__all__ = ["ClusterState", "KernelProfile"]

#: Pod phase codes stored in :attr:`ClusterState.status` (mirrors
#: :class:`~repro.cluster.pod.PodPhase`; kept numeric for vectorised masks).
STATUS_PENDING = 0
STATUS_RUNNING = 1
STATUS_SUCCEEDED = 2
STATUS_FAILED = 3

_STATUS_CODES = {
    "Pending": STATUS_PENDING,
    "Running": STATUS_RUNNING,
    "Succeeded": STATUS_SUCCEEDED,
    "Failed": STATUS_FAILED,
}


@dataclass
class KernelProfile:
    """Wall-clock accounting of the simulator's hot paths.

    Enabled via ``ClusterSimulator.enable_profiling()`` (the CLI's
    ``run-contention --profile`` flag); the counters make hot-path
    regressions diagnosable without re-running cProfile: a jump in
    ``reintegration_seconds`` points at the kernel, ``placement_seconds``
    at the policy, ``scheduling_seconds`` at the queue discipline.
    """

    #: Seconds spent re-integrating progress / rescheduling tentative
    #: finishes on topology changes (:meth:`ClusterSimulator._reschedule_node`).
    reintegration_seconds: float = 0.0
    #: Seconds spent in schedule passes over the pending queue, *including*
    #: placement (placement is also reported separately below).
    scheduling_seconds: float = 0.0
    #: Seconds spent inside placement decisions (``scheduler.schedule`` /
    #: ``select_node`` calls).
    placement_seconds: float = 0.0
    events_processed: int = 0
    reschedule_calls: int = 0
    pods_rescheduled: int = 0
    schedule_passes: int = 0
    placement_calls: int = 0
    #: Heap traffic, mirrored from :class:`~repro.cluster.events.EventQueue`:
    #: total events scheduled, live events handled, and cancelled (superseded
    #: frontier) entries discarded without handling.  Under the per-node
    #: frontier protocol ``events_pushed`` stays O(completions +
    #: topology-changes) instead of O(pods x topology-changes).
    events_pushed: int = 0
    events_popped: int = 0
    events_skipped: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "reintegration_seconds": self.reintegration_seconds,
            "scheduling_seconds": self.scheduling_seconds,
            "placement_seconds": self.placement_seconds,
            "events_processed": float(self.events_processed),
            "reschedule_calls": float(self.reschedule_calls),
            "pods_rescheduled": float(self.pods_rescheduled),
            "schedule_passes": float(self.schedule_passes),
            "placement_calls": float(self.placement_calls),
            "events_pushed": float(self.events_pushed),
            "events_popped": float(self.events_popped),
            "events_skipped": float(self.events_skipped),
        }

    def merge(self, other: "KernelProfile") -> None:
        """Accumulate another profile into this one (multi-run aggregation)."""
        self.reintegration_seconds += other.reintegration_seconds
        self.scheduling_seconds += other.scheduling_seconds
        self.placement_seconds += other.placement_seconds
        self.events_processed += other.events_processed
        self.reschedule_calls += other.reschedule_calls
        self.pods_rescheduled += other.pods_rescheduled
        self.schedule_passes += other.schedule_passes
        self.placement_calls += other.placement_calls
        self.events_pushed += other.events_pushed
        self.events_popped += other.events_popped
        self.events_skipped += other.events_skipped

    @staticmethod
    def clock() -> float:
        return time.perf_counter()


class ClusterState:
    """Flat array storage for one simulator's pods and nodes.

    Pod arrays (index = adoption order, grown by amortised doubling):

    ``work``
        Ground-truth work seconds (NaN until drawn).
    ``progress``
        Work seconds completed in the current attempt.
    ``speed``
        Current progress rate (NaN encodes "not yet computed").
    ``updated_at``
        Simulation time progress was last integrated to (NaN while pending).
    ``running_wall``
        Wall seconds of the current attempt accumulated at re-integration
        points.
    ``req_cpus`` / ``req_mem`` / ``req_gpus``
        The pod's resource request, pre-extracted for batched interference
        and placement math.
    ``finish_at``
        Tentative finish time at the current rate (NaN until first
        computed).  The per-node minimum over residents is the node's
        *finish frontier* -- the simulator schedules exactly one
        ``node_next_finish`` event at that time and takes the argmin again
        when it fires.
    ``remaining``
        Wall seconds from the last re-integration point to the tentative
        finish.  Kept alongside ``finish_at`` (rather than recomputed as
        ``finish_at - now``) so an uninterfered run reports its drawn
        runtime bit-for-bit: the subtraction loses low-order bits once the
        clock is large.
    ``status``
        Lifecycle phase code (see ``STATUS_*``).
    ``node_slot``
        Slot of the node the pod runs on (-1 when not placed).

    Node slots (index = adoption order; slots survive drain so pod
    ``node_slot`` references stay valid):

    ``cap_cpus`` / ``cap_mem`` / ``cap_gpus``
        Total capacity.
    ``alloc_cpus`` / ``alloc_mem`` / ``alloc_gpus``
        Currently allocated totals, maintained incrementally on
        ``allocate``/``release`` (no more re-summing the allocation dict on
        every property read).
    ``residents``
        Per-slot list of resident **pod indices** in allocation order --
        the co-residency structure every batched interference/placement
        evaluation gathers from.
    """

    def __init__(self, pod_capacity: int = 64, node_capacity: int = 8):
        n = max(int(pod_capacity), 1)
        self.n_pods = 0
        self.work = np.full(n, np.nan)
        self.progress = np.zeros(n)
        self.speed = np.full(n, np.nan)
        self.updated_at = np.full(n, np.nan)
        self.running_wall = np.zeros(n)
        self.req_cpus = np.zeros(n, dtype=np.int64)
        self.req_mem = np.zeros(n)
        self.req_gpus = np.zeros(n, dtype=np.int64)
        self.status = np.zeros(n, dtype=np.int8)
        self.node_slot = np.full(n, -1, dtype=np.int32)
        self.finish_at = np.full(n, np.nan)
        self.remaining = np.zeros(n)
        self.pods: List["Pod"] = []
        self.pod_index: Dict[str, int] = {}

        m = max(int(node_capacity), 1)
        self.n_nodes = 0
        self.cap_cpus = np.zeros(m, dtype=np.int64)
        self.cap_mem = np.zeros(m)
        self.cap_gpus = np.zeros(m, dtype=np.int64)
        self.alloc_cpus = np.zeros(m, dtype=np.int64)
        self.alloc_mem = np.zeros(m)
        self.alloc_gpus = np.zeros(m, dtype=np.int64)
        self.node_alive = np.zeros(m, dtype=bool)
        self.residents: List[List[int]] = []
        self.nodes: List[Optional["Node"]] = []
        self.node_slot_by_name: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Pods
    # ------------------------------------------------------------------ #
    def _grow_pods(self, needed: int) -> None:
        size = len(self.work)
        if needed <= size:
            return
        new = max(needed, size * 2)
        grow_f = lambda a, fill: np.concatenate(  # noqa: E731 - local helper
            [a, np.full(new - size, fill, dtype=a.dtype)]
        )
        self.work = grow_f(self.work, np.nan)
        self.progress = grow_f(self.progress, 0.0)
        self.speed = grow_f(self.speed, np.nan)
        self.updated_at = grow_f(self.updated_at, np.nan)
        self.running_wall = grow_f(self.running_wall, 0.0)
        self.req_cpus = grow_f(self.req_cpus, 0)
        self.req_mem = grow_f(self.req_mem, 0.0)
        self.req_gpus = grow_f(self.req_gpus, 0)
        self.status = grow_f(self.status, 0)
        self.node_slot = grow_f(self.node_slot, -1)
        self.finish_at = grow_f(self.finish_at, np.nan)
        self.remaining = grow_f(self.remaining, 0.0)

    def adopt_pod(self, pod: "Pod") -> int:
        """Bind ``pod`` to this store, copying its current hot state in."""
        if pod.name in self.pod_index:
            raise ValueError(f"pod {pod.name!r} is already adopted by this state")
        index = self.n_pods
        self._grow_pods(index + 1)
        # Snapshot the facade's current (unbound) values before flipping it
        # to array-backed storage.
        work = pod.work_seconds
        speed = pod.speed
        updated = pod._progress_updated_at
        self.work[index] = np.nan if work is None else work
        self.progress[index] = pod.progress_seconds
        self.speed[index] = np.nan if speed is None else speed
        self.updated_at[index] = np.nan if updated is None else updated
        self.running_wall[index] = pod._running_wall_seconds
        self.req_cpus[index] = pod.request.cpus
        self.req_mem[index] = pod.request.memory_gb
        self.req_gpus[index] = pod.request.gpus
        self.status[index] = _STATUS_CODES[pod.phase.value]
        self.node_slot[index] = (
            self.node_slot_by_name.get(pod.node, -1) if pod.node else -1
        )
        self.finish_at[index] = np.nan
        self.remaining[index] = 0.0
        self.pods.append(pod)
        self.pod_index[pod.name] = index
        self.n_pods = index + 1
        pod._bind(self, index)
        return index

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def _grow_nodes(self, needed: int) -> None:
        size = len(self.cap_cpus)
        if needed <= size:
            return
        new = max(needed, size * 2)
        grow = lambda a, fill: np.concatenate(  # noqa: E731 - local helper
            [a, np.full(new - size, fill, dtype=a.dtype)]
        )
        self.cap_cpus = grow(self.cap_cpus, 0)
        self.cap_mem = grow(self.cap_mem, 0.0)
        self.cap_gpus = grow(self.cap_gpus, 0)
        self.alloc_cpus = grow(self.alloc_cpus, 0)
        self.alloc_mem = grow(self.alloc_mem, 0.0)
        self.alloc_gpus = grow(self.alloc_gpus, 0)
        self.node_alive = grow(self.node_alive, False)

    def adopt_node(self, node: "Node") -> int:
        """Bind ``node`` to this store, copying capacity and current totals."""
        if node.name in self.node_slot_by_name:
            raise ValueError(f"node {node.name!r} is already adopted by this state")
        slot = self.n_nodes
        self._grow_nodes(slot + 1)
        self.cap_cpus[slot] = node.cpus
        self.cap_mem[slot] = node.memory_gb
        self.cap_gpus[slot] = node.gpus
        self.alloc_cpus[slot] = node.allocated_cpus
        self.alloc_mem[slot] = node.allocated_memory_gb
        self.alloc_gpus[slot] = node.allocated_gpus
        self.node_alive[slot] = True
        # Allocations made before adoption (not the simulator's path, but
        # legal on the public Node API) have no adopted pods to index.
        self.residents.append(
            [self.pod_index[name] for name in node.allocations if name in self.pod_index]
        )
        self.nodes.append(node)
        self.node_slot_by_name[node.name] = slot
        self.n_nodes = slot + 1
        node._bind(self, slot)
        return slot

    def release_node(self, node: "Node") -> None:
        """Mark a drained node's slot dead (slots are never reused)."""
        slot = self.node_slot_by_name.pop(node.name, -1)
        if slot < 0:
            return
        self.node_alive[slot] = False
        self.residents[slot] = []
        self.nodes[slot] = None
        node._unbind()

    # ------------------------------------------------------------------ #
    # Allocation bookkeeping (called by bound Node facades)
    # ------------------------------------------------------------------ #
    def on_allocate(self, slot: int, pod_name: str, cpus: int, mem: float, gpus: int) -> None:
        self.alloc_cpus[slot] += cpus
        self.alloc_mem[slot] += mem
        self.alloc_gpus[slot] += gpus
        index = self.pod_index.get(pod_name)
        if index is not None:
            self.residents[slot].append(index)
            self.node_slot[index] = slot

    def on_release(self, slot: int, pod_name: str, cpus: int, mem: float, gpus: int) -> None:
        self.alloc_cpus[slot] -= cpus
        self.alloc_mem[slot] -= mem
        self.alloc_gpus[slot] -= gpus
        index = self.pod_index.get(pod_name)
        if index is not None:
            try:
                self.residents[slot].remove(index)
            except ValueError:  # pragma: no cover - defensive
                pass
            self.node_slot[index] = -1

    # ------------------------------------------------------------------ #
    def resident_requests(self, slot: int):
        """``(indices, cpus, mem, gpus)`` arrays for a node's residents."""
        idx = np.asarray(self.residents[slot], dtype=np.intp)
        return idx, self.req_cpus[idx], self.req_mem[idx], self.req_gpus[idx]

    def nbytes(self) -> int:
        """Total bytes held by the pod/node arrays (memory-gate accounting)."""
        arrays = (
            self.work, self.progress, self.speed, self.updated_at,
            self.running_wall, self.req_cpus, self.req_mem, self.req_gpus,
            self.status, self.node_slot, self.finish_at, self.remaining,
            self.cap_cpus, self.cap_mem,
            self.cap_gpus, self.alloc_cpus, self.alloc_mem, self.alloc_gpus,
            self.node_alive,
        )
        return int(sum(a.nbytes for a in arrays))
