"""Pod schedulers: the queue-discipline axis of scheduling.

A scheduler answers **which pod next** -- service order of the pending
queue (FIFO head-of-line blocking, backfill skip-ahead, priority classes
with preemption).  **Which node** is a separate, orthogonal axis answered
by a pluggable :class:`~repro.cluster.placement.PlacementPolicy`; every
scheduler composes with any placement via the ``placement=`` constructor
argument, and defaults to the policy that reproduces its pre-refactor
behaviour bit for bit (:class:`~repro.cluster.placement.FirstFit` for the
FIFO family, :class:`~repro.cluster.placement.BestFit` for
:class:`BestFitScheduler`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.cluster.node import Node
from repro.cluster.placement import (
    BestFit,
    FirstFit,
    PlacementContext,
    PlacementPolicy,
)
from repro.cluster.pod import Pod

__all__ = [
    "SchedulingDecision",
    "PreemptionDecision",
    "Scheduler",
    "FIFOScheduler",
    "BackfillScheduler",
    "BestFitScheduler",
    "PriorityScheduler",
]

#: Shared failure explanation (pinned by event-log tests).
_NO_CAPACITY = "no node has sufficient free capacity"


@dataclass(frozen=True)
class SchedulingDecision:
    """The outcome of trying to place one pod.

    Attributes
    ----------
    pod_name:
        The pod considered.
    node_name:
        The node chosen, or ``None`` when the pod could not be placed.
    reason:
        Human-readable explanation (used by the event log and by tests).
    """

    pod_name: str
    node_name: Optional[str]
    reason: str

    @property
    def placed(self) -> bool:
        return self.node_name is not None


@dataclass(frozen=True)
class PreemptionDecision:
    """A plan to make room for a pod by evicting lower-priority victims.

    Attributes
    ----------
    pod_name:
        The pod the evictions make room for.
    node_name:
        The node the victims run on (and the pod will be placed on).
    victims:
        Names of the running pods to evict, in eviction order.
    """

    pod_name: str
    node_name: str
    victims: Tuple[str, ...]


class Scheduler(abc.ABC):
    """Base class: a queue discipline composed with a placement policy.

    Parameters
    ----------
    placement:
        The node-choice policy (see :mod:`repro.cluster.placement`).
        Defaults to the scheduler's :meth:`default_placement` --
        first-fit unless a subclass says otherwise -- which keeps every
        scheduler's historical behaviour intact.
    """

    #: Queue discipline: when true, a pending pod that cannot be placed blocks
    #: every pod behind it until capacity frees up (strict FIFO service
    #: order).  When false the simulator may skip ahead and place later pods
    #: that do fit ("backfill"), which improves utilisation but can starve a
    #: large request behind a stream of small ones.
    head_of_line_blocking: bool = False

    #: Whether :meth:`select_victims` may propose evicting running pods to
    #: make room for a blocked pod.  Only the :class:`PriorityScheduler`
    #: enables this.
    supports_preemption: bool = False

    def __init__(self, placement: Optional[PlacementPolicy] = None):
        self.placement = placement if placement is not None else self.default_placement()

    @classmethod
    def default_placement(cls) -> PlacementPolicy:
        """The placement policy used when none is injected."""
        return FirstFit()

    def select_node(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> SchedulingDecision:
        """Return the placement decision for ``pod`` given the current ``nodes``.

        ``context`` carries co-residency and the active interference model
        for interference-aware placement policies; capacity-only policies
        ignore it (and callers may omit it).
        """
        node = self.placement.select(pod, nodes, context)
        if node is None:
            return SchedulingDecision(pod.name, None, _NO_CAPACITY)
        return SchedulingDecision(pod.name, node.name, self.placement.reason)

    def schedule(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        context: Optional[PlacementContext] = None,
    ) -> SchedulingDecision:
        """Select a node and, if one fits, perform the allocation."""
        decision = self.select_node(pod, nodes, context)
        if decision.placed:
            node = next(n for n in nodes if n.name == decision.node_name)
            node.allocate(pod.name, pod.request)
        return decision

    def sort_pending(self, pods: Sequence[Pod]) -> List[Pod]:
        """Service order of the pending queue (submission order by default).

        The simulator keeps the queue in arrival order; schedulers that
        implement priority classes reorder it here.  The sort must be stable
        so pods within one class keep first-in-first-out order.
        """
        return list(pods)

    def select_victims(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        running: Mapping[str, Sequence[Pod]],
    ) -> Optional[PreemptionDecision]:
        """Propose running pods to evict so ``pod`` fits (``None`` = don't).

        ``running`` maps node name to the pods currently executing there.
        Only consulted when :attr:`supports_preemption` is true and
        :meth:`select_node` found no room.
        """
        return None


class FIFOScheduler(Scheduler):
    """Strict first-in-first-out service order (first-fit placement by default).

    A pod that does not fit blocks everything queued behind it until
    capacity frees up -- first *in*, first *out*, even when a later, smaller
    pod would fit right now.  Use :class:`BackfillScheduler` for the
    skip-ahead variant that trades service-order fairness for utilisation.

    The default first-fit placement mirrors a naive scheduler: BanditWare
    controls the *resource request*, not the node choice, so the baseline
    only needs to find capacity.  Pass ``placement=`` to compose the FIFO
    discipline with any other node-choice policy.
    """

    head_of_line_blocking = True


class BackfillScheduler(FIFOScheduler):
    """FIFO service order that skips over pods that do not currently fit.

    Same placement as :class:`FIFOScheduler`, but a pending pod that cannot
    be placed does not block the pods behind it: any later pod that fits is
    started immediately ("backfilling").  This keeps the cluster busy at the
    cost of fairness -- a large request can be starved indefinitely by a
    steady stream of small ones, which is exactly the regression the FIFO
    starvation test pins.
    """

    head_of_line_blocking = False


class BestFitScheduler(Scheduler):
    """Backfill service order with best-fit placement by default.

    Kept as a named class for backwards compatibility: it is exactly
    ``Scheduler(placement=BestFit())``.  Best-fit keeps large contiguous
    capacity free for large requests, which reduces head-of-line blocking
    when workloads with mixed resource requests share the cluster.
    Tie-breaking between equal-fit nodes is deterministic on
    ``(leftover, node.name)`` -- see :class:`~repro.cluster.placement.BestFit`.
    """

    @classmethod
    def default_placement(cls) -> PlacementPolicy:
        return BestFit()


class PriorityScheduler(FIFOScheduler):
    """Priority classes with optional preemption (first-fit placement by default).

    The pending queue is served highest priority class first; within one
    class, strict first-in-first-out order is preserved (the sort is stable
    on submission order).  The head-of-line discipline is inherited from
    :class:`FIFOScheduler`: because the queue is priority-sorted, a blocked
    pod only ever blocks pods of its own or lower classes -- a higher-class
    pod is always ahead of it -- so no class can starve a class above it.

    With ``preemption`` enabled (the default), a blocked pod may evict
    strictly-lower-priority *running* pods to make room.  Victims are chosen
    on a single node, lowest priority first and most-recently-started first
    within a class (least work discarded -- evictions are checkpoint-free, so
    the victim's partial execution is wasted and it requeues from scratch).
    Among nodes that can be freed, the one needing the fewest evictions wins,
    ties broken toward the most recently started victims (least total run
    time wasted).
    """

    def __init__(
        self,
        preemption: bool = True,
        placement: Optional[PlacementPolicy] = None,
    ):
        super().__init__(placement=placement)
        self.supports_preemption = bool(preemption)

    def sort_pending(self, pods: Sequence[Pod]) -> List[Pod]:
        return sorted(
            pods, key=lambda p: -p.priority
        )  # stable: arrival order within a class

    def select_victims(
        self,
        pod: Pod,
        nodes: Sequence[Node],
        running: Mapping[str, Sequence[Pod]],
    ) -> Optional[PreemptionDecision]:
        if not self.supports_preemption:
            return None
        best_plan: Optional[Tuple[int, float, str, Tuple[str, ...]]] = None
        for node in nodes:
            candidates = [
                victim
                for victim in running.get(node.name, ())
                if victim.priority < pod.priority
            ]
            # Evict the cheapest work first: lowest class, then the pod that
            # has run for the shortest time (least wasted execution).
            candidates.sort(
                key=lambda v: (v.priority, -(v.start_time or 0.0), v.name)
            )
            free_cpus = node.free_cpus
            free_mem = node.free_memory_gb
            free_gpus = node.free_gpus
            victims: List[Pod] = []
            for victim in candidates:
                if (
                    free_cpus >= pod.request.cpus
                    and free_mem >= pod.request.memory_gb
                    and free_gpus >= pod.request.gpus
                ):
                    break
                victims.append(victim)
                free_cpus += victim.request.cpus
                free_mem += victim.request.memory_gb
                free_gpus += victim.request.gpus
            if (
                free_cpus < pod.request.cpus
                or free_mem < pod.request.memory_gb
                or free_gpus < pod.request.gpus
            ):
                continue  # even evicting every eligible victim is not enough
            if not victims:
                continue  # the pod fits without evictions; not a preemption case
            started = -sum(v.start_time or 0.0 for v in victims)
            plan = (len(victims), started, node.name, tuple(v.name for v in victims))
            if best_plan is None or plan < best_plan:
                best_plan = plan
        if best_plan is None:
            return None
        _, _, node_name, victims = best_plan
        return PreemptionDecision(pod_name=pod.name, node_name=node_name, victims=victims)
