"""Pod-to-node schedulers."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.node import Node
from repro.cluster.pod import Pod

__all__ = ["SchedulingDecision", "FIFOScheduler", "BackfillScheduler", "BestFitScheduler"]


@dataclass(frozen=True)
class SchedulingDecision:
    """The outcome of trying to place one pod.

    Attributes
    ----------
    pod_name:
        The pod considered.
    node_name:
        The node chosen, or ``None`` when the pod could not be placed.
    reason:
        Human-readable explanation (used by the event log and by tests).
    """

    pod_name: str
    node_name: Optional[str]
    reason: str

    @property
    def placed(self) -> bool:
        return self.node_name is not None


class Scheduler(abc.ABC):
    """Base class: pick a node (or none) for a pending pod."""

    #: Queue discipline: when true, a pending pod that cannot be placed blocks
    #: every pod behind it until capacity frees up (strict FIFO service
    #: order).  When false the simulator may skip ahead and place later pods
    #: that do fit ("backfill"), which improves utilisation but can starve a
    #: large request behind a stream of small ones.
    head_of_line_blocking: bool = False

    @abc.abstractmethod
    def select_node(self, pod: Pod, nodes: Sequence[Node]) -> SchedulingDecision:
        """Return the placement decision for ``pod`` given the current ``nodes``."""

    def schedule(self, pod: Pod, nodes: Sequence[Node]) -> SchedulingDecision:
        """Select a node and, if one fits, perform the allocation."""
        decision = self.select_node(pod, nodes)
        if decision.placed:
            node = next(n for n in nodes if n.name == decision.node_name)
            node.allocate(pod.name, pod.request)
        return decision


class FIFOScheduler(Scheduler):
    """First-fit placement with strict first-in-first-out service order.

    Pods are placed on the first node (in cluster order) with room, and a
    pod that does not fit blocks everything queued behind it until capacity
    frees up -- first *in*, first *out*, even when a later, smaller pod would
    fit right now.  Use :class:`BackfillScheduler` for the skip-ahead variant
    that trades service-order fairness for utilisation.

    This mirrors a naive first-fit placement and is the default used by the
    cluster simulator: BanditWare controls the *resource request*, not the
    node choice, so the scheduler's only job is to find capacity.
    """

    head_of_line_blocking = True

    def select_node(self, pod: Pod, nodes: Sequence[Node]) -> SchedulingDecision:
        for node in nodes:
            if node.fits(pod.request):
                return SchedulingDecision(pod.name, node.name, "first node with sufficient capacity")
        return SchedulingDecision(pod.name, None, "no node has sufficient free capacity")


class BackfillScheduler(FIFOScheduler):
    """First-fit placement that skips over pods that do not currently fit.

    Same node choice as :class:`FIFOScheduler`, but a pending pod that cannot
    be placed does not block the pods behind it: any later pod that fits is
    started immediately ("backfilling").  This keeps the cluster busy at the
    cost of fairness -- a large request can be starved indefinitely by a
    steady stream of small ones, which is exactly the regression the FIFO
    starvation test pins.
    """

    head_of_line_blocking = False


class BestFitScheduler(Scheduler):
    """Place the pod on the feasible node that leaves the least spare CPU.

    A classic best-fit bin-packing heuristic: it keeps large contiguous
    capacity free for large requests, which reduces head-of-line blocking in
    the simulator's queue when workloads with mixed resource requests share
    the cluster.
    """

    def select_node(self, pod: Pod, nodes: Sequence[Node]) -> SchedulingDecision:
        feasible: List[Node] = [n for n in nodes if n.fits(pod.request)]
        if not feasible:
            return SchedulingDecision(pod.name, None, "no node has sufficient free capacity")
        best = min(
            feasible,
            key=lambda n: (
                n.free_cpus - pod.request.cpus,
                n.free_memory_gb - pod.request.memory_gb,
                n.name,
            ),
        )
        return SchedulingDecision(pod.name, best.name, "best-fit on remaining CPU")
