"""The cluster simulator: submit a workload on chosen hardware, observe runtime.

:class:`ClusterSimulator` is the substrate BanditWare interacts with in this
reproduction.  It models a small Kubernetes cluster (a list of
:class:`~repro.cluster.node.Node`), uses a scheduler to place pods, advances a
discrete-event clock, and reports each completed run's observed runtime --
drawn from the workload model's noisy ground truth -- back to the caller.

Two modes of use are supported:

* **Synchronous** (:meth:`run_workload`): submit one workload on one hardware
  configuration and immediately get its completed run.  This is what the
  online recommendation loop uses (the paper schedules one workflow per
  round).
* **Batched / queued** (:meth:`submit` + :meth:`run_until_idle`): submit many
  pods and let the event engine interleave them, exposing queueing delay when
  the cluster is saturated.  Examples use this to show resource contention --
  one of the misallocation costs the paper's introduction motivates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.events import EventQueue
from repro.cluster.node import InsufficientCapacityError, Node
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.scheduler import FIFOScheduler, Scheduler
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.logging import EventLog, NullLog
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.base import RunRecord, WorkloadModel

__all__ = ["CompletedRun", "ClusterSimulator"]


@dataclass(frozen=True)
class CompletedRun:
    """The observable outcome of one workload execution.

    Attributes
    ----------
    record:
        The run record (features, hardware, observed runtime) in the format
        the data pipeline and the bandit consume.
    queue_seconds:
        Time the pod spent waiting for capacity before starting.
    node:
        Node the pod executed on.
    pod_name:
        Name of the pod that executed the run (queued mode only; ``None`` for
        synchronous :meth:`ClusterSimulator.run_workload` runs, which never
        materialise a pod).  Callers driving the queued path use this to map
        completions back to their own bookkeeping (e.g. workflow tickets).
    finish_time:
        Simulation time the run completed.  Synchronous runs do not advance
        the clock, so they report whatever the clock read when they were
        executed; use ``pod_name is None`` to tell the two modes apart.
    """

    record: RunRecord
    queue_seconds: float
    node: str
    pod_name: Optional[str] = None
    finish_time: float = 0.0


def _default_nodes() -> List[Node]:
    """A small heterogeneous cluster roughly shaped like an NDP slice."""
    return [
        Node("node-a", cpus=16, memory_gb=64),
        Node("node-b", cpus=16, memory_gb=64),
        Node("node-c", cpus=32, memory_gb=128),
    ]


class ClusterSimulator:
    """Simulate workload execution on a small Kubernetes-like cluster.

    Parameters
    ----------
    workload:
        The application model providing ground-truth runtimes.
    catalog:
        Hardware configurations requests may use.
    nodes:
        Cluster nodes; defaults to a 3-node, 64-core cluster that can fit any
        single request from the paper's catalogs.
    scheduler:
        Placement policy; defaults to first-fit FIFO.
    seed:
        Seed for runtime-noise draws.
    log:
        Optional event log recording submissions, placements and completions.
    """

    def __init__(
        self,
        workload: WorkloadModel,
        catalog: HardwareCatalog,
        nodes: Optional[Sequence[Node]] = None,
        scheduler: Optional[Scheduler] = None,
        seed: SeedLike = None,
        log: Optional[EventLog] = None,
    ):
        self.workload = workload
        self.catalog = catalog
        self.nodes: List[Node] = list(nodes) if nodes is not None else _default_nodes()
        if not self.nodes:
            raise ValueError("the cluster requires at least one node")
        self.scheduler = scheduler or FIFOScheduler()
        self._rng = as_generator(seed)
        self.log = log if log is not None else NullLog()
        self._events = EventQueue()
        self._pending: List[Pod] = []
        self._pods: Dict[str, Pod] = {}
        self._pod_workloads: Dict[str, WorkloadModel] = {}
        # Feasibility verdicts per hardware name.  Node *total* capacity is
        # fixed at construction, so the probe answer never changes; caching
        # keeps the per-submit check at dict-lookup cost.
        self._feasibility: Dict[str, Optional[str]] = {}
        self._completed: List[CompletedRun] = []
        self._pod_counter = itertools.count(1)
        self._run_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._events.now

    @property
    def completed_runs(self) -> List[CompletedRun]:
        """All completed runs in completion order."""
        return list(self._completed)

    @property
    def pods(self) -> Dict[str, Pod]:
        """All pods ever submitted, keyed by name."""
        return dict(self._pods)

    def _resolve_hardware(self, hardware: HardwareConfig | str) -> HardwareConfig:
        if isinstance(hardware, HardwareConfig):
            if hardware.name not in self.catalog:
                raise KeyError(
                    f"hardware {hardware.name!r} is not in the simulator's catalog "
                    f"({self.catalog.names})"
                )
            return self.catalog[hardware.name]
        return self.catalog[hardware]

    def feasible_node(self, request: HardwareConfig) -> Optional[Node]:
        """The node the scheduler would place ``request`` on in an empty cluster.

        Feasibility is judged against each node's *total* capacity (a run
        executed "alone"), not its current free capacity, so the answer is
        stable regardless of what is queued (and is cached per hardware
        name).  Returns ``None`` when no node can ever fit the request.
        """
        if request.name not in self._feasibility:
            pristine = [n.clone() for n in self.nodes]
            probe = Pod(name="feasibility-probe", request=request)
            decision = self.scheduler.select_node(probe, pristine)
            self._feasibility[request.name] = decision.node_name
        node_name = self._feasibility[request.name]
        if node_name is None:
            return None
        return next(n for n in self.nodes if n.name == node_name)

    # ------------------------------------------------------------------ #
    # Synchronous single-run interface (what the bandit loop uses)
    # ------------------------------------------------------------------ #
    def run_workload(
        self,
        features: Dict[str, float],
        hardware: HardwareConfig | str,
        workload: Optional[WorkloadModel] = None,
    ) -> CompletedRun:
        """Execute one workflow on ``hardware`` and return its completed run.

        The run is executed "alone": it does not contend with queued pods, so
        the observed runtime reflects only the workload model's ground truth
        plus noise, matching the per-run runtimes in the paper's datasets.
        "Alone" still requires capacity to exist: the request must fit some
        node's total capacity, and the reported node is the one the scheduler
        would pick in an empty cluster -- the same feasibility rule the queued
        path enforces, so a request that succeeds here cannot deadlock there.

        Raises
        ------
        InsufficientCapacityError
            If the request exceeds every node's total capacity.
        """
        config = self._resolve_hardware(hardware)
        workload = workload if workload is not None else self.workload
        node = self.feasible_node(config)
        if node is None:
            raise InsufficientCapacityError(
                f"request {config.as_tuple()} exceeds every node's total capacity; "
                f"nodes: {[(n.name, n.cpus, n.memory_gb) for n in self.nodes]}"
            )
        runtime = workload.observed_runtime(features, config, self._rng)
        record = RunRecord(
            run_id=f"{workload.name}-run-{next(self._run_counter):06d}",
            application=workload.name,
            hardware=config.name,
            runtime_seconds=runtime,
            features=dict(features),
        )
        run = CompletedRun(
            record=record, queue_seconds=0.0, node=node.name, finish_time=self.now
        )
        self._completed.append(run)
        self.log.record(
            "cluster",
            "run_completed",
            time=self.now,
            run_id=record.run_id,
            hardware=config.name,
            runtime=runtime,
        )
        return run

    # ------------------------------------------------------------------ #
    # Queued interface (event-driven, exposes contention)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        features: Dict[str, float],
        hardware: HardwareConfig | str,
        at_time: Optional[float] = None,
        workload: Optional[WorkloadModel] = None,
    ) -> Pod:
        """Submit a pod requesting ``hardware`` for a workflow with ``features``.

        ``workload`` selects which application model provides the pod's
        ground-truth runtime; it defaults to the simulator's own workload.
        Passing it per pod lets multiple tenants (applications) share one
        cluster, which is what the contention-aware evaluation drives.

        Raises
        ------
        InsufficientCapacityError
            If the request exceeds every node's *total* capacity (same rule
            as :meth:`run_workload`).  Under the FIFO scheduler's
            head-of-line blocking an infeasible pod would silently wedge
            every pod behind it until the event budget drains, so the two
            modes fail fast and consistently at the point of error instead.
        """
        config = self._resolve_hardware(hardware)
        if self.feasible_node(config) is None:
            raise InsufficientCapacityError(
                f"request {config.as_tuple()} exceeds every node's total capacity "
                "and can never be scheduled; "
                f"nodes: {[(n.name, n.cpus, n.memory_gb) for n in self.nodes]}"
            )
        workload = workload if workload is not None else self.workload
        name = f"pod-{next(self._pod_counter):06d}"
        pod = Pod(
            name=name,
            request=config,
            features=dict(features),
            application=workload.name,
        )
        submit_time = self.now if at_time is None else float(at_time)
        self._events.push(submit_time, "pod_submitted", pod_name=name)
        self._pods[name] = pod
        self._pod_workloads[name] = workload
        self.log.record("cluster", "pod_submitted", time=submit_time, pod=name, hardware=config.name)
        return pod

    def _try_schedule_pending(self) -> None:
        still_pending: List[Pod] = []
        blocked = False
        for i, pod in enumerate(self._pending):
            if blocked:
                still_pending.extend(self._pending[i:])
                break
            decision = self.scheduler.schedule(pod, self.nodes)
            if decision.placed:
                pod.mark_running(self.now, decision.node_name)
                workload = self._pod_workloads.get(pod.name, self.workload)
                runtime = workload.observed_runtime(pod.features, pod.request, self._rng)
                pod.metadata["planned_runtime"] = runtime
                self._events.push_in(runtime, "pod_finished", pod_name=pod.name)
                self.log.record(
                    "scheduler",
                    "pod_scheduled",
                    time=self.now,
                    pod=pod.name,
                    node=decision.node_name,
                    reason=decision.reason,
                )
            else:
                still_pending.append(pod)
                # Strict FIFO service order: an unplaceable pod at the head of
                # the queue blocks everything behind it, so a large request
                # cannot be starved by a stream of small skip-ahead pods.
                if self.scheduler.head_of_line_blocking:
                    blocked = True
        self._pending = still_pending

    def _handle_event(self, event) -> None:
        if event.kind == "pod_submitted":
            pod = self._pods[event.payload["pod_name"]]
            pod.mark_submitted(event.time)
            self._pending.append(pod)
            self._try_schedule_pending()
        elif event.kind == "pod_finished":
            pod = self._pods[event.payload["pod_name"]]
            node = next(n for n in self.nodes if n.name == pod.node)
            node.release(pod.name)
            pod.mark_finished(event.time, succeeded=True)
            workload = self._pod_workloads.get(pod.name, self.workload)
            # Report the planned (drawn) runtime, not finish - start: the
            # subtraction loses low-order bits once the clock is large, and
            # observations must match the synchronous path bit-for-bit.
            runtime = float(pod.metadata.get("planned_runtime", pod.runtime_seconds or 0.0))
            record = RunRecord(
                run_id=f"{workload.name}-run-{next(self._run_counter):06d}",
                application=workload.name,
                hardware=pod.request.name,
                runtime_seconds=runtime,
                features=dict(pod.features),
            )
            self._completed.append(
                CompletedRun(
                    record=record,
                    queue_seconds=float(pod.queue_seconds or 0.0),
                    node=pod.node or "",
                    pod_name=pod.name,
                    finish_time=float(event.time),
                )
            )
            self.log.record(
                "cluster",
                "pod_finished",
                time=event.time,
                pod=pod.name,
                runtime=pod.runtime_seconds,
            )
            self._try_schedule_pending()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {event.kind!r}")

    def run_until_idle(self, max_events: int = 1_000_000) -> List[CompletedRun]:
        """Process events until no pods remain pending or running.

        Returns the runs completed during this call (in completion order).
        """
        before = len(self._completed)
        processed = 0
        while self._events and processed < max_events:
            self._handle_event(self._events.pop())
            processed += 1
        if self._events:
            raise RuntimeError(f"event budget of {max_events} exhausted with events remaining")
        if self._pending:
            # Defensive: submit() rejects infeasible requests up front, so
            # this can only trigger if capacity was mutated after admission.
            infeasible = [p.name for p in self._pending if self.feasible_node(p.request) is None]
            blocked = [p.name for p in self._pending if p.name not in set(infeasible)]
            message = (
                f"pods {infeasible} can never be scheduled: "
                "requests exceed every node's capacity"
                if infeasible
                else f"pods {blocked} are pending with no events left to free capacity"
            )
            if infeasible and blocked:
                message += f"; pods {blocked} are blocked behind them in the FIFO queue"
            raise InsufficientCapacityError(message)
        return self._completed[before:]

    def run_until(self, time: float) -> List[CompletedRun]:
        """Process all events up to and including ``time``, then stop.

        The simulation clock advances exactly to ``time`` even when no event
        falls in the window (:meth:`EventQueue.drain` semantics), so callers
        interleaving external arrivals with the event engine can step the
        clock deterministically.  Returns the runs completed during this call
        in completion order.
        """
        before = len(self._completed)
        self._events.drain(self._handle_event, until=float(time))
        return self._completed[before:]

    def peek_next_event_time(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` when the engine is idle."""
        return self._events.peek_time()

    @property
    def has_work(self) -> bool:
        """Whether any events remain to process (pods submitted, running or queued)."""
        return bool(self._events)

    # ------------------------------------------------------------------ #
    def utilisation(self) -> Dict[str, Dict[str, float]]:
        """Per-node utilisation snapshot."""
        return {node.name: node.utilisation() for node in self.nodes}
