"""The cluster simulator: submit a workload on chosen hardware, observe runtime.

:class:`ClusterSimulator` is the substrate BanditWare interacts with in this
reproduction.  It models a small Kubernetes cluster (a list of
:class:`~repro.cluster.node.Node`), uses a scheduler to place pods, advances a
discrete-event clock, and reports each completed run's observed runtime --
drawn from the workload model's noisy ground truth -- back to the caller.

Two modes of use are supported:

* **Synchronous** (:meth:`run_workload`): submit one workload on one hardware
  configuration and immediately get its completed run.  This is what the
  online recommendation loop uses (the paper schedules one workflow per
  round).
* **Batched / queued** (:meth:`submit` + :meth:`run_until_idle`): submit many
  pods and let the event engine interleave them, exposing queueing delay when
  the cluster is saturated.  Examples use this to show resource contention --
  one of the misallocation costs the paper's introduction motivates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.autoscaler import AutoscalerState, AutoscalingNodePool, ScaleEvent
from repro.cluster.events import (
    NODE_DRAIN_CHECK,
    NODE_NEXT_FINISH,
    NODE_PROVISIONED,
    POD_SUBMITTED,
    Event,
    EventQueue,
)
from repro.cluster.interference import (
    InterferenceModel,
    NoInterference,
    uses_batched_speeds,
)
from repro.cluster.node import InsufficientCapacityError, Node
from repro.cluster.placement import PlacementContext
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.scheduler import FIFOScheduler, Scheduler
from repro.cluster.state import ClusterState, KernelProfile
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.logging import EventLog, NullLog
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.base import RunRecord, WorkloadModel

__all__ = ["CompletedRun", "ClusterSimulator"]


@dataclass(frozen=True)
class CompletedRun:
    """The observable outcome of one workload execution.

    Attributes
    ----------
    record:
        The run record (features, hardware, observed runtime) in the format
        the data pipeline and the bandit consume.
    queue_seconds:
        Time the pod spent waiting for capacity before starting.
    node:
        Node the pod executed on.
    pod_name:
        Name of the pod that executed the run (queued mode only; ``None`` for
        synchronous :meth:`ClusterSimulator.run_workload` runs, which never
        materialise a pod).  Callers driving the queued path use this to map
        completions back to their own bookkeeping (e.g. workflow tickets).
    finish_time:
        Simulation time the run completed.  Synchronous runs do not advance
        the clock, so they report whatever the clock read when they were
        executed; use ``pod_name is None`` to tell the two modes apart.
    preemptions:
        How many times the pod was evicted and requeued before completing.
    wasted_runtime_seconds:
        Run time discarded by those evictions (checkpoint-free restarts).
    planned_runtime_seconds:
        The run's contention-free ground-truth runtime (the noisy draw made
        at submission).  The record's ``runtime_seconds`` is what the
        platform *observed* -- equal to the plan without interference,
        inflated when co-residents slowed the pod down.
    """

    record: RunRecord
    queue_seconds: float
    node: str
    pod_name: Optional[str] = None
    finish_time: float = 0.0
    preemptions: int = 0
    wasted_runtime_seconds: float = 0.0
    planned_runtime_seconds: Optional[float] = None

    @property
    def slowdown(self) -> float:
        """Observed over planned runtime (1.0 exactly without interference)."""
        if not self.planned_runtime_seconds:
            return 1.0
        return self.record.runtime_seconds / self.planned_runtime_seconds


def _default_nodes() -> List[Node]:
    """A small heterogeneous cluster roughly shaped like an NDP slice."""
    return [
        Node("node-a", cpus=16, memory_gb=64),
        Node("node-b", cpus=16, memory_gb=64),
        Node("node-c", cpus=32, memory_gb=128),
    ]


class ClusterSimulator:
    """Simulate workload execution on a small Kubernetes-like cluster.

    Parameters
    ----------
    workload:
        The application model providing ground-truth runtimes.
    catalog:
        Hardware configurations requests may use.
    nodes:
        Cluster nodes; defaults to a 3-node, 64-core cluster that can fit any
        single request from the paper's catalogs.
    scheduler:
        Queue discipline composed with a placement policy; defaults to
        FIFO service order with first-fit placement.  Ordering ("which pod
        next") and placement ("which node") are independent axes: pass e.g.
        ``FIFOScheduler(placement=LeastSlowdown())`` to combine strict FIFO
        with interference-aware node choice.
    seed:
        Seed for runtime-noise draws.
    log:
        Optional event log recording submissions, placements and completions.
    autoscaler:
        Optional :class:`~repro.cluster.autoscaler.AutoscalingNodePool`
        description.  When given, pods that cannot be placed trigger
        scale-up requests (new nodes join after the pool's provisioning
        delay, via events in the main queue) and idle pool nodes are drained.
    interference:
        How co-located pods perturb each other's progress rate (see
        :mod:`repro.cluster.interference`).  Defaults to
        :class:`~repro.cluster.interference.NoInterference`, under which the
        progress-based engine is bit-identical to fixed finish times.

    Execution is **progress-based**: each pod carries ``work_seconds``
    (drawn once at submission) and advances at the rate the interference
    model reports for its current co-residency.  Every topology change --
    pod start, finish, preemption, autoscale provision or drain -- lazily
    re-integrates affected pods' progress at the old rate and rewrites
    their tentative finish times in the kernel's ``finish_at`` array at the
    new one.  Completions are driven by a **per-node finish frontier**: each
    node keeps exactly one live ``node_next_finish`` event at the minimum of
    its residents' tentative finishes, re-pushed (with the superseded event
    cancelled in O(1)) only when that minimum moves, so heap traffic is
    O(completions + topology changes) instead of O(pods x topology
    changes).  When the event fires, the argmin over residents names the
    finishing pod.
    """

    def __init__(
        self,
        workload: WorkloadModel,
        catalog: HardwareCatalog,
        nodes: Optional[Sequence[Node]] = None,
        scheduler: Optional[Scheduler] = None,
        seed: SeedLike = None,
        log: Optional[EventLog] = None,
        autoscaler: Optional[AutoscalingNodePool] = None,
        interference: Optional[InterferenceModel] = None,
    ):
        self.workload = workload
        self.catalog = catalog
        self.nodes: List[Node] = list(nodes) if nodes is not None else _default_nodes()
        if not self.nodes:
            raise ValueError("the cluster requires at least one node")
        self.scheduler = scheduler or FIFOScheduler()
        self.interference = interference if interference is not None else NoInterference()
        self._rng = as_generator(seed)
        self.log = log if log is not None else NullLog()
        self._events = EventQueue()
        self._pending: List[Pod] = []
        self._pods: Dict[str, Pod] = {}
        self._pod_workloads: Dict[str, WorkloadModel] = {}
        # The array kernel: flat SoA storage for pod/node runtime state.
        # Every node is adopted now; every pod is adopted at submission.
        self._state = ClusterState(node_capacity=max(len(self.nodes), 4))
        for node in self.nodes:
            self._state.adopt_node(node)
        # Models whose node_speeds override is MRO-consistent with speed()
        # get batched dispatch; anything else keeps the per-pod scalar call
        # pattern via InterferenceModel.node_speeds.
        self._batched_interference = uses_batched_speeds(self.interference)
        # Incrementally maintained co-residency: node name -> running pods in
        # allocation order, updated on start/finish/preempt/provision/drain
        # instead of being rebuilt from the allocation dicts on every
        # schedule pass.
        self._running: Dict[str, List[Pod]] = {n.name: [] for n in self.nodes}
        # The finish frontier: node slot -> the node's single live
        # ``node_next_finish`` event (absent when the node has no residents).
        # Entries are popped when the event fires and cancelled + replaced
        # when a topology change moves the node's earliest tentative finish.
        self._frontier: Dict[int, Event] = {}
        self._context_cache: Optional[PlacementContext] = None
        self._profile: Optional[KernelProfile] = None
        # Queue-counter values already folded into the profile (delta sync,
        # so per-run profiles can be merged across simulators).
        self._synced_events = (0, 0, 0)
        # Busy-time integrals per node ([cpu, memory, gpu] resource-seconds)
        # and each node's activation time, for lifetime-prorated utilisation.
        self._busy_seconds: Dict[str, List[float]] = {}
        self._busy_since: Dict[str, float] = {n.name: 0.0 for n in self.nodes}
        self._active_since: Dict[str, float] = {n.name: 0.0 for n in self.nodes}
        self._busy_clock = 0.0  # clock value the integrals are current at
        # Feasibility verdicts per hardware name.  They are judged against
        # node *total* capacity, so the answers only change when the node set
        # itself changes -- which only the autoscaler does, and every
        # topology change clears this cache.
        self._feasibility: Dict[str, Optional[str]] = {}
        self._completed: List[CompletedRun] = []
        self._pod_counter = itertools.count(1)
        self._run_counter = itertools.count(1)
        self._autoscaler = AutoscalerState(autoscaler) if autoscaler is not None else None

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._events.now

    @property
    def state(self) -> ClusterState:
        """The flat array kernel backing this simulator's pods and nodes.

        Read-only introspection for tests and benchmarks; external code
        must mutate pods/nodes through their facades, never the arrays.
        """
        return self._state

    def enable_profiling(self) -> KernelProfile:
        """Switch on hot-path wall-clock accounting and return the profile.

        Used by ``run-contention --profile``: the returned
        :class:`~repro.cluster.state.KernelProfile` accumulates time spent
        in progress re-integration, schedule passes and placement decisions
        for the rest of the simulator's life.
        """
        if self._profile is None:
            self._profile = KernelProfile()
        return self._profile

    @property
    def completed_runs(self) -> List[CompletedRun]:
        """All completed runs in completion order."""
        return list(self._completed)

    @property
    def pods(self) -> Dict[str, Pod]:
        """All pods ever submitted, keyed by name."""
        return dict(self._pods)

    def _resolve_hardware(self, hardware: HardwareConfig | str) -> HardwareConfig:
        if isinstance(hardware, HardwareConfig):
            if hardware.name not in self.catalog:
                raise KeyError(
                    f"hardware {hardware.name!r} is not in the simulator's catalog "
                    f"({self.catalog.names})"
                )
            return self.catalog[hardware.name]
        return self.catalog[hardware]

    def feasible_node(self, request: HardwareConfig) -> Optional[Node]:
        """The node the scheduler would place ``request`` on in an empty cluster.

        Feasibility is judged against each node's *total* capacity (a run
        executed "alone"), not its current free capacity, so the answer is
        stable regardless of what is queued (and is cached per hardware
        name; autoscaler topology changes clear the cache).  Returns ``None``
        when no current node can ever fit the request.
        """
        if request.name not in self._feasibility:
            pristine = [n.clone() for n in self.nodes]
            probe = Pod(name="feasibility-probe", request=request)
            # Probes run against pristine (empty) clones, so the placement
            # context carries no co-residents: every policy -- including the
            # interference-aware ones -- answers deterministically from
            # total capacity, which is what makes the per-hardware cache
            # valid until the node set itself changes.
            context = PlacementContext(interference=self.interference, running={})
            decision = self.scheduler.select_node(probe, pristine, context)
            self._feasibility[request.name] = decision.node_name
        node_name = self._feasibility[request.name]
        if node_name is None:
            return None
        return next(n for n in self.nodes if n.name == node_name)

    def request_feasible(self, request: HardwareConfig) -> bool:
        """Whether ``request`` can ever be scheduled.

        True when some current node's total capacity fits it, or when the
        autoscaler could provision a pool node that does.
        """
        if self.feasible_node(request) is not None:
            return True
        return self._autoscaler is not None and self._autoscaler.pool.fits_template(
            request.cpus, request.memory_gb, request.gpus
        )

    # ------------------------------------------------------------------ #
    # Synchronous single-run interface (what the bandit loop uses)
    # ------------------------------------------------------------------ #
    def run_workload(
        self,
        features: Dict[str, float],
        hardware: HardwareConfig | str,
        workload: Optional[WorkloadModel] = None,
    ) -> CompletedRun:
        """Execute one workflow on ``hardware`` and return its completed run.

        The run is executed "alone": it does not contend with queued pods, so
        the observed runtime reflects only the workload model's ground truth
        plus noise, matching the per-run runtimes in the paper's datasets.
        "Alone" still requires capacity to exist: the request must fit some
        node's total capacity, and the reported node is the one the scheduler
        would pick in an empty cluster -- the same feasibility rule the queued
        path enforces, so a request that succeeds here cannot deadlock there.

        Raises
        ------
        InsufficientCapacityError
            If the request exceeds every node's total capacity.
        """
        config = self._resolve_hardware(hardware)
        workload = workload if workload is not None else self.workload
        node = self.feasible_node(config)
        if node is None:
            raise InsufficientCapacityError(
                f"request {config.as_tuple()} exceeds every node's total capacity; "
                f"nodes: {[(n.name, n.cpus, n.memory_gb) for n in self.nodes]}"
            )
        runtime = workload.observed_runtime(features, config, self._rng)
        record = RunRecord(
            run_id=f"{workload.name}-run-{next(self._run_counter):06d}",
            application=workload.name,
            hardware=config.name,
            runtime_seconds=runtime,
            features=dict(features),
        )
        run = CompletedRun(
            record=record,
            queue_seconds=0.0,
            node=node.name,
            finish_time=self.now,
            planned_runtime_seconds=runtime,
        )
        self._completed.append(run)
        self.log.record(
            "cluster",
            "run_completed",
            time=self.now,
            run_id=record.run_id,
            hardware=config.name,
            runtime=runtime,
        )
        return run

    # ------------------------------------------------------------------ #
    # Queued interface (event-driven, exposes contention)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        features: Dict[str, float],
        hardware: HardwareConfig | str,
        at_time: Optional[float] = None,
        workload: Optional[WorkloadModel] = None,
        priority: int = 0,
    ) -> Pod:
        """Submit a pod requesting ``hardware`` for a workflow with ``features``.

        ``workload`` selects which application model provides the pod's
        ground-truth runtime; it defaults to the simulator's own workload.
        Passing it per pod lets multiple tenants (applications) share one
        cluster, which is what the contention-aware evaluation drives.
        ``priority`` is the pod's priority class (higher = more important);
        only priority-aware schedulers read it.

        Raises
        ------
        InsufficientCapacityError
            If the request exceeds every node's *total* capacity and no
            autoscaler pool node could ever fit it (same rule as
            :meth:`run_workload`).  Under the FIFO scheduler's head-of-line
            blocking an infeasible pod would silently wedge every pod behind
            it until the event budget drains, so the two modes fail fast and
            consistently at the point of error instead.
        """
        config = self._resolve_hardware(hardware)
        if not self.request_feasible(config):
            raise InsufficientCapacityError(
                f"request {config.as_tuple()} exceeds every node's total capacity "
                "and can never be scheduled; "
                f"nodes: {[(n.name, n.cpus, n.memory_gb) for n in self.nodes]}"
            )
        workload = workload if workload is not None else self.workload
        name = f"pod-{next(self._pod_counter):06d}"
        pod = Pod(
            name=name,
            request=config,
            features=dict(features),
            application=workload.name,
            priority=int(priority),
        )
        # Draw the ground-truth runtime ONCE, at submission.  Drawing at
        # start time (the old engine) made observed runtimes depend on
        # scheduling order -- and a preempted pod re-drew noise from the
        # shared RNG on restart, breaking replication determinism.
        pod.work_seconds = workload.observed_runtime(features, config, self._rng)
        self._state.adopt_pod(pod)
        submit_time = self.now if at_time is None else float(at_time)
        self._events.push(submit_time, POD_SUBMITTED, pod_name=name)
        self._pods[name] = pod
        self._pod_workloads[name] = workload
        self.log.record("cluster", "pod_submitted", time=submit_time, pod=name, hardware=config.name)
        return pod

    def _running_pods_by_node(self) -> Dict[str, List[Pod]]:
        """Currently running pods grouped by the node they occupy.

        Served from the incrementally maintained co-residency map (updated
        on start/finish/preempt/provision/drain); the returned dict carries
        fresh lists in cluster-node order, so callers may keep or mutate it
        freely.
        """
        return {node.name: list(self._running[node.name]) for node in self.nodes}

    def _placement_context(self) -> Optional[PlacementContext]:
        """Live co-residency + interference for interference-aware placement.

        ``None`` for capacity-only policies (first-fit, best-fit, ...):
        they never read the context, and skipping the per-placement
        co-residency snapshot keeps the default path exactly as cheap as
        the pre-refactor schedulers.  For context-reading policies the
        returned object is a cached view over the live co-residency map --
        placements and completions update the map in place, so there is
        nothing to rebuild between schedule passes.
        """
        if not self.scheduler.placement.needs_context:
            return None
        if self._context_cache is None:
            self._context_cache = PlacementContext(
                interference=self.interference, running=self._running
            )
        return self._context_cache

    def _start_pod(self, pod: Pod, node_name: str, reason: str) -> None:
        """Transition a placed pod to running and (re)schedule the node's finishes.

        Starting a pod changes its node's co-residency, so every resident's
        progress rate -- the new pod's included -- is re-evaluated.
        """
        pod.mark_running(self.now, node_name)
        self._running[node_name].append(pod)
        if self._autoscaler is not None:
            self._autoscaler.idle_since.pop(node_name, None)
        node = next(n for n in self.nodes if n.name == node_name)
        self._reschedule_node(node)
        self.log.record(
            "scheduler",
            "pod_scheduled",
            time=self.now,
            pod=pod.name,
            node=node_name,
            reason=reason,
        )

    def _reschedule_node(self, node: Node) -> None:
        """Re-integrate progress and move the finish frontier on ``node``.

        Called on every topology change touching the node.  Each resident's
        rate is recomputed from the interference model; a pod whose rate is
        unchanged keeps its tentative ``finish_at`` (progress integration is
        lazy -- the rate is piecewise constant between changes, so deferring
        the integral to the next change is exact).  Changed pods get their
        finish times rewritten in the kernel arrays; no per-pod events are
        pushed.  The node's single ``node_next_finish`` event is then
        re-pushed only if the frontier (min over residents) moved, with the
        superseded event cancelled in O(1) -- so heap traffic per topology
        change is O(1), not O(residents).
        """
        profile = self._profile
        started = KernelProfile.clock() if profile is not None else 0.0
        state = self._state
        if node._state is not state:  # pragma: no cover - simulator adopts all nodes
            raise RuntimeError(f"node {node.name!r} is not adopted by this simulator")
        slot = node._slot
        indices = state.residents[slot]
        if not indices:
            # No residents left: the node has no next finish.  The popped
            # frontier event (if any) must be cancelled here, not left to
            # fire against an empty node.
            current = self._frontier.pop(slot, None)
            if current is not None:
                self._events.cancel(current)
            if profile is not None:
                profile.reschedule_calls += 1
                profile.reintegration_seconds += KernelProfile.clock() - started
            return
        pods = [state.pods[i] for i in indices]
        ia = np.asarray(indices, dtype=np.intp)
        requests = (state.req_cpus[ia], state.req_mem[ia], state.req_gpus[ia])
        if self._batched_interference:
            speeds = np.asarray(
                self.interference.node_speeds(node, pods, requests), dtype=np.float64
            )
        else:
            # Force the base-class fallback: per-pod speed() calls in the
            # exact pre-kernel pattern, so models that override speed()
            # alone (including subclasses of the built-ins) are honoured.
            speeds = InterferenceModel.node_speeds(self.interference, node, pods)
        invalid = ~((speeds > 0.0) & (speeds <= 1.0))
        if invalid.any():
            i = int(np.argmax(invalid))
            speed = float(speeds[i])
            raise ValueError(
                f"interference model {type(self.interference).__name__} returned "
                f"progress rate {speed!r} for pod {pods[i].name!r}; rates must be in (0, 1]"
            )
        if len(pods) == 1 and float(speeds[0]) != 1.0:
            speed = float(speeds[0])
            raise ValueError(
                f"interference model {type(self.interference).__name__} slowed a "
                f"pod running alone (rate {speed!r}); solo pods must run at 1.0"
            )
        now = self.now
        # Batched re-integration: one elementwise pass over the node's
        # residents, arithmetically identical to the per-pod set_speed
        # sequence (same operations in the same order per element).
        current_speeds = state.speed[ia]
        changed_mask = speeds != current_speeds  # NaN current -> True (unset rate)
        n_changed = 0
        if changed_mask.any():
            ci = ia[changed_mask]
            old_speeds = current_speeds[changed_mask]
            had_rate = ~np.isnan(old_speeds)
            if had_rate.any():
                hi = ci[had_rate]
                elapsed = now - state.updated_at[hi]
                state.progress[hi] += elapsed * old_speeds[had_rate]
                state.running_wall[hi] += elapsed
            new_speeds = speeds[changed_mask]
            state.updated_at[ci] = now
            state.speed[ci] = new_speeds
            remaining = np.maximum(state.work[ci] - state.progress[ci], 0.0) / new_speeds
            # ``now + remaining`` is exactly what ``push_in(remaining)``
            # scheduled in the per-pod-event engine: the clock has not
            # advanced since ``now`` was read.  The wall remainder is kept
            # alongside so completion can report the drawn runtime without
            # a lossy ``finish - updated_at`` subtraction.
            state.remaining[ci] = remaining
            state.finish_at[ci] = now + remaining
            for pod, flag, speed in zip(pods, changed_mask.tolist(), speeds.tolist()):
                if flag:
                    pod.progress_log.append((now, speed))
                    n_changed += 1
        self._update_frontier(slot, ia)
        if profile is not None:
            profile.reschedule_calls += 1
            profile.pods_rescheduled += n_changed
            profile.reintegration_seconds += KernelProfile.clock() - started

    def _update_frontier(self, slot: int, ia: np.ndarray) -> None:
        """Re-point the node's ``node_next_finish`` event at its frontier.

        ``ia`` indexes the node's residents (non-empty).  If the minimum
        tentative finish equals the outstanding event's time the event is
        kept -- the argmin is recomputed at fire time, so it does not matter
        *which* resident defines the frontier, only *when* it is.  Otherwise
        the outstanding event is cancelled (O(1), handled never) and one
        event is pushed at the new frontier.
        """
        t = float(self._state.finish_at[ia].min())
        current = self._frontier.get(slot)
        if current is not None:
            if current.time == t:
                return
            self._events.cancel(current)
        self._frontier[slot] = self._events.push_frontier(t, slot)

    def _preempt_victims(self, plan) -> List[Pod]:
        """Evict the plan's victims (checkpoint-free) and return them."""
        node = next(n for n in self.nodes if n.name == plan.node_name)
        victims: List[Pod] = []
        for name in plan.victims:
            victim = self._pods[name]
            node.release(name)
            self._running[node.name].remove(victim)
            victim.mark_preempted(self.now)
            victims.append(victim)
            self.log.record(
                "scheduler",
                "pod_preempted",
                time=self.now,
                pod=name,
                node=plan.node_name,
                preempted_by=plan.pod_name,
            )
        # The evictions changed the node's co-residency: surviving residents
        # may speed up (the preemptor's own placement reschedules again).
        self._reschedule_node(node)
        return victims

    def _try_schedule_pending(self) -> None:
        while self._schedule_pass():
            pass
        self._maybe_scale_up()

    def _schedule_pass(self) -> bool:
        """One pass over the pending queue; True when a preemption restarted it.

        A preemption requeues its victims and aborts the pass: the victims
        must compete for the eviction's leftover capacity *before* any pod
        queued behind them (they were admitted -- and running -- earlier
        than everything still pending in their class), so the pass restarts
        with the victims merged at the front of the queue.  Chains
        terminate because every preemption places a strictly
        higher-priority pod than each pod it evicts.
        """
        profile = self._profile
        pass_started = KernelProfile.clock() if profile is not None else 0.0
        still_pending: List[Pod] = []
        blocked = False
        queue = self.scheduler.sort_pending(self._pending)
        # The cached context wraps the live co-residency map, which every
        # successful placement (and preemption) updates in place -- so one
        # context object serves the whole pass.
        context = self._placement_context()
        for i, pod in enumerate(queue):
            if blocked:
                still_pending.extend(queue[i:])
                break
            decision = self._place(pod, context)
            if not decision.placed and self.scheduler.supports_preemption:
                plan = self.scheduler.select_victims(
                    pod, self.nodes, self._running_pods_by_node()
                )
                if plan is not None:
                    victims = self._preempt_victims(plan)
                    decision = self._place(pod, self._placement_context())
                    if decision.placed:
                        self._start_pod(pod, decision.node_name, decision.reason)
                        remaining = queue[i + 1 :]
                    else:  # pragma: no cover - plan guarantees a fit
                        remaining = queue[i:]
                    # Victim plans list most-recently-started first; re-sort
                    # by pod name (pod-NNNNNN, monotonic in submission
                    # order) to keep FIFO among same-class victims.  The
                    # restart re-sorts classes, so front placement pins the
                    # within-class order only.
                    victims.sort(key=lambda p: p.name)
                    self._pending = victims + still_pending + remaining
                    if profile is not None:
                        profile.schedule_passes += 1
                        profile.scheduling_seconds += KernelProfile.clock() - pass_started
                    return True
            if decision.placed:
                self._start_pod(pod, decision.node_name, decision.reason)
            else:
                still_pending.append(pod)
                # Strict FIFO service order: an unplaceable pod at the head of
                # the queue blocks everything behind it, so a large request
                # cannot be starved by a stream of small skip-ahead pods.
                if self.scheduler.head_of_line_blocking:
                    blocked = True
        self._pending = still_pending
        if profile is not None:
            profile.schedule_passes += 1
            profile.scheduling_seconds += KernelProfile.clock() - pass_started
        return False

    def _place(self, pod: Pod, context: Optional[PlacementContext]):
        """One placement decision, timed when profiling is enabled."""
        profile = self._profile
        if profile is None:
            return self.scheduler.schedule(pod, self.nodes, context)
        started = KernelProfile.clock()
        decision = self.scheduler.schedule(pod, self.nodes, context)
        profile.placement_calls += 1
        profile.placement_seconds += KernelProfile.clock() - started
        return decision

    def _maybe_scale_up(self) -> None:
        """Request pool nodes for pending pods that current capacity can't place.

        The deficit is computed by packing the eligible pending pods into
        hypothetical fresh template nodes *with the scheduler's own
        placement policy* (a new bin is opened only when the policy places
        nowhere), minus capacity already being provisioned, capped by the
        pool's ``max_nodes``.  Under the default first-fit placement this
        reproduces the pre-refactor bin count exactly.  Other policies may
        legitimately count differently: which bin a pod lands in changes
        the residual capacity, so e.g. spread can leave a later pod without
        a home that first-fit's packing would have preserved (and open an
        extra bin) -- the estimate deliberately mirrors how the policy will
        place the pods once capacity exists.
        """
        state = self._autoscaler
        if state is None or not self._pending:
            return
        pool = state.pool
        # Unschedulable right now (no node has free room) and eligible for a
        # pool node.  Pods merely blocked behind a bigger head-of-line pod do
        # not trigger scale-up; pods that will get room when a running pod
        # finishes may -- autoscalers over-provision under churn by design.
        waiting = [
            pod
            for pod in self._pending
            if not any(node.fits(pod.request) for node in self.nodes)
            and pool.fits_template(pod.request.cpus, pod.request.memory_gb, pod.request.gpus)
        ]
        if not waiting:
            return
        # Pack the waiting pods into hypothetical empty template nodes using
        # the active placement policy; each placed pod becomes a co-resident
        # of its bin so interference-aware policies see the packing build up.
        bins: List[Node] = []
        bin_running: Dict[str, List[Pod]] = {}
        placement = self.scheduler.placement
        context = PlacementContext(interference=self.interference, running=bin_running)
        for pod in waiting:
            chosen = placement.select(pod, bins, context) if bins else None
            if chosen is None:
                chosen = pool.template_node(f"{pool.name_prefix}-deficit-{len(bins) + 1}")
                bins.append(chosen)
                bin_running[chosen.name] = []
            chosen.allocate(pod.name, pod.request)
            bin_running[chosen.name].append(pod)
        deficit = len(bins) - state.in_flight
        budget = pool.max_nodes - state.total
        for _ in range(max(0, min(deficit, budget))):
            name = state.next_name()
            state.in_flight += 1
            ready = self.now + pool.provision_delay_seconds
            self._events.push(ready, NODE_PROVISIONED, node_name=name)
            state.events.append(ScaleEvent(self.now, "scale_up_requested", name))
            self.log.record(
                "autoscaler", "scale_up_requested", time=self.now, node=name, ready_at=ready
            )

    def _handle_node_provisioned(self, event) -> None:
        state = self._autoscaler
        assert state is not None, "node_provisioned without an autoscaler"
        name = event.payload["node_name"]
        node = state.pool.template_node(name)
        self.nodes.append(node)
        self._state.adopt_node(node)
        self._running[name] = []
        self._feasibility.clear()
        self._busy_since[name] = float(event.time)
        self._active_since[name] = float(event.time)
        state.in_flight -= 1
        state.alive += 1
        state.provisioned_at[name] = float(event.time)
        state.events.append(ScaleEvent(float(event.time), "node_provisioned", name))
        self.log.record("autoscaler", "node_provisioned", time=event.time, node=name)
        self._mark_node_idle(name, float(event.time))
        self._try_schedule_pending()

    def _mark_node_idle(self, node_name: str, time: float) -> None:
        """Stamp a pool node idle and schedule its drain check."""
        state = self._autoscaler
        if state is None or node_name not in state.provisioned_at:
            return
        state.idle_since[node_name] = time
        if state.pool.scale_down_idle_seconds is not None:
            self._events.push(
                time + state.pool.scale_down_idle_seconds,
                NODE_DRAIN_CHECK,
                node_name=node_name,
                idle_stamp=time,
            )

    def _handle_node_drain_check(self, event) -> None:
        state = self._autoscaler
        if state is None:
            return
        name = event.payload["node_name"]
        # Stale check: the node was reused (or already drained) since the
        # stamp was taken.
        if state.idle_since.get(name) != event.payload["idle_stamp"]:
            return
        node = next((n for n in self.nodes if n.name == name), None)
        if node is None or node.allocations:
            return
        self.nodes.remove(node)
        self._state.release_node(node)
        self._running.pop(name, None)
        self._feasibility.clear()
        self._busy_since.pop(name, None)
        self._busy_seconds.pop(name, None)
        self._active_since.pop(name, None)
        state.alive -= 1
        state.idle_since.pop(name, None)
        started = state.provisioned_at.pop(name)
        state.lifetimes.append((name, started, float(event.time)))
        state.events.append(ScaleEvent(float(event.time), "node_drained", name))
        self.log.record("autoscaler", "node_drained", time=event.time, node=name)

    def _integrate_busy(self) -> None:
        """Accumulate each node's allocated resource-seconds up to ``now``.

        Allocations only change at event instants, so integrating before any
        mutation (and at query time) with the pre-change amounts is exact.
        Later events at the *same* instant contribute zero elapsed time, so
        the node loop runs once per distinct timestamp, not once per event.
        """
        now = self._events.now
        if now == self._busy_clock:
            return
        busy_since = self._busy_since
        busy_seconds = self._busy_seconds
        for node in self.nodes:
            name = node.name
            last = busy_since.get(name, now)
            dt = now - last
            if dt > 0:
                acc = busy_seconds.setdefault(name, [0.0, 0.0, 0.0])
                acc[0] += dt * node._alloc_cpus
                acc[1] += dt * node._alloc_memory_gb
                acc[2] += dt * node._alloc_gpus
            busy_since[name] = now
        self._busy_clock = now

    def _handle_node_finish(self, event) -> None:
        """Complete the finishing pod named by a fired frontier event.

        The event carries only its node's kernel slot; the finishing pod is
        the argmin of the residents' tentative finish times, recomputed at
        fire time (ties resolve to the earliest resident in allocation
        order, matching the per-pod-event engine's push order).  The queue
        never surfaces superseded frontier events, so every event reaching
        this handler is a genuine completion.
        """
        slot = event.node_slot
        # The fired event is consumed; _reschedule_node pushes the node's
        # next frontier below.
        self._frontier.pop(slot, None)
        state = self._state
        indices = state.residents[slot]
        index = indices[int(np.argmin(state.finish_at[np.asarray(indices, dtype=np.intp)]))]
        pod = state.pods[index]
        node = state.nodes[slot]
        node.release(pod.name)
        self._running[node.name].remove(pod)
        pod.mark_finished(event.time, succeeded=True)
        workload = self._pod_workloads.get(pod.name, self.workload)
        # Close out progress with the *scheduled* wall remainder rather than
        # finish - start: the subtraction loses low-order bits once the
        # clock is large, and an uninterfered run must report the drawn
        # runtime bit-for-bit (matching the synchronous path).
        runtime = pod.complete_progress(float(state.remaining[index]))
        record = RunRecord(
            run_id=f"{workload.name}-run-{next(self._run_counter):06d}",
            application=workload.name,
            hardware=pod.request.name,
            runtime_seconds=runtime,
            features=dict(pod.features),
        )
        self._completed.append(
            CompletedRun(
                record=record,
                queue_seconds=float(pod.queue_seconds or 0.0),
                node=node.name,
                pod_name=pod.name,
                finish_time=float(event.time),
                preemptions=pod.preemptions,
                wasted_runtime_seconds=pod.wasted_runtime_seconds,
                planned_runtime_seconds=pod.work_seconds,
            )
        )
        self.log.record(
            "cluster",
            "pod_finished",
            time=event.time,
            pod=pod.name,
            runtime=runtime,
        )
        # The departure freed capacity: surviving residents speed up
        # before the pending queue competes for the room.
        self._reschedule_node(node)
        if not node.allocations:
            self._mark_node_idle(node.name, float(event.time))
        self._try_schedule_pending()

    def _handle_event(self, event) -> None:
        if self._profile is not None:
            self._profile.events_processed += 1
        self._integrate_busy()
        kind = event.kind
        # ``node_next_finish`` first: under the frontier protocol it is the
        # most frequent kind (one completion per firing), and the kinds are
        # interned so each comparison is a pointer check.
        if kind == NODE_NEXT_FINISH:
            self._handle_node_finish(event)
        elif kind == POD_SUBMITTED:
            pod = self._pods[event.payload["pod_name"]]
            pod.mark_submitted(event.time)
            self._pending.append(pod)
            self._try_schedule_pending()
        elif kind == NODE_PROVISIONED:
            self._handle_node_provisioned(event)
        elif kind == NODE_DRAIN_CHECK:
            self._handle_node_drain_check(event)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {event.kind!r}")

    def run_until_idle(self, max_events: int = 1_000_000) -> List[CompletedRun]:
        """Process events until no pods remain pending or running.

        Returns the runs completed during this call (in completion order).
        ``max_events`` budgets *handled* events only: superseded (cancelled)
        frontier entries are discarded by the queue without being counted,
        so a long interference-heavy run cannot spuriously exhaust the
        budget on stale heap backlog.  Skipped-entry totals are reported
        separately via :attr:`event_stats` and the kernel profile's
        ``events_skipped``.
        """
        before = len(self._completed)
        processed = 0
        while self._events and processed < max_events:
            self._handle_event(self._events.pop())
            processed += 1
        self._sync_profile_events()
        if self._events:
            raise RuntimeError(f"event budget of {max_events} exhausted with events remaining")
        if self._pending:
            # Defensive: submit() rejects infeasible requests up front, so
            # this can only trigger if capacity was mutated after admission.
            infeasible = [p.name for p in self._pending if not self.request_feasible(p.request)]
            blocked = [p.name for p in self._pending if p.name not in set(infeasible)]
            message = (
                f"pods {infeasible} can never be scheduled: "
                "requests exceed every node's capacity"
                if infeasible
                else f"pods {blocked} are pending with no events left to free capacity"
            )
            if infeasible and blocked:
                message += f"; pods {blocked} are blocked behind them in the FIFO queue"
            raise InsufficientCapacityError(message)
        return self._completed[before:]

    def run_until(self, time: float) -> List[CompletedRun]:
        """Process all events up to and including ``time``, then stop.

        The simulation clock advances exactly to ``time`` even when no event
        falls in the window (:meth:`EventQueue.drain` semantics), so callers
        interleaving external arrivals with the event engine can step the
        clock deterministically.  Returns the runs completed during this call
        in completion order.
        """
        before = len(self._completed)
        self._events.drain(self._handle_event, until=float(time))
        self._sync_profile_events()
        return self._completed[before:]

    def peek_next_event_time(self) -> Optional[float]:
        """Time of the next *live* event, or ``None`` when the engine is idle.

        Frontier-aware: a cancelled (superseded) ``node_next_finish`` entry
        is never surfaced, so callers interleaving external arrivals --
        :class:`~repro.evaluation.engine.ExperimentEngine` -- only wake at
        timestamps where the simulator will actually do work.
        """
        return self._events.peek_time()

    @property
    def has_work(self) -> bool:
        """Whether any live events remain (pods submitted, running or queued)."""
        return bool(self._events)

    @property
    def event_stats(self) -> Dict[str, int]:
        """Heap-traffic counters of the event engine.

        ``pushed`` events ever scheduled, ``popped`` events handled,
        ``skipped`` cancelled (superseded-frontier) entries discarded, and
        ``pending`` live events still queued.
        """
        q = self._events
        return {"pushed": q.pushed, "popped": q.popped, "skipped": q.skipped, "pending": len(q)}

    def _sync_profile_events(self) -> None:
        """Fold queue counter deltas into the kernel profile (if enabled)."""
        profile = self._profile
        if profile is None:
            return
        q = self._events
        synced = self._synced_events
        profile.events_pushed += q.pushed - synced[0]
        profile.events_popped += q.popped - synced[1]
        profile.events_skipped += q.skipped - synced[2]
        self._synced_events = (q.pushed, q.popped, q.skipped)

    # ------------------------------------------------------------------ #
    # Autoscaler introspection
    # ------------------------------------------------------------------ #
    @property
    def scale_events(self) -> List[ScaleEvent]:
        """Autoscaling actions so far (empty without an autoscaler)."""
        return list(self._autoscaler.events) if self._autoscaler is not None else []

    def pool_node_lifetimes(self) -> List[tuple]:
        """``(node_name, provisioned_at, drained_at)`` per pool node.

        Nodes still alive report the current simulation time as their
        (provisional) end, so lifetime cost can be integrated at any point.
        """
        if self._autoscaler is None:
            return []
        done = list(self._autoscaler.lifetimes)
        done.extend(
            (name, started, self.now)
            for name, started in sorted(self._autoscaler.provisioned_at.items())
        )
        return done

    # ------------------------------------------------------------------ #
    def utilisation(self) -> Dict[str, Dict[str, float]]:
        """Per-node utilisation: instantaneous shares plus busy fractions.

        The ``cpus``/``memory_gb``/``gpus`` keys are the node's current
        allocated fractions (as before).  The ``busy_*`` keys are the
        fraction of the node's capacity-time that was actually allocated,
        prorated over the node's *active window*: base nodes have existed
        since time 0, but an autoscaled pool node is only accountable from
        its provision time (its :meth:`pool_node_lifetimes` window) --
        dividing by the full simulation duration would under-report a
        mid-run node's busy fraction.
        """
        self._integrate_busy()
        report: Dict[str, Dict[str, float]] = {}
        for node in self.nodes:
            stats = node.utilisation()
            window = self.now - self._active_since.get(node.name, 0.0)
            busy = self._busy_seconds.get(node.name, [0.0, 0.0, 0.0])
            stats["busy_cpus"] = busy[0] / (node.cpus * window) if window > 0 else 0.0
            stats["busy_memory_gb"] = (
                busy[1] / (node.memory_gb * window) if window > 0 else 0.0
            )
            stats["busy_gpus"] = (
                busy[2] / (node.gpus * window) if window > 0 and node.gpus else 0.0
            )
            report[node.name] = stats
        return report
