"""Autoscaling node pools: elastic capacity with provisioning delay.

Real clusters are not fixed-size: when pods queue for capacity, a cluster
autoscaler provisions additional nodes (after a provisioning delay -- VM
boot, image pull, join), and drains idle ones to save cost.  The
:class:`AutoscalingNodePool` describes one such elastic pool attached to a
:class:`~repro.cluster.simulator.ClusterSimulator`:

* **Scale-up** -- whenever a pending pod cannot be placed on any current node
  (nor on capacity already being provisioned), a new node from the pool's
  template is requested.  The node joins the cluster ``provision_delay_seconds``
  later, via a ``node_provisioned`` event in the simulator's main event queue
  -- so :meth:`~repro.cluster.simulator.ClusterSimulator.peek_next_event_time`
  and :meth:`~repro.cluster.simulator.ClusterSimulator.run_until` see
  scale-up boundaries exactly like pod events and can never step over one.
* **Scale-down** -- a pool node that has been idle (no allocations) for
  ``scale_down_idle_seconds`` is drained and removed.  Base nodes (the ones
  the cluster was constructed with) are never removed.

The cost of elasticity is accounted through the
:meth:`~repro.hardware.ResourceCostModel.node_occupancy_cost` hook: each pool
node is charged for its full provisioned lifetime (from join to drain),
whether busy or idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.node import Node

__all__ = ["AutoscalingNodePool", "ScaleEvent"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling action, for reports and tests.

    ``kind`` is ``"scale_up_requested"``, ``"node_provisioned"`` or
    ``"node_drained"``; ``time`` is the simulation time it happened.
    """

    time: float
    kind: str
    node_name: str


@dataclass(frozen=True)
class AutoscalingNodePool:
    """Description of an elastic node pool.

    Parameters
    ----------
    node_cpus, node_memory_gb, node_gpus:
        Capacity of each provisioned node (the pool is homogeneous, like a
        cloud instance group).
    max_nodes:
        Upper bound on pool nodes alive or in flight at once.
    provision_delay_seconds:
        Time between requesting a node and it joining the cluster.
    scale_down_idle_seconds:
        How long a pool node may sit empty before it is drained.  ``None``
        disables scale-down.
    name_prefix:
        Prefix for provisioned node names (``<prefix>-1``, ``<prefix>-2``...).
    node_interference_class:
        Interference class stamped on every provisioned node (see
        :attr:`~repro.cluster.node.Node.interference_class`).  Cloud pools
        are often the noisy tier -- interference models can weight them
        accordingly.
    """

    node_cpus: int
    node_memory_gb: float
    node_gpus: int = 0
    max_nodes: int = 4
    provision_delay_seconds: float = 60.0
    scale_down_idle_seconds: Optional[float] = 600.0
    name_prefix: str = "autoscale"
    node_interference_class: str = "standard"

    def __post_init__(self) -> None:
        if self.node_cpus <= 0 or self.node_memory_gb <= 0 or self.node_gpus < 0:
            raise ValueError(
                f"invalid pool node capacity: cpus={self.node_cpus}, "
                f"memory_gb={self.node_memory_gb}, gpus={self.node_gpus}"
            )
        if self.max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {self.max_nodes}")
        if self.provision_delay_seconds < 0:
            raise ValueError(
                f"provision_delay_seconds must be non-negative, got {self.provision_delay_seconds}"
            )
        if self.scale_down_idle_seconds is not None and self.scale_down_idle_seconds <= 0:
            raise ValueError(
                f"scale_down_idle_seconds must be positive, got {self.scale_down_idle_seconds}"
            )

    # ------------------------------------------------------------------ #
    def template_node(self, name: str) -> Node:
        """A fresh pool node with this pool's capacity.

        The single construction site for provisioned nodes: capacity fields
        added to the pool template cannot silently diverge from the nodes
        the simulator actually adds.
        """
        return Node(
            name,
            cpus=self.node_cpus,
            memory_gb=self.node_memory_gb,
            gpus=self.node_gpus,
            labels={"pool": self.name_prefix},
            interference_class=self.node_interference_class,
        )

    def fits_template(self, cpus: int, memory_gb: float, gpus: int) -> bool:
        """Whether a request fits one (empty) pool node."""
        return (
            cpus <= self.node_cpus
            and memory_gb <= self.node_memory_gb
            and gpus <= self.node_gpus
        )


class AutoscalerState:
    """Mutable autoscaler bookkeeping owned by one :class:`ClusterSimulator`.

    Tracks in-flight provisions, node lifetimes (for cost accounting) and the
    scale-event log.  The simulator drives it; it never touches the event
    queue itself.
    """

    def __init__(self, pool: AutoscalingNodePool):
        self.pool = pool
        self.in_flight = 0
        self.alive = 0
        self._counter = 0
        #: provision time per live pool node, for lifetime cost on drain
        self.provisioned_at: Dict[str, float] = {}
        #: time each pool node last became empty (drain eligibility)
        self.idle_since: Dict[str, float] = {}
        #: completed node lifetimes as (node_name, provisioned_at, drained_at)
        self.lifetimes: List[tuple] = []
        self.events: List[ScaleEvent] = []

    @property
    def total(self) -> int:
        """Pool nodes alive or being provisioned."""
        return self.alive + self.in_flight

    def next_name(self) -> str:
        self._counter += 1
        return f"{self.pool.name_prefix}-{self._counter}"
