"""A small Kubernetes-like cluster execution simulator.

The paper schedules workflows on the National Data Platform's geo-distributed
Kubernetes cluster; this package is the stand-in substrate that "executes"
a workload on the hardware configuration BanditWare selected and reports the
observed runtime back (see DESIGN.md, "Substitutions").

Components:

* :mod:`~repro.cluster.events` -- a discrete-event engine (priority queue of
  timestamped events).
* :mod:`~repro.cluster.node` -- cluster nodes with CPU/memory/GPU capacity and
  allocation accounting.
* :mod:`~repro.cluster.pod` -- pods: a workload run bound to a resource
  request (a :class:`~repro.hardware.HardwareConfig`) with a lifecycle
  (pending → running → completed).
* :mod:`~repro.cluster.scheduler` -- the *ordering* axis ("which pod
  next"): FIFO (head-of-line blocking), backfill (skip-ahead) and
  priority/preemption queue disciplines.
* :mod:`~repro.cluster.placement` -- the *placement* axis ("which node"):
  pluggable :class:`PlacementPolicy` implementations (:class:`FirstFit`,
  :class:`BestFit`, :class:`WorstFit` spread, :class:`Pack`,
  interference-aware :class:`LeastSlowdown`) that any scheduler composes
  with.
* :mod:`~repro.cluster.autoscaler` -- :class:`AutoscalingNodePool`, an
  elastic node pool with provisioning delay and idle-node drain.
* :mod:`~repro.cluster.interference` -- pluggable interference models
  (:class:`NoInterference`, :class:`LinearSlowdown`,
  :class:`CapacityContention`): co-located pods slow each other's progress
  rate down.
* :mod:`~repro.cluster.state` -- the array kernel: :class:`ClusterState`
  holds every pod's and node's hot runtime scalars in flat
  structure-of-arrays storage, and :class:`KernelProfile` accounts where
  simulation wall-time goes.  :class:`Pod` and :class:`Node` remain thin
  object facades over these arrays.
* :mod:`~repro.cluster.simulator` -- :class:`ClusterSimulator`, which ties the
  pieces together and exposes the ``submit → run → observe runtime`` loop the
  online recommender drives.  Execution is progress-based: pods advance at
  the interference model's rate and tentative finish events are rescheduled
  on every topology change.
"""

from repro.cluster.autoscaler import AutoscalingNodePool, ScaleEvent
from repro.cluster.events import Event, EventQueue
from repro.cluster.interference import (
    CapacityContention,
    InterferenceModel,
    LinearSlowdown,
    NoInterference,
)
from repro.cluster.node import Node, InsufficientCapacityError
from repro.cluster.placement import (
    BestFit,
    FirstFit,
    LeastSlowdown,
    Pack,
    PlacementContext,
    PlacementPolicy,
    WorstFit,
    PLACEMENT_POLICIES,
    build_placement,
)
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.scheduler import (
    BackfillScheduler,
    BestFitScheduler,
    FIFOScheduler,
    PreemptionDecision,
    PriorityScheduler,
    SchedulingDecision,
)
from repro.cluster.simulator import ClusterSimulator, CompletedRun
from repro.cluster.state import ClusterState, KernelProfile

__all__ = [
    "Event",
    "EventQueue",
    "InterferenceModel",
    "NoInterference",
    "LinearSlowdown",
    "CapacityContention",
    "Node",
    "InsufficientCapacityError",
    "PlacementPolicy",
    "PlacementContext",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "Pack",
    "LeastSlowdown",
    "PLACEMENT_POLICIES",
    "build_placement",
    "Pod",
    "PodPhase",
    "FIFOScheduler",
    "BackfillScheduler",
    "BestFitScheduler",
    "PriorityScheduler",
    "PreemptionDecision",
    "SchedulingDecision",
    "AutoscalingNodePool",
    "ScaleEvent",
    "ClusterSimulator",
    "CompletedRun",
    "ClusterState",
    "KernelProfile",
]
