"""Deterministic builders for the paper's three datasets and their splits.

The original run-history CSVs (80 Cycles runs, 1316 BP3D runs, 2520 matrix
multiplication runs) are not public; these builders generate synthetic
equivalents of the same size and composition from the workload models, with
fixed seeds so every test, example and benchmark sees identical data.
"""

from repro.data.datasets import (
    DatasetBundle,
    build_cycles_dataset,
    build_bp3d_dataset,
    build_matmul_dataset,
    CYCLES_N_RUNS,
    BP3D_N_RUNS,
    MATMUL_N_RUNS,
)
from repro.data.splits import train_test_split, truncate_by_threshold, per_hardware_counts
from repro.data.io import LoadedRunHistory, load_run_history, save_dataset

__all__ = [
    "LoadedRunHistory",
    "save_dataset",
    "load_run_history",
    "DatasetBundle",
    "build_cycles_dataset",
    "build_bp3d_dataset",
    "build_matmul_dataset",
    "CYCLES_N_RUNS",
    "BP3D_N_RUNS",
    "MATMUL_N_RUNS",
    "train_test_split",
    "truncate_by_threshold",
    "per_hardware_counts",
]
