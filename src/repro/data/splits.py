"""Dataset splitting helpers."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dataframe import DataFrame
from repro.utils.rng import SeedLike, as_generator

__all__ = ["train_test_split", "truncate_by_threshold", "per_hardware_counts"]


def train_test_split(
    frame: DataFrame,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Tuple[DataFrame, DataFrame]:
    """Randomly split a run-history table into train and test frames.

    Parameters
    ----------
    frame:
        The table to split.
    test_fraction:
        Fraction of rows assigned to the test frame (0 < fraction < 1).
    seed:
        Seed for the shuffle.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must lie strictly between 0 and 1, got {test_fraction}")
    if len(frame) < 2:
        raise ValueError("cannot split a frame with fewer than 2 rows")
    rng = as_generator(seed)
    indices = rng.permutation(len(frame))
    n_test = max(1, int(round(test_fraction * len(frame))))
    n_test = min(n_test, len(frame) - 1)
    test_idx = np.sort(indices[:n_test])
    train_idx = np.sort(indices[n_test:])
    return frame.take(train_idx), frame.take(test_idx)


def truncate_by_threshold(
    frame: DataFrame,
    column: str,
    threshold: float,
    keep: str = "above",
) -> DataFrame:
    """Keep only rows above (or below) a threshold on ``column``.

    This implements the paper's Experiment 3 truncation: the "subset dataset"
    keeps runs with ``size >= 5000``.

    Parameters
    ----------
    keep:
        ``"above"`` keeps rows with ``column >= threshold``;
        ``"below"`` keeps rows with ``column < threshold``.
    """
    if column not in frame:
        raise KeyError(f"no column named {column!r}; available: {frame.columns}")
    if keep not in ("above", "below"):
        raise ValueError(f"keep must be 'above' or 'below', got {keep!r}")
    values = frame[column].to_numpy(float)
    mask = values >= threshold if keep == "above" else values < threshold
    return frame.filter(mask)


def per_hardware_counts(frame: DataFrame, hardware_column: str = "hardware") -> Dict[str, int]:
    """Run counts per hardware configuration name."""
    if hardware_column not in frame:
        raise KeyError(f"no column named {hardware_column!r}; available: {frame.columns}")
    counts: Dict[str, int] = {}
    for value in frame[hardware_column].values:
        counts[str(value)] = counts.get(str(value), 0) + 1
    return counts
