"""Builders for the three evaluation datasets used in the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataframe import DataFrame
from repro.hardware import (
    HardwareCatalog,
    matmul_catalog,
    ndp_catalog,
    synthetic_catalog,
)
from repro.utils.rng import SeedLike
from repro.workloads import (
    BurnPro3DWorkload,
    CyclesWorkload,
    MatrixMultiplicationWorkload,
    TraceGenerator,
    WorkloadModel,
)

__all__ = [
    "DatasetBundle",
    "build_cycles_dataset",
    "build_bp3d_dataset",
    "build_matmul_dataset",
    "CYCLES_N_RUNS",
    "BP3D_N_RUNS",
    "MATMUL_N_RUNS",
]

#: Dataset sizes reported in the paper.
CYCLES_N_RUNS = 80
BP3D_N_RUNS = 1316
MATMUL_N_RUNS = 2520


@dataclass
class DatasetBundle:
    """A generated dataset plus everything needed to evaluate against it.

    Attributes
    ----------
    name:
        Dataset name (``"cycles"``, ``"bp3d"``, ``"matmul"``).
    frame:
        Run-history table: one row per run with feature columns, ``hardware``
        and ``runtime_seconds``.
    workload:
        The workload model the rows were drawn from (the ground truth).
    catalog:
        Hardware catalog the runs used.
    """

    name: str
    frame: DataFrame
    workload: WorkloadModel
    catalog: HardwareCatalog

    def __post_init__(self) -> None:
        required = {"hardware", "runtime_seconds"}
        missing = required - set(self.frame.columns)
        if missing:
            raise ValueError(f"dataset frame missing required columns {sorted(missing)}")

    @property
    def n_runs(self) -> int:
        return len(self.frame)

    @property
    def feature_names(self) -> list:
        return list(self.workload.feature_names)

    def per_hardware_counts(self) -> Dict[str, int]:
        """Number of runs per hardware configuration."""
        counts: Dict[str, int] = {name: 0 for name in self.catalog.names}
        for value in self.frame["hardware"].values:
            counts[str(value)] = counts.get(str(value), 0) + 1
        return counts


def build_cycles_dataset(
    n_runs: int = CYCLES_N_RUNS,
    seed: SeedLike = 1001,
    catalog: Optional[HardwareCatalog] = None,
) -> DatasetBundle:
    """The Experiment 1 dataset: Cycles runs on four synthetic hardware settings.

    The paper analysed 80 runs of two workflow sizes (100 and 500 tasks).
    Runs are generated as a grid over the catalog (the same workflows repeated
    on every hardware) so the per-hardware linear fits of Figure 3 all see the
    same workflow sizes.
    """
    catalog = catalog or synthetic_catalog(4)
    workload = CyclesWorkload()
    generator = TraceGenerator(workload, catalog, seed=seed)
    per_hardware = max(1, n_runs // len(catalog))
    frame = generator.generate_frame(per_hardware, grid=True)
    return DatasetBundle(name="cycles", frame=frame, workload=workload, catalog=catalog)


def build_bp3d_dataset(
    n_runs: int = BP3D_N_RUNS,
    seed: SeedLike = 2002,
    catalog: Optional[HardwareCatalog] = None,
) -> DatasetBundle:
    """The Experiment 2 dataset: 1316 BurnPro3D runs on the NDP triple.

    Runs are spread across hardware configurations at random (the historical
    BP3D data was collected opportunistically from production simulations, not
    as a balanced grid).
    """
    catalog = catalog or ndp_catalog()
    workload = BurnPro3DWorkload()
    generator = TraceGenerator(workload, catalog, seed=seed)
    frame = generator.generate_frame(n_runs, grid=False)
    return DatasetBundle(name="bp3d", frame=frame, workload=workload, catalog=catalog)


def build_matmul_dataset(
    n_runs: int = MATMUL_N_RUNS,
    seed: SeedLike = 3003,
    catalog: Optional[HardwareCatalog] = None,
) -> DatasetBundle:
    """The Experiment 3 dataset: 2520 matrix-squaring runs on five hardware options.

    The sampler reproduces the paper's composition: roughly 1800 of 2520 runs
    use matrices with ``size < 5000``.
    """
    catalog = catalog or matmul_catalog()
    workload = MatrixMultiplicationWorkload()
    generator = TraceGenerator(workload, catalog, seed=seed)
    frame = generator.generate_frame(n_runs, grid=False)
    return DatasetBundle(name="matmul", frame=frame, workload=workload, catalog=catalog)
