"""Persisting generated datasets to disk and loading them back.

Benchmarks and examples normally regenerate the synthetic datasets on the fly
(they are deterministic), but a downstream user replacing them with *real*
run-history CSVs needs a defined on-disk layout.  A dataset directory contains:

* ``runs.csv`` -- the run-history table (one row per run: feature columns,
  ``hardware``, ``runtime_seconds``, ...);
* ``catalog.json`` -- the hardware catalog (name, cpus, memory_gb, ...);
* ``metadata.json`` -- dataset name, application name and feature order.

:func:`save_dataset` writes that layout from a :class:`~repro.data.datasets.DatasetBundle`
and :func:`load_run_history` reads ``runs.csv``/``catalog.json`` back (the
workload model itself is code, not data, so a loaded directory yields the
frame + catalog + metadata rather than a full bundle).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.data.datasets import DatasetBundle
from repro.dataframe import DataFrame, read_csv, write_csv
from repro.hardware import HardwareCatalog

__all__ = ["LoadedRunHistory", "save_dataset", "load_run_history"]

_RUNS_FILE = "runs.csv"
_CATALOG_FILE = "catalog.json"
_METADATA_FILE = "metadata.json"


@dataclass
class LoadedRunHistory:
    """A dataset directory read back from disk."""

    name: str
    application: str
    feature_names: List[str]
    frame: DataFrame
    catalog: HardwareCatalog

    @property
    def n_runs(self) -> int:
        return len(self.frame)


def save_dataset(bundle: DatasetBundle, directory: Union[str, os.PathLike]) -> Path:
    """Write ``bundle`` to ``directory`` (created if needed); returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    write_csv(bundle.frame, path / _RUNS_FILE)
    with open(path / _CATALOG_FILE, "w") as handle:
        json.dump(bundle.catalog.to_records(), handle, indent=2)
    metadata = {
        "name": bundle.name,
        "application": bundle.workload.name,
        "feature_names": list(bundle.workload.feature_names),
        "n_runs": bundle.n_runs,
    }
    with open(path / _METADATA_FILE, "w") as handle:
        json.dump(metadata, handle, indent=2)
    return path


def load_run_history(directory: Union[str, os.PathLike]) -> LoadedRunHistory:
    """Read a dataset directory previously written by :func:`save_dataset`.

    Raises
    ------
    FileNotFoundError
        If any of the three expected files is missing.
    ValueError
        If the run table lacks the columns named in the metadata.
    """
    path = Path(directory)
    for filename in (_RUNS_FILE, _CATALOG_FILE, _METADATA_FILE):
        if not (path / filename).exists():
            raise FileNotFoundError(f"dataset directory {path} is missing {filename}")
    frame = read_csv(path / _RUNS_FILE)
    with open(path / _CATALOG_FILE) as handle:
        catalog = HardwareCatalog.from_records(json.load(handle))
    with open(path / _METADATA_FILE) as handle:
        metadata = json.load(handle)
    feature_names = [str(name) for name in metadata.get("feature_names", [])]
    missing = [
        column
        for column in (*feature_names, "hardware", "runtime_seconds")
        if column not in frame
    ]
    if missing:
        raise ValueError(f"runs.csv in {path} is missing columns {missing}")
    return LoadedRunHistory(
        name=str(metadata.get("name", path.name)),
        application=str(metadata.get("application", "unknown")),
        feature_names=feature_names,
        frame=frame,
        catalog=catalog,
    )
