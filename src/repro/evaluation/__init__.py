"""Evaluation harness: metrics, replicated online simulations and reporting.

The paper's figures are all built from the same protocol: run Algorithm 1 for
``n_rounds`` rounds, repeat the whole run ``n_sim`` times, and after every
round score the bandit's current per-arm models against the full historical
dataset (RMSE) and against the ground-truth best hardware (accuracy), with
the full-data fit as the reference line.  This package implements that
protocol once so every benchmark and example reuses it.

* :mod:`~repro.evaluation.metrics` -- RMSE, MAE, R², selection accuracy,
  regret summaries.
* :mod:`~repro.evaluation.simulation` -- the replicated online simulation
  (:class:`OnlineSimulation`) and its result container.
* :mod:`~repro.evaluation.experiment` -- pre-configured experiment
  definitions matching each of the paper's figures.
* :mod:`~repro.evaluation.reporting` -- plain-text rendering of the series
  and tables the paper plots.
* :mod:`~repro.evaluation.engine` -- the unified event-driven experiment
  engine: one round/outcome ledger, one completion→observe path, one seeding
  discipline, plus the replication and scenario-sweep process pools.
* :mod:`~repro.evaluation.contention` -- contention-aware, cluster-in-the-loop
  evaluation: multi-tenant workflow streams (with priority/preemption
  scheduling, autoscaling node pools and queue-aware bandit feedback) driven
  through the engine with queue-aware regret accounting.
"""

from repro.evaluation.metrics import (
    accuracy_score,
    mae,
    mape,
    r2_score,
    rmse,
    selection_accuracy,
)
from repro.evaluation.simulation import (
    OnlineSimulation,
    SimulationConfig,
    SimulationResult,
)
from repro.evaluation.experiment import (
    EXPERIMENT_NAMES,
    ExperimentDefinition,
    ExperimentResult,
    build_experiment,
    run_experiment,
)
from repro.evaluation.engine import (
    ExperimentEngine,
    ReplicationSummary,
    run_scenario_replications,
    run_scenario_sweep,
)
from repro.evaluation.contention import (
    CONTENTION_SCENARIOS,
    ContentionResult,
    ContentionScenario,
    TenantOutcome,
    TenantSpec,
    build_scenario,
    run_scenario,
    run_synchronous,
)
from repro.evaluation.reporting import (
    format_contention_report,
    format_kernel_profile,
    format_metric_table,
    format_replication_bands,
    format_series,
    format_service_load_report,
    format_summary,
)
from repro.evaluation.service_load import (
    HotspotAppMix,
    ServiceLoadConfig,
    ServiceLoadResult,
    ZipfianAppMix,
    build_load_service,
    calibrate_cost_per_request,
    run_service_load,
    standard_mixes,
)

__all__ = [
    "CONTENTION_SCENARIOS",
    "ContentionResult",
    "ContentionScenario",
    "TenantOutcome",
    "TenantSpec",
    "build_scenario",
    "run_scenario",
    "run_synchronous",
    "run_scenario_sweep",
    "run_scenario_replications",
    "ReplicationSummary",
    "ExperimentEngine",
    "format_contention_report",
    "format_kernel_profile",
    "format_replication_bands",
    "rmse",
    "mae",
    "mape",
    "r2_score",
    "accuracy_score",
    "selection_accuracy",
    "OnlineSimulation",
    "SimulationConfig",
    "SimulationResult",
    "EXPERIMENT_NAMES",
    "ExperimentDefinition",
    "ExperimentResult",
    "build_experiment",
    "run_experiment",
    "format_series",
    "format_metric_table",
    "format_summary",
    "format_service_load_report",
    "ZipfianAppMix",
    "HotspotAppMix",
    "ServiceLoadConfig",
    "ServiceLoadResult",
    "build_load_service",
    "calibrate_cost_per_request",
    "run_service_load",
    "standard_mixes",
]
