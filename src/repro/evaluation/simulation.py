"""The replicated online simulation behind every figure in the paper.

One *simulation* plays Algorithm 1 for ``n_rounds`` rounds against a workload
model: each round a workflow arrives, the bandit recommends a hardware
configuration, the (noisy) runtime is observed, and the per-arm models are
refit.  After every round, the bandit's current models are scored against a
fixed evaluation dataset:

* **RMSE** -- each evaluation row's runtime is predicted with the bandit's
  model for the hardware the row actually ran on;
* **accuracy** -- for each evaluation workflow, the bandit's (greedy,
  tolerant) recommendation is compared against the set of hardware whose true
  expected runtime is within the same tolerance of the optimum.

The whole run is repeated ``n_simulations`` times with independent random
streams; the figures plot the per-round mean and spread, against the
*full-fit* reference (per-arm least squares on the entire dataset).

Engine notes
------------
This class is a thin frontend over the unified experiment engine
(:mod:`repro.evaluation.engine`), which owns the round loop, the
completion→observe path and the seeding discipline.  The online loop itself
is inherently sequential (each decision depends on the previous observation
through both the models and the random stream), but everything around it is
batched:

* per-round scoring is deferred -- each replication records the per-round
  coefficient matrices and scores **all** rounds against the evaluation set
  with a handful of large matrix products at the end (``_score_series``);
* per-arm model refits are incremental (see
  :class:`~repro.core.models.LeastSquaresModel`);
* replications are independent and can run in a process pool
  (``SimulationConfig(n_workers=...)`` via
  :func:`~repro.evaluation.engine.run_replications`).  Each replication is
  driven by its own :class:`~numpy.random.SeedSequence` child, so the
  parallel path is bit-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.banditware import BanditWare
from repro.core.models import ArmModel, LeastSquaresModel, RecursiveLeastSquaresModel, RidgeModel
from repro.core.policies import (
    BanditPolicy,
    DecayingEpsilonGreedyPolicy,
    GreedyPolicy,
    LinUCBPolicy,
    RandomPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.selection import ToleranceConfig
from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, ResourceCostModel
from repro.workloads.base import WorkloadModel

__all__ = ["SimulationConfig", "SimulationResult", "OnlineSimulation"]


_ARM_MODEL_FACTORIES: Dict[str, Callable[[int], ArmModel]] = {
    "ols": lambda m: LeastSquaresModel(m),
    # The seed implementation's literal per-round lstsq refit; kept as the
    # reference/baseline for the incremental default (see bench_engine).
    "ols_full": lambda m: LeastSquaresModel(m, solver="full"),
    "ridge": lambda m: RidgeModel(m, alpha=1.0),
    "rls": lambda m: RecursiveLeastSquaresModel(m, regularization=1.0),
}


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one replicated online simulation.

    The defaults follow the paper: ``epsilon0 = 1``, ``decay = 0.99``, strict
    tolerance, per-arm batch least squares.
    """

    n_rounds: int = 50
    n_simulations: int = 10
    epsilon0: float = 1.0
    decay: float = 0.99
    tolerance_ratio: float = 0.0
    tolerance_seconds: float = 0.0
    policy: str = "epsilon_greedy"
    arm_model: str = "ols"
    evaluation_subsample: Optional[int] = None
    normalize_features: bool = True
    seed: int = 0
    #: Number of worker processes for the replication loop.  ``1`` (default)
    #: runs serially in-process; ``n`` runs replications in a pool of ``n``
    #: processes with bit-identical results (each replication owns an
    #: independent child seed).  Falls back to threads where process pools
    #: are unavailable (e.g. sandboxed environments).
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {self.n_rounds}")
        if self.n_simulations < 1:
            raise ValueError(f"n_simulations must be >= 1, got {self.n_simulations}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.policy not in ("epsilon_greedy", "greedy", "random", "linucb", "thompson"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.arm_model not in _ARM_MODEL_FACTORIES:
            raise ValueError(
                f"unknown arm_model {self.arm_model!r}; choose from {sorted(_ARM_MODEL_FACTORIES)}"
            )
        if self.evaluation_subsample is not None and self.evaluation_subsample < 1:
            raise ValueError("evaluation_subsample must be >= 1 when given")

    @property
    def tolerance(self) -> ToleranceConfig:
        return ToleranceConfig(ratio=self.tolerance_ratio, seconds=self.tolerance_seconds)

    def make_policy(self) -> BanditPolicy:
        """Instantiate the configured policy.

        The engine's policies skip the audit-only estimate bookkeeping on
        exploration rounds (``audit_estimates=False``); this does not change
        any decision.
        """
        if self.policy == "epsilon_greedy":
            return DecayingEpsilonGreedyPolicy(
                epsilon0=self.epsilon0,
                decay=self.decay,
                tolerance=self.tolerance,
                audit_estimates=False,
            )
        if self.policy == "greedy":
            return GreedyPolicy(tolerance=self.tolerance)
        if self.policy == "random":
            return RandomPolicy()
        if self.policy == "linucb":
            return LinUCBPolicy(alpha=1.0)
        return ThompsonSamplingPolicy()

    def make_arm_model_factory(self) -> Callable[[int], ArmModel]:
        return _ARM_MODEL_FACTORIES[self.arm_model]


@dataclass
class SimulationResult:
    """Per-round series across all replications, plus the reference lines.

    Attributes
    ----------
    rmse, accuracy:
        Arrays of shape ``(n_simulations, n_rounds)``.
    reference_rmse, reference_accuracy:
        Scores of the full-data fit (the paper's red/orange line).
    random_accuracy:
        The random-guess accuracy ``1 / |H|``.
    config:
        The configuration the simulation ran with.
    """

    rmse: np.ndarray
    accuracy: np.ndarray
    reference_rmse: float
    reference_accuracy: float
    random_accuracy: float
    config: SimulationConfig

    # ------------------------------------------------------------------ #
    @property
    def n_rounds(self) -> int:
        return self.rmse.shape[1]

    @property
    def n_simulations(self) -> int:
        return self.rmse.shape[0]

    @property
    def rounds(self) -> np.ndarray:
        """Round indices (1-based, as plotted in the paper)."""
        return np.arange(1, self.n_rounds + 1)

    def mean_rmse(self) -> np.ndarray:
        return self.rmse.mean(axis=0)

    def std_rmse(self) -> np.ndarray:
        return self.rmse.std(axis=0)

    def mean_accuracy(self) -> np.ndarray:
        return self.accuracy.mean(axis=0)

    def std_accuracy(self) -> np.ndarray:
        return self.accuracy.std(axis=0)

    def rmse_at(self, round_index: int) -> Tuple[float, float]:
        """Mean and std of the RMSE at a (1-based) round."""
        idx = self._round_to_index(round_index)
        return float(self.mean_rmse()[idx]), float(self.std_rmse()[idx])

    def accuracy_at(self, round_index: int) -> Tuple[float, float]:
        """Mean and std of the accuracy at a (1-based) round."""
        idx = self._round_to_index(round_index)
        return float(self.mean_accuracy()[idx]), float(self.std_accuracy()[idx])

    def rmse_gap_to_reference(self, round_index: int) -> float:
        """Relative gap ``(rmse - reference) / reference`` at a round.

        The paper's headline claim is a gap of ~17.9 % at round 25 and
        ~12.6 % at round 50 for the BP3D experiment.
        """
        mean, _ = self.rmse_at(round_index)
        if self.reference_rmse == 0:
            return float("inf") if mean > 0 else 0.0
        return (mean - self.reference_rmse) / self.reference_rmse

    def _round_to_index(self, round_index: int) -> int:
        if not 1 <= round_index <= self.n_rounds:
            raise ValueError(
                f"round_index must be in [1, {self.n_rounds}], got {round_index}"
            )
        return round_index - 1

    def to_frame(self) -> DataFrame:
        """Per-round summary table (round, mean/std RMSE, mean/std accuracy)."""
        return DataFrame(
            {
                "round": self.rounds,
                "rmse_mean": self.mean_rmse(),
                "rmse_std": self.std_rmse(),
                "accuracy_mean": self.mean_accuracy(),
                "accuracy_std": self.std_accuracy(),
            }
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers used by tests and EXPERIMENTS.md."""
        final = self.n_rounds
        return {
            "n_rounds": float(self.n_rounds),
            "n_simulations": float(self.n_simulations),
            "final_rmse_mean": self.rmse_at(final)[0],
            "final_accuracy_mean": self.accuracy_at(final)[0],
            "reference_rmse": self.reference_rmse,
            "reference_accuracy": self.reference_accuracy,
            "random_accuracy": self.random_accuracy,
            "final_rmse_gap": self.rmse_gap_to_reference(final),
        }


class OnlineSimulation:
    """Replicated online evaluation of a recommender configuration.

    Parameters
    ----------
    workload:
        The application model workflows and runtimes are drawn from.
    catalog:
        Hardware configurations (the arm space).
    evaluation_frame:
        The fixed historical dataset the per-round RMSE and accuracy are
        scored against.  Must contain the workload's feature columns plus
        ``hardware`` and ``runtime_seconds``.
    config:
        Simulation parameters.
    feature_names:
        Context features to use; defaults to all of the workload's features.
        Experiment 3 uses only ``size`` and Figure 6 uses only ``area``.
    cost_model:
        Resource-efficiency model used both by the bandit's tolerant selection
        and by the vectorised accuracy scorer.
    sample_from_frame:
        When true (the default), each round's incoming workflow is a row drawn
        uniformly from the evaluation dataset -- the paper replays its
        historical datasets, and this also keeps the subset experiments
        (Experiment 3) training on the truncated data.  When false, workflows
        are sampled fresh from the workload model.
    """

    def __init__(
        self,
        workload: WorkloadModel,
        catalog: HardwareCatalog,
        evaluation_frame: DataFrame,
        config: Optional[SimulationConfig] = None,
        feature_names: Optional[Sequence[str]] = None,
        cost_model: Optional[ResourceCostModel] = None,
        sample_from_frame: bool = True,
    ):
        self.workload = workload
        self.catalog = catalog
        self.config = config or SimulationConfig()
        self.feature_names = list(feature_names) if feature_names else list(workload.feature_names)
        self.cost_model = cost_model or ResourceCostModel()
        self.sample_from_frame = bool(sample_from_frame)
        required = {"hardware", "runtime_seconds", *self.feature_names}
        missing = [c for c in required if c not in evaluation_frame]
        if missing:
            raise KeyError(
                f"evaluation frame is missing columns {sorted(missing)}; "
                f"has {evaluation_frame.columns}"
            )
        self.evaluation_frame = evaluation_frame
        self._prepare_evaluation_arrays()

    # ------------------------------------------------------------------ #
    def _prepare_evaluation_arrays(self) -> None:
        frame = self.evaluation_frame
        cfg = self.config
        if cfg.evaluation_subsample is not None and cfg.evaluation_subsample < len(frame):
            rng = np.random.default_rng(cfg.seed + 987_654_321)
            idx = rng.choice(len(frame), size=cfg.evaluation_subsample, replace=False)
            frame = frame.take(np.sort(idx))
        self._eval_frame = frame
        raw_X = frame.to_numpy(self.feature_names, dtype=float)
        # Feature standardisation.  The runtime model stays linear (scaling is
        # an invertible linear map), but the early under-determined
        # least-squares fits become far better conditioned when features such
        # as `area` (~1e6 m²) and `run_max_mem_rss_bytes` (~1e10) are brought
        # to comparable magnitudes.  Disable via config.normalize_features to
        # reproduce the raw-units behaviour.
        if self.config.normalize_features:
            self._feature_mean = raw_X.mean(axis=0)
            std = raw_X.std(axis=0)
            self._feature_std = np.where(std > 0, std, 1.0)
        else:
            self._feature_mean = np.zeros(raw_X.shape[1])
            self._feature_std = np.ones(raw_X.shape[1])
        self._X_eval = (raw_X - self._feature_mean) / self._feature_std
        self._y_eval = frame["runtime_seconds"].to_numpy(float)
        hardware_names = frame["hardware"].values
        self._hw_idx = np.asarray(
            [self.catalog.index_of(str(name)) for name in hardware_names], dtype=int
        )
        # Ground-truth expected runtimes (and noise scales) of every
        # evaluation workflow on every arm.  The noise matrix feeds the
        # engine's replay fast path: when a round replays pool row ``i`` on
        # arm ``j``, the observation is ``max(normal(truth, sigma), ...)``
        # exactly as WorkloadModel.observed_runtime computes it.
        n_eval, n_arms = len(frame), len(self.catalog)
        truth = np.empty((n_eval, n_arms))
        sigma = np.empty((n_eval, n_arms))
        for i, row in enumerate(frame.iterrows()):
            features = {name: float(row[name]) for name in self.workload.feature_names if name in row}
            for j, hw in enumerate(self.catalog):
                truth[i, j] = self.workload.expected_runtime(features, hw)
                sigma[i, j] = self.workload.noise_scale(features, hw)
        self._truth = truth
        self._pool_sigma = sigma
        # The replay fast path is only valid when observations come from the
        # pool AND the workload has not customised observed_runtime.
        self._env_fast = (
            self.sample_from_frame
            and type(self.workload).observed_runtime is WorkloadModel.observed_runtime
        )
        # Efficiency ranking of arms (lower rank = more resource-efficient).
        footprints = np.asarray([self.cost_model.footprint(hw) for hw in self.catalog])
        order = np.argsort(footprints, kind="stable")
        ranks = np.empty(n_arms, dtype=float)
        ranks[order] = np.arange(n_arms)
        self._efficiency_rank = ranks
        # Arms sorted most-efficient first, and each arm's position in that
        # order -- the batched scorer works in efficiency-ordered arm layout.
        self._efficiency_order = order.astype(np.intp)
        inverse = np.empty(n_arms, dtype=np.intp)
        inverse[order] = np.arange(n_arms)
        self._efficiency_pos = inverse
        # Acceptable arms per evaluation workflow under the configured tolerance.
        tol = self.config.tolerance
        limits = tol.limit(truth.min(axis=1))
        self._acceptable = truth <= limits[:, None]
        # Layouts used by the batched scorer: features x rows, arms x rows.
        self._XT_eval = np.ascontiguousarray(self._X_eval.T)
        self._acceptable_T = np.ascontiguousarray(self._acceptable.T)
        # Workflow replay pool: the features of every evaluation row, in the
        # workload's own feature space (used when sample_from_frame is true).
        self._workflow_pool = [
            {
                name: float(row[name])
                for name in self.workload.feature_names
                if name in row
            }
            for row in frame.iterrows()
        ]
        # Scaled context vector of every pool row (row i of the standardised
        # evaluation matrix is exactly _scale_context(pool[i]) in vector form).
        self._pool_contexts = self._X_eval

    # ------------------------------------------------------------------ #
    def _coefficient_matrices(self, bandit: BanditWare) -> Tuple[np.ndarray, np.ndarray]:
        W = np.vstack([model.coefficients for model in bandit.models])
        b = np.asarray([model.intercept for model in bandit.models])
        return W, b

    def _score_models(self, W: np.ndarray, b: np.ndarray) -> Tuple[float, float]:
        """Vectorised RMSE + tolerant-selection accuracy on the evaluation set."""
        rmse, accuracy = self._score_series(W[None, :, :], np.asarray(b, dtype=float)[None, :])
        return float(rmse[0]), float(accuracy[0])

    def _score_series(self, W_hist: np.ndarray, b_hist: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Score a whole series of per-round coefficient matrices at once.

        ``W_hist`` has shape ``(n_rounds, n_arms, n_features)`` and ``b_hist``
        ``(n_rounds, n_arms)``.  Returns per-round RMSE and accuracy arrays.
        Rounds are processed in chunks so the ``(rounds, n_eval, n_arms)``
        prediction tensor stays within a bounded memory footprint.
        """
        R = W_hist.shape[0]
        E = len(self._y_eval)
        K = W_hist.shape[1]
        rows = np.arange(E)
        rmse = np.empty(R)
        accuracy = np.empty(R)
        tol = self.config.tolerance
        strict = tol.is_strict
        order = self._efficiency_order
        # Position of each evaluation row's own arm in efficiency-ordered layout.
        own_pos = self._efficiency_pos[self._hw_idx]
        # Correctness of each (efficiency-ordered) arm per evaluation row;
        # boolean planes keep the selection logic byte-wide.
        acceptable_ord = self._acceptable_T[order]
        chunk = max(1, int(4_000_000 // max(E * K, 1)))
        for start in range(0, R, chunk):
            stop = min(start + chunk, R)
            n_chunk = stop - start
            # Work with arms sorted most-efficient first: picking the first
            # candidate along that axis IS the most-efficient-candidate rule.
            W_ord = W_hist[start:stop][:, order, :]
            b_ord = b_hist[start:stop][:, order]
            # One large GEMM instead of `n_chunk` tiny batched ones:
            # (r*k, m) @ (m, e), then viewed as (r, k, e).
            flat = W_ord.reshape(n_chunk * K, -1) @ self._XT_eval
            flat += b_ord.reshape(n_chunk * K, 1)
            preds = flat.reshape(n_chunk, K, E)
            predicted = preds[:, own_pos, rows]
            diff = predicted - self._y_eval
            rmse[start:stop] = np.sqrt(np.einsum("re,re->r", diff, diff) / E)

            if strict and K == 3:
                # Strict tolerance, three arms (the paper's NDP triple): the
                # chosen arm is the efficiency-first minimum, resolvable with
                # two pairwise comparisons and no explicit min/limit planes.
                p0, p1, p2 = preds[:, 0, :], preds[:, 1, :], preds[:, 2, :]
                c0 = (p0 <= p1) & (p0 <= p2)
                c1 = p1 <= p2
                correct = (c0 & acceptable_ord[0]) | (
                    ~c0 & ((c1 & acceptable_ord[1]) | (~c1 & acceptable_ord[2]))
                )
            else:
                # Reduce over the (small) arm axis as a chain of elementwise
                # minima on contiguous planes -- faster than a strided reduce.
                fastest = preds[:, 0, :].copy()
                for pos in range(1, K):
                    np.minimum(fastest, preds[:, pos, :], out=fastest)
                limit = np.asarray(tol.limit(fastest))
                # First candidate in efficiency order wins; the clamped
                # tolerance limit guarantees at least one.
                correct = np.broadcast_to(acceptable_ord[K - 1], (n_chunk, E))
                for pos in range(K - 2, -1, -1):
                    correct = np.where(
                        preds[:, pos, :] <= limit, acceptable_ord[pos], correct
                    )
            accuracy[start:stop] = np.count_nonzero(correct, axis=1) / E
        return rmse, accuracy

    def _scale_context(self, features: Dict[str, float]) -> Dict[str, float]:
        """Apply the evaluation-set standardisation to one workflow's features."""
        return {
            name: (float(features[name]) - self._feature_mean[i]) / self._feature_std[i]
            for i, name in enumerate(self.feature_names)
        }

    def _reference_scores(self) -> Tuple[float, float]:
        """Full-data per-arm least squares, fitted in the same (scaled) space."""
        n_features = len(self.feature_names)
        W = np.zeros((len(self.catalog), n_features))
        b = np.zeros(len(self.catalog))
        for j in range(len(self.catalog)):
            mask = self._hw_idx == j
            if not np.any(mask):
                continue
            model = LeastSquaresModel(n_features)
            model.fit(self._X_eval[mask], self._y_eval[mask])
            W[j] = model.coefficients
            b[j] = model.intercept
        return self._score_models(W, b)

    # ------------------------------------------------------------------ #
    def _run_replication(self, seed_seq: np.random.SeedSequence) -> Tuple[np.ndarray, np.ndarray]:
        """Play one replication and return its per-round ``(rmse, accuracy)``.

        The round loop lives in the unified engine
        (:func:`~repro.evaluation.engine.run_online_replication`); this is a
        convenience delegate kept for callers that drive replications
        one at a time.
        """
        from repro.evaluation.engine import run_online_replication

        return run_online_replication(self, seed_seq)

    def run(self) -> SimulationResult:
        """Run all replications (serial or pooled) and return the collected series.

        The replication loop, its seeding discipline and the process-pool
        plumbing are the engine's (:mod:`repro.evaluation.engine`); this
        frontend contributes the scoring and the result container.
        """
        from repro.evaluation.engine import run_replications

        cfg = self.config
        outcomes = run_replications(self)
        rmse_series = np.vstack([rmse for rmse, _ in outcomes])
        accuracy_series = np.vstack([acc for _, acc in outcomes])
        reference_rmse, reference_accuracy = self._reference_scores()
        return SimulationResult(
            rmse=rmse_series,
            accuracy=accuracy_series,
            reference_rmse=reference_rmse,
            reference_accuracy=reference_accuracy,
            random_accuracy=1.0 / len(self.catalog),
            config=cfg,
        )
