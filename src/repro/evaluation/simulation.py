"""The replicated online simulation behind every figure in the paper.

One *simulation* plays Algorithm 1 for ``n_rounds`` rounds against a workload
model: each round a workflow arrives, the bandit recommends a hardware
configuration, the (noisy) runtime is observed, and the per-arm models are
refit.  After every round, the bandit's current models are scored against a
fixed evaluation dataset:

* **RMSE** -- each evaluation row's runtime is predicted with the bandit's
  model for the hardware the row actually ran on;
* **accuracy** -- for each evaluation workflow, the bandit's (greedy,
  tolerant) recommendation is compared against the set of hardware whose true
  expected runtime is within the same tolerance of the optimum.

The whole run is repeated ``n_simulations`` times with independent random
streams; the figures plot the per-round mean and spread, against the
*full-fit* reference (per-arm least squares on the entire dataset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.banditware import BanditWare
from repro.core.models import ArmModel, LeastSquaresModel, RecursiveLeastSquaresModel, RidgeModel
from repro.core.policies import (
    BanditPolicy,
    DecayingEpsilonGreedyPolicy,
    GreedyPolicy,
    LinUCBPolicy,
    RandomPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.selection import ToleranceConfig
from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, ResourceCostModel
from repro.utils.rng import SeedLike, SeedSequencePool
from repro.workloads.base import WorkloadModel

__all__ = ["SimulationConfig", "SimulationResult", "OnlineSimulation"]


_ARM_MODEL_FACTORIES: Dict[str, Callable[[int], ArmModel]] = {
    "ols": lambda m: LeastSquaresModel(m),
    "ridge": lambda m: RidgeModel(m, alpha=1.0),
    "rls": lambda m: RecursiveLeastSquaresModel(m, regularization=1.0),
}


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one replicated online simulation.

    The defaults follow the paper: ``epsilon0 = 1``, ``decay = 0.99``, strict
    tolerance, per-arm batch least squares.
    """

    n_rounds: int = 50
    n_simulations: int = 10
    epsilon0: float = 1.0
    decay: float = 0.99
    tolerance_ratio: float = 0.0
    tolerance_seconds: float = 0.0
    policy: str = "epsilon_greedy"
    arm_model: str = "ols"
    evaluation_subsample: Optional[int] = None
    normalize_features: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {self.n_rounds}")
        if self.n_simulations < 1:
            raise ValueError(f"n_simulations must be >= 1, got {self.n_simulations}")
        if self.policy not in ("epsilon_greedy", "greedy", "random", "linucb", "thompson"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.arm_model not in _ARM_MODEL_FACTORIES:
            raise ValueError(
                f"unknown arm_model {self.arm_model!r}; choose from {sorted(_ARM_MODEL_FACTORIES)}"
            )
        if self.evaluation_subsample is not None and self.evaluation_subsample < 1:
            raise ValueError("evaluation_subsample must be >= 1 when given")

    @property
    def tolerance(self) -> ToleranceConfig:
        return ToleranceConfig(ratio=self.tolerance_ratio, seconds=self.tolerance_seconds)

    def make_policy(self) -> BanditPolicy:
        """Instantiate the configured policy."""
        if self.policy == "epsilon_greedy":
            return DecayingEpsilonGreedyPolicy(
                epsilon0=self.epsilon0, decay=self.decay, tolerance=self.tolerance
            )
        if self.policy == "greedy":
            return GreedyPolicy(tolerance=self.tolerance)
        if self.policy == "random":
            return RandomPolicy()
        if self.policy == "linucb":
            return LinUCBPolicy(alpha=1.0)
        return ThompsonSamplingPolicy()

    def make_arm_model_factory(self) -> Callable[[int], ArmModel]:
        return _ARM_MODEL_FACTORIES[self.arm_model]


@dataclass
class SimulationResult:
    """Per-round series across all replications, plus the reference lines.

    Attributes
    ----------
    rmse, accuracy:
        Arrays of shape ``(n_simulations, n_rounds)``.
    reference_rmse, reference_accuracy:
        Scores of the full-data fit (the paper's red/orange line).
    random_accuracy:
        The random-guess accuracy ``1 / |H|``.
    config:
        The configuration the simulation ran with.
    """

    rmse: np.ndarray
    accuracy: np.ndarray
    reference_rmse: float
    reference_accuracy: float
    random_accuracy: float
    config: SimulationConfig

    # ------------------------------------------------------------------ #
    @property
    def n_rounds(self) -> int:
        return self.rmse.shape[1]

    @property
    def n_simulations(self) -> int:
        return self.rmse.shape[0]

    @property
    def rounds(self) -> np.ndarray:
        """Round indices (1-based, as plotted in the paper)."""
        return np.arange(1, self.n_rounds + 1)

    def mean_rmse(self) -> np.ndarray:
        return self.rmse.mean(axis=0)

    def std_rmse(self) -> np.ndarray:
        return self.rmse.std(axis=0)

    def mean_accuracy(self) -> np.ndarray:
        return self.accuracy.mean(axis=0)

    def std_accuracy(self) -> np.ndarray:
        return self.accuracy.std(axis=0)

    def rmse_at(self, round_index: int) -> Tuple[float, float]:
        """Mean and std of the RMSE at a (1-based) round."""
        idx = self._round_to_index(round_index)
        return float(self.mean_rmse()[idx]), float(self.std_rmse()[idx])

    def accuracy_at(self, round_index: int) -> Tuple[float, float]:
        """Mean and std of the accuracy at a (1-based) round."""
        idx = self._round_to_index(round_index)
        return float(self.mean_accuracy()[idx]), float(self.std_accuracy()[idx])

    def rmse_gap_to_reference(self, round_index: int) -> float:
        """Relative gap ``(rmse - reference) / reference`` at a round.

        The paper's headline claim is a gap of ~17.9 % at round 25 and
        ~12.6 % at round 50 for the BP3D experiment.
        """
        mean, _ = self.rmse_at(round_index)
        if self.reference_rmse == 0:
            return float("inf") if mean > 0 else 0.0
        return (mean - self.reference_rmse) / self.reference_rmse

    def _round_to_index(self, round_index: int) -> int:
        if not 1 <= round_index <= self.n_rounds:
            raise ValueError(
                f"round_index must be in [1, {self.n_rounds}], got {round_index}"
            )
        return round_index - 1

    def to_frame(self) -> DataFrame:
        """Per-round summary table (round, mean/std RMSE, mean/std accuracy)."""
        return DataFrame(
            {
                "round": self.rounds,
                "rmse_mean": self.mean_rmse(),
                "rmse_std": self.std_rmse(),
                "accuracy_mean": self.mean_accuracy(),
                "accuracy_std": self.std_accuracy(),
            }
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers used by tests and EXPERIMENTS.md."""
        final = self.n_rounds
        return {
            "n_rounds": float(self.n_rounds),
            "n_simulations": float(self.n_simulations),
            "final_rmse_mean": self.rmse_at(final)[0],
            "final_accuracy_mean": self.accuracy_at(final)[0],
            "reference_rmse": self.reference_rmse,
            "reference_accuracy": self.reference_accuracy,
            "random_accuracy": self.random_accuracy,
            "final_rmse_gap": self.rmse_gap_to_reference(final),
        }


class OnlineSimulation:
    """Replicated online evaluation of a recommender configuration.

    Parameters
    ----------
    workload:
        The application model workflows and runtimes are drawn from.
    catalog:
        Hardware configurations (the arm space).
    evaluation_frame:
        The fixed historical dataset the per-round RMSE and accuracy are
        scored against.  Must contain the workload's feature columns plus
        ``hardware`` and ``runtime_seconds``.
    config:
        Simulation parameters.
    feature_names:
        Context features to use; defaults to all of the workload's features.
        Experiment 3 uses only ``size`` and Figure 6 uses only ``area``.
    cost_model:
        Resource-efficiency model used both by the bandit's tolerant selection
        and by the vectorised accuracy scorer.
    sample_from_frame:
        When true (the default), each round's incoming workflow is a row drawn
        uniformly from the evaluation dataset -- the paper replays its
        historical datasets, and this also keeps the subset experiments
        (Experiment 3) training on the truncated data.  When false, workflows
        are sampled fresh from the workload model.
    """

    def __init__(
        self,
        workload: WorkloadModel,
        catalog: HardwareCatalog,
        evaluation_frame: DataFrame,
        config: Optional[SimulationConfig] = None,
        feature_names: Optional[Sequence[str]] = None,
        cost_model: Optional[ResourceCostModel] = None,
        sample_from_frame: bool = True,
    ):
        self.workload = workload
        self.catalog = catalog
        self.config = config or SimulationConfig()
        self.feature_names = list(feature_names) if feature_names else list(workload.feature_names)
        self.cost_model = cost_model or ResourceCostModel()
        self.sample_from_frame = bool(sample_from_frame)
        required = {"hardware", "runtime_seconds", *self.feature_names}
        missing = [c for c in required if c not in evaluation_frame]
        if missing:
            raise KeyError(
                f"evaluation frame is missing columns {sorted(missing)}; "
                f"has {evaluation_frame.columns}"
            )
        self.evaluation_frame = evaluation_frame
        self._prepare_evaluation_arrays()

    # ------------------------------------------------------------------ #
    def _prepare_evaluation_arrays(self) -> None:
        frame = self.evaluation_frame
        cfg = self.config
        if cfg.evaluation_subsample is not None and cfg.evaluation_subsample < len(frame):
            rng = np.random.default_rng(cfg.seed + 987_654_321)
            idx = rng.choice(len(frame), size=cfg.evaluation_subsample, replace=False)
            frame = frame.take(np.sort(idx))
        self._eval_frame = frame
        raw_X = frame.to_numpy(self.feature_names, dtype=float)
        # Feature standardisation.  The runtime model stays linear (scaling is
        # an invertible linear map), but the early under-determined
        # least-squares fits become far better conditioned when features such
        # as `area` (~1e6 m²) and `run_max_mem_rss_bytes` (~1e10) are brought
        # to comparable magnitudes.  Disable via config.normalize_features to
        # reproduce the raw-units behaviour.
        if self.config.normalize_features:
            self._feature_mean = raw_X.mean(axis=0)
            std = raw_X.std(axis=0)
            self._feature_std = np.where(std > 0, std, 1.0)
        else:
            self._feature_mean = np.zeros(raw_X.shape[1])
            self._feature_std = np.ones(raw_X.shape[1])
        self._X_eval = (raw_X - self._feature_mean) / self._feature_std
        self._y_eval = frame["runtime_seconds"].to_numpy(float)
        hardware_names = frame["hardware"].values
        self._hw_idx = np.asarray(
            [self.catalog.index_of(str(name)) for name in hardware_names], dtype=int
        )
        # Ground-truth expected runtimes of every evaluation workflow on every arm.
        n_eval, n_arms = len(frame), len(self.catalog)
        truth = np.empty((n_eval, n_arms))
        for i, row in enumerate(frame.iterrows()):
            features = {name: float(row[name]) for name in self.workload.feature_names if name in row}
            for j, hw in enumerate(self.catalog):
                truth[i, j] = self.workload.expected_runtime(features, hw)
        self._truth = truth
        # Efficiency ranking of arms (lower rank = more resource-efficient).
        footprints = np.asarray([self.cost_model.footprint(hw) for hw in self.catalog])
        order = np.argsort(footprints, kind="stable")
        ranks = np.empty(n_arms, dtype=float)
        ranks[order] = np.arange(n_arms)
        self._efficiency_rank = ranks
        # Acceptable arms per evaluation workflow under the configured tolerance.
        tol = self.config.tolerance
        limits = tol.limit(truth.min(axis=1))
        self._acceptable = truth <= limits[:, None]
        # Workflow replay pool: the features of every evaluation row, in the
        # workload's own feature space (used when sample_from_frame is true).
        self._workflow_pool = [
            {
                name: float(row[name])
                for name in self.workload.feature_names
                if name in row
            }
            for row in frame.iterrows()
        ]

    # ------------------------------------------------------------------ #
    def _coefficient_matrices(self, bandit: BanditWare) -> Tuple[np.ndarray, np.ndarray]:
        W = np.vstack([model.coefficients for model in bandit.models])
        b = np.asarray([model.intercept for model in bandit.models])
        return W, b

    def _score_models(self, W: np.ndarray, b: np.ndarray) -> Tuple[float, float]:
        """Vectorised RMSE + tolerant-selection accuracy on the evaluation set."""
        predictions_all = self._X_eval @ W.T + b  # (n_eval, n_arms)
        predicted = predictions_all[np.arange(len(self._y_eval)), self._hw_idx]
        rmse_value = float(np.sqrt(np.mean((self._y_eval - predicted) ** 2)))

        tol = self.config.tolerance
        fastest = predictions_all.min(axis=1)
        limit = tol.limit(fastest)
        candidates = predictions_all <= limit[:, None]
        # Among candidate arms pick the most resource-efficient one.
        rank_matrix = np.where(candidates, self._efficiency_rank[None, :], np.inf)
        chosen = rank_matrix.argmin(axis=1)
        correct = self._acceptable[np.arange(len(chosen)), chosen]
        accuracy_value = float(np.mean(correct))
        return rmse_value, accuracy_value

    def _scale_context(self, features: Dict[str, float]) -> Dict[str, float]:
        """Apply the evaluation-set standardisation to one workflow's features."""
        return {
            name: (float(features[name]) - self._feature_mean[i]) / self._feature_std[i]
            for i, name in enumerate(self.feature_names)
        }

    def _reference_scores(self) -> Tuple[float, float]:
        """Full-data per-arm least squares, fitted in the same (scaled) space."""
        n_features = len(self.feature_names)
        W = np.zeros((len(self.catalog), n_features))
        b = np.zeros(len(self.catalog))
        for j in range(len(self.catalog)):
            mask = self._hw_idx == j
            if not np.any(mask):
                continue
            model = LeastSquaresModel(n_features)
            model.fit(self._X_eval[mask], self._y_eval[mask])
            W[j] = model.coefficients
            b[j] = model.intercept
        return self._score_models(W, b)

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run all replications and return the collected series."""
        cfg = self.config
        pool = SeedSequencePool(cfg.seed)
        rmse_series = np.empty((cfg.n_simulations, cfg.n_rounds))
        accuracy_series = np.empty((cfg.n_simulations, cfg.n_rounds))
        for sim in range(cfg.n_simulations):
            rng = pool.generator(sim)
            bandit = BanditWare(
                catalog=self.catalog,
                feature_names=self.feature_names,
                policy=cfg.make_policy(),
                arm_model_factory=cfg.make_arm_model_factory(),
                seed=rng,
            )
            for round_idx in range(cfg.n_rounds):
                if self.sample_from_frame:
                    features = dict(self._workflow_pool[int(rng.integers(len(self._workflow_pool)))])
                else:
                    features = self.workload.sample_features(rng)
                context_features = self._scale_context(features)
                recommendation = bandit.recommend(context_features)
                runtime = self.workload.observed_runtime(features, recommendation.hardware, rng)
                bandit.observe(context_features, recommendation.hardware, runtime)
                W, b = self._coefficient_matrices(bandit)
                rmse_series[sim, round_idx], accuracy_series[sim, round_idx] = self._score_models(W, b)
        reference_rmse, reference_accuracy = self._reference_scores()
        return SimulationResult(
            rmse=rmse_series,
            accuracy=accuracy_series,
            reference_rmse=reference_rmse,
            reference_accuracy=reference_accuracy,
            random_accuracy=1.0 / len(self.catalog),
            config=cfg,
        )
