"""Plain-text rendering of result series and metric tables.

The paper communicates its results as figures; in a terminal-only
reproduction the equivalent artefact is a formatted table of the same series
(round, mean RMSE, spread, accuracy) plus the reference lines.  Benchmarks
print these tables so ``pytest benchmarks/ --benchmark-only -s`` regenerates
every figure's numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.evaluation.simulation import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (contention imports nothing back)
    from repro.evaluation.contention import ContentionResult
    from repro.evaluation.engine import ReplicationSummary

__all__ = [
    "format_series",
    "format_metric_table",
    "format_summary",
    "format_histogram",
    "format_contention_report",
    "format_kernel_profile",
    "format_replication_bands",
    "format_service_load_report",
]


def format_kernel_profile(profile: Mapping[str, float]) -> str:
    """Render a simulator kernel wall-time breakdown (``--profile`` output).

    ``profile`` is :meth:`~repro.cluster.state.KernelProfile.as_dict`:
    seconds spent in progress re-integration, scheduling passes and
    placement scoring, plus the event/reschedule counters that give the
    seconds a denominator.
    """
    reint = float(profile.get("reintegration_seconds", 0.0))
    sched = float(profile.get("scheduling_seconds", 0.0))
    place = float(profile.get("placement_seconds", 0.0))
    lines = ["kernel profile (wall seconds inside the simulator's hot paths)"]
    lines.append(
        f"  re-integration  {reint:>10.4f}s over "
        f"{int(profile.get('reschedule_calls', 0))} reschedules "
        f"({int(profile.get('pods_rescheduled', 0))} pod rate changes)"
    )
    lines.append(
        f"  scheduling      {sched:>10.4f}s over "
        f"{int(profile.get('schedule_passes', 0))} passes (includes placement)"
    )
    lines.append(
        f"  placement       {place:>10.4f}s over "
        f"{int(profile.get('placement_calls', 0))} decisions"
    )
    lines.append(f"  events processed {int(profile.get('events_processed', 0))}")
    lines.append(
        f"  event heap      {int(profile.get('events_pushed', 0))} pushed / "
        f"{int(profile.get('events_popped', 0))} handled / "
        f"{int(profile.get('events_skipped', 0))} superseded (cancelled frontier)"
    )
    return "\n".join(lines)


def _format_cell(value, width: int = 12, precision: int = 4) -> str:
    if isinstance(value, (int, np.integer)):
        return f"{value:>{width}d}"
    if isinstance(value, (float, np.floating)):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:>{width}.4g}"
        return f"{value:>{width}.{precision}f}"
    return f"{str(value):>{width}}"


def format_metric_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = " ".join(f"{name:>12}" for name in columns)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for row in rows:
        lines.append(" ".join(_format_cell(row.get(name, "")) for name in columns))
    return "\n".join(lines)


def format_series(
    result: SimulationResult,
    every: int = 5,
    title: str = "",
) -> str:
    """Render a simulation result as the per-round table the figures plot.

    ``every`` controls row density (every N-th round plus the final round).
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    rounds = result.rounds
    keep = [i for i in range(len(rounds)) if (i + 1) % every == 0 or i == 0 or i == len(rounds) - 1]
    rows = []
    mean_rmse, std_rmse = result.mean_rmse(), result.std_rmse()
    mean_acc, std_acc = result.mean_accuracy(), result.std_accuracy()
    for i in keep:
        rows.append(
            {
                "round": int(rounds[i]),
                "rmse_mean": float(mean_rmse[i]),
                "rmse_std": float(std_rmse[i]),
                "acc_mean": float(mean_acc[i]),
                "acc_std": float(std_acc[i]),
            }
        )
    table = format_metric_table(rows, title=title)
    footer = (
        f"\nreference (full fit): rmse={result.reference_rmse:.4f} "
        f"accuracy={result.reference_accuracy:.4f} | random accuracy={result.random_accuracy:.4f}"
    )
    return table + footer


def format_summary(summary: Mapping[str, float], title: str = "") -> str:
    """Render a ``{name: value}`` summary as aligned key/value lines."""
    width = max((len(k) for k in summary), default=0)
    lines = [title] if title else []
    for key, value in summary.items():
        if isinstance(value, (float, np.floating)):
            lines.append(f"{key:<{width}} : {value:.6g}")
        else:
            lines.append(f"{key:<{width}} : {value}")
    return "\n".join(lines)


def format_contention_report(
    result: "ContentionResult",
    replications: Optional["ReplicationSummary"] = None,
) -> str:
    """Render a contention scenario's queue-aware accounting as text.

    One row per tenant (accuracy, queueing, regret), followed by the
    scenario-level summary: makespan, queue-delay distribution, occupancy
    cost in resource-seconds, and the queue-inclusive regret that charges
    waiting time against the contention-free oracle.  A placement line names
    the node-choice policy the run's scheduler used, and a reward-shaping
    line appears when any tenant trains on queue- or slowdown-penalised
    targets.  Pass a :class:`~repro.evaluation.engine.ReplicationSummary`
    to append per-round mean ± 95% CI confidence bands aggregated across
    scenario replications.
    """
    rows = []
    for outcome in result.tenants.values():
        summary = outcome.summary()
        rows.append(
            {
                "tenant": outcome.tenant,
                "workflows": int(summary["rounds"]),
                "accuracy": summary["accuracy"],
                "explore": summary["exploration_fraction"],
                "queue_s": summary["total_queue_seconds"],
                "slowdown": summary["mean_slowdown"],
                "regret_s": summary["cumulative_regret"],
                "q_regret_s": summary["queue_inclusive_regret"],
            }
        )
    table = format_metric_table(
        rows, title=f"scenario {result.scenario_name!r}: {result.description}"
    )
    scenario_summary = result.summary()
    summary = format_summary(scenario_summary, title="scenario summary")
    report = f"{table}\n\n{summary}"
    report += f"\nplacement: {result.placement} (ordering and node choice are independent axes)"
    shaped = {
        tenant: mode
        for tenant, mode in result.reward_modes.items()
        if mode != "runtime"
    }
    if shaped:
        by_mode: Dict[str, List[str]] = {}
        for tenant, mode in shaped.items():
            by_mode.setdefault(mode, []).append(tenant)
        parts = [
            f"{mode} ({', '.join(sorted(tenants))})" for mode, tenants in sorted(by_mode.items())
        ]
        report += (
            "\nreward shaping: "
            + "; ".join(parts)
            + " -- these tenants train on penalised targets, not raw runtimes"
        )
    if scenario_summary.get("interference_seconds", 0.0) > 0.0:
        report += (
            "\ninterference: mean slowdown "
            f"{scenario_summary['mean_slowdown']:.3f}x, "
            f"max {scenario_summary['max_slowdown']:.3f}x, "
            f"co-residents added {scenario_summary['interference_seconds']:.1f}s "
            "over the contention-free plan"
        )
    if result.scale_events:
        kinds: Dict[str, int] = {}
        for event in result.scale_events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        actions = ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds))
        report += f"\nautoscaler: {actions}"
    if replications is not None:
        report += "\n\n" + format_replication_bands(replications)
    return report


def format_service_load_report(results: Sequence) -> str:
    """Render serving-layer load results as a table plus a backpressure line.

    ``results`` is a sequence of
    :class:`~repro.evaluation.service_load.ServiceLoadResult` (or their
    ``to_dict`` forms), typically the same mix at several shard counts.
    Latencies are reported in milliseconds of the harness's simulated clock
    (anchored to the calibrated real per-request cost -- the ``clock`` field
    says which model produced the numbers).
    """
    rows = []
    dicts = [r.to_dict() if hasattr(r, "to_dict") else dict(r) for r in results]
    for r in dicts:
        rows.append(
            {
                "mix": r["mix"],
                "shards": int(r["n_shards"]),
                "rps": float(r["throughput_rps"]),
                "p50_ms": float(r["latency_p50"]) * 1e3,
                "p95_ms": float(r["latency_p95"]) * 1e3,
                "p99_ms": float(r["latency_p99"]) * 1e3,
                "completed": int(r["completed"]),
                "rejected": int(r["rejected_admissions"]),
                "retries": int(r["retries"]),
                "abandoned": int(r["abandoned"]),
            }
        )
    table = format_metric_table(rows, title="serving-layer load (simulated clock)")
    total_rejected = sum(r["rejected_admissions"] for r in dicts)
    total_abandoned = sum(r["abandoned"] for r in dicts)
    cost = dicts[0]["cost_per_request"] if dicts else float("nan")
    lines = [
        table,
        (
            "backpressure: every overload is an explicit reject-with-retry-after "
            f"({total_rejected} rejections, {total_abandoned} abandoned after max "
            "retries; nothing dropped silently)"
        ),
        (
            f"clock: simulated, anchored to a calibrated {cost * 1e3:.3f} ms/request "
            "real serving cost (same constant for every shard count)"
        ),
    ]
    return "\n".join(lines)


def format_replication_bands(
    replications: "ReplicationSummary", every: int = 8
) -> str:
    """Render a replication summary as mean ± std headlines plus band rows.

    The headline block reports each scalar as ``mean ± std`` across
    replications; the table samples every ``every``-th completion (plus the
    first and last) of the cumulative queue-inclusive-regret and running
    mean-slowdown curves with their 95% confidence bands.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    lines = [
        f"replications: {replications.n_replications} seeds "
        f"({replications.seeds[0]}..{replications.seeds[-1]}), "
        f"{replications.n_rounds} workflows each"
    ]
    for key, (mean, std) in replications.summary().items():
        lines.append(f"{key:<30} : {mean:.6g} ± {std:.6g}")
    q_band = replications.band("queue_regret")
    s_band = replications.band("slowdown")
    n = replications.n_rounds
    keep = [i for i in range(n) if (i + 1) % every == 0 or i == 0 or i == n - 1]
    rows = []
    for i in keep:
        rows.append(
            {
                "round": i + 1,
                "q_regret_mean": float(q_band["mean"][i]),
                "q_regret_lo": float(q_band["lo"][i]),
                "q_regret_hi": float(q_band["hi"][i]),
                "slowdown_mean": float(s_band["mean"][i]),
                "slowdown_lo": float(s_band["lo"][i]),
                "slowdown_hi": float(s_band["hi"][i]),
            }
        )
    table = format_metric_table(
        rows,
        title="per-round mean and 95% CI across replications "
        "(cumulative queue-inclusive regret, running mean slowdown)",
    )
    return "\n".join(lines) + "\n\n" + table


def format_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """A small ASCII histogram (used for the RMSE/R² distributions of Figures 5 and 8)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("histogram requires at least one value")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:>10.4g}, {hi:>10.4g}) {count:>5d} {bar}")
    return "\n".join(lines)
