"""Pre-configured experiment definitions matching the paper's figures.

Each of the paper's bandit figures (4, 6, 7, 9, 10, 11, 12) is one
combination of dataset, context features, tolerance and simulation budget.
:func:`build_experiment` encodes those combinations by name so benchmarks,
examples and EXPERIMENTS.md all run exactly the same configurations, and
:func:`run_experiment` executes one and returns both the raw simulation
result and the derived comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data import (
    build_bp3d_dataset,
    build_cycles_dataset,
    build_matmul_dataset,
)
from repro.data.splits import truncate_by_threshold
from repro.dataframe import DataFrame
from repro.evaluation.simulation import OnlineSimulation, SimulationConfig, SimulationResult
from repro.hardware import HardwareCatalog
from repro.workloads.base import WorkloadModel

__all__ = ["ExperimentDefinition", "ExperimentResult", "build_experiment", "run_experiment", "EXPERIMENT_NAMES"]


@dataclass
class ExperimentDefinition:
    """Everything needed to run one of the paper's bandit experiments."""

    name: str
    description: str
    workload: WorkloadModel
    catalog: HardwareCatalog
    evaluation_frame: DataFrame
    feature_names: List[str]
    config: SimulationConfig
    paper_reference: str = ""

    def simulation(self) -> OnlineSimulation:
        """Instantiate the replicated online simulation for this experiment."""
        return OnlineSimulation(
            workload=self.workload,
            catalog=self.catalog,
            evaluation_frame=self.evaluation_frame,
            config=self.config,
            feature_names=self.feature_names,
        )


@dataclass
class ExperimentResult:
    """An experiment's simulation result plus convenience comparisons."""

    definition: ExperimentDefinition
    result: SimulationResult

    def summary(self) -> Dict[str, float]:
        data = self.result.summary()
        data["rmse_gap_round_25"] = (
            self.result.rmse_gap_to_reference(min(25, self.result.n_rounds))
        )
        data["accuracy_vs_random"] = (
            self.result.accuracy_at(self.result.n_rounds)[0] - self.result.random_accuracy
        )
        return data


#: Experiment names accepted by :func:`build_experiment`.
EXPERIMENT_NAMES = (
    "cycles_synthetic",          # Figure 4 (and the fits behind Figure 3)
    "bp3d_all_features",         # Figure 7
    "bp3d_area_only",            # Figure 6
    "matmul_full_no_tolerance",      # Figure 9
    "matmul_subset_no_tolerance",    # Figure 10
    "matmul_full_tolerance_20s",     # Figure 11
    "matmul_subset_tolerance_5pct",  # Figure 12
)


def build_experiment(
    name: str,
    n_simulations: Optional[int] = None,
    n_rounds: Optional[int] = None,
    evaluation_subsample: Optional[int] = None,
    seed: int = 0,
    n_workers: int = 1,
) -> ExperimentDefinition:
    """Build a named experiment definition.

    ``n_simulations`` / ``n_rounds`` default to the paper's settings for that
    experiment but can be reduced for quick runs (the test suite uses small
    values; the benchmarks use the paper's).  ``n_workers > 1`` runs the
    replications in a process pool, bit-identical to the serial path.
    """
    if name == "cycles_synthetic":
        bundle = build_cycles_dataset()
        config = SimulationConfig(
            n_rounds=n_rounds or 100,
            n_simulations=n_simulations or 10,
            tolerance_seconds=20.0,
            evaluation_subsample=evaluation_subsample,
            seed=seed,
            n_workers=n_workers,
        )
        return ExperimentDefinition(
            name=name,
            description="Cycles on 4 synthetic hardware settings, tolerance 20 s (Figures 3-4)",
            workload=bundle.workload,
            catalog=bundle.catalog,
            evaluation_frame=bundle.frame,
            feature_names=["num_tasks"],
            config=config,
            paper_reference="Figures 3, 4a, 4b",
        )

    if name in ("bp3d_all_features", "bp3d_area_only"):
        bundle = build_bp3d_dataset()
        features = bundle.feature_names if name == "bp3d_all_features" else ["area"]
        config = SimulationConfig(
            n_rounds=n_rounds or 50,
            n_simulations=n_simulations or 100,
            evaluation_subsample=evaluation_subsample,
            seed=seed,
            n_workers=n_workers,
        )
        reference = "Figures 7a, 7b" if name == "bp3d_all_features" else "Figure 6"
        return ExperimentDefinition(
            name=name,
            description=f"BurnPro3D on the NDP triple using {'all features' if len(features) > 1 else 'area only'}",
            workload=bundle.workload,
            catalog=bundle.catalog,
            evaluation_frame=bundle.frame,
            feature_names=features,
            config=config,
            paper_reference=reference,
        )

    if name.startswith("matmul_"):
        bundle = build_matmul_dataset()
        frame = bundle.frame
        if "subset" in name:
            frame = truncate_by_threshold(frame, "size", 5000.0, keep="above")
        tolerance_seconds = 20.0 if name.endswith("tolerance_20s") else 0.0
        tolerance_ratio = 0.05 if name.endswith("tolerance_5pct") else 0.0
        figure = {
            "matmul_full_no_tolerance": "Figures 9a, 9b",
            "matmul_subset_no_tolerance": "Figures 10a, 10b",
            "matmul_full_tolerance_20s": "Figures 11a, 11b",
            "matmul_subset_tolerance_5pct": "Figures 12a, 12b",
        }.get(name)
        if figure is None:
            raise ValueError(f"unknown experiment {name!r}; choose from {EXPERIMENT_NAMES}")
        config = SimulationConfig(
            n_rounds=n_rounds or 100,
            n_simulations=n_simulations or 10,
            tolerance_seconds=tolerance_seconds,
            tolerance_ratio=tolerance_ratio,
            evaluation_subsample=evaluation_subsample,
            seed=seed,
            n_workers=n_workers,
        )
        return ExperimentDefinition(
            name=name,
            description=f"Matrix multiplication ({'size >= 5000 subset' if 'subset' in name else 'full dataset'}), "
            f"tolerance ratio={tolerance_ratio}, seconds={tolerance_seconds}",
            workload=bundle.workload,
            catalog=bundle.catalog,
            evaluation_frame=frame,
            feature_names=["size"],
            config=config,
            paper_reference=figure,
        )

    raise ValueError(f"unknown experiment {name!r}; choose from {EXPERIMENT_NAMES}")


def run_experiment(definition: ExperimentDefinition) -> ExperimentResult:
    """Run one experiment definition end to end."""
    result = definition.simulation().run()
    return ExperimentResult(definition=definition, result=result)
