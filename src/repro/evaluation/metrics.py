"""Prediction-quality and recommendation-quality metrics."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Union

import numpy as np

__all__ = ["rmse", "mae", "mape", "r2_score", "accuracy_score", "selection_accuracy"]


def _paired_arrays(actual, predicted) -> tuple:
    a = np.asarray(actual, dtype=float).ravel()
    p = np.asarray(predicted, dtype=float).ravel()
    if a.shape != p.shape:
        raise ValueError(f"actual has shape {a.shape} but predicted has shape {p.shape}")
    if a.size == 0:
        raise ValueError("metrics require at least one observation")
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(p))):
        raise ValueError("metrics require finite inputs")
    return a, p


def rmse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Root mean squared error (the paper's primary prediction metric)."""
    a, p = _paired_arrays(actual, predicted)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def mae(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute error."""
    a, p = _paired_arrays(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def mape(actual: Sequence[float], predicted: Sequence[float], epsilon: float = 1e-12) -> float:
    """Mean absolute percentage error (with an epsilon guard for zero actuals)."""
    a, p = _paired_arrays(actual, predicted)
    denom = np.maximum(np.abs(a), epsilon)
    return float(np.mean(np.abs(a - p) / denom))


def r2_score(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination R².

    Follows the standard convention: 1 is a perfect fit, 0 matches predicting
    the mean, negative values are worse than the mean.  When the actuals are
    constant the score is 1.0 for exact predictions and 0.0 otherwise.
    """
    a, p = _paired_arrays(actual, predicted)
    ss_res = float(np.sum((a - p) ** 2))
    ss_tot = float(np.sum((a - np.mean(a)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def accuracy_score(correct: Sequence[bool]) -> float:
    """Fraction of true values in a boolean sequence."""
    arr = np.asarray(list(correct), dtype=bool)
    if arr.size == 0:
        raise ValueError("accuracy requires at least one decision")
    return float(np.mean(arr))


def selection_accuracy(
    chosen: Sequence[str],
    acceptable: Sequence[Union[str, Set[str], Iterable[str]]],
) -> float:
    """Fraction of choices that fall inside their acceptable set.

    Parameters
    ----------
    chosen:
        The hardware name chosen for each decision.
    acceptable:
        For each decision, either the single correct hardware name or the set
        of names considered acceptable (e.g. all hardware within the
        tolerance of the true optimum, as in Figures 11 and 12).
    """
    chosen = list(chosen)
    acceptable = list(acceptable)
    if len(chosen) != len(acceptable):
        raise ValueError(
            f"chosen has {len(chosen)} entries but acceptable has {len(acceptable)}"
        )
    if not chosen:
        raise ValueError("selection_accuracy requires at least one decision")
    hits = 0
    for pick, ok in zip(chosen, acceptable):
        if isinstance(ok, str):
            hits += int(pick == ok)
        else:
            hits += int(pick in set(ok))
    return hits / len(chosen)
