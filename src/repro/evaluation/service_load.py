"""Traffic harness for the sharded serving layer.

Drives Zipfian-skewed multi-application request mixes -- plus flash-crowd
("hotspot") and campaign ("bursty") temporal patterns -- through the full
serving stack: consistent-hash routing to shards, bounded admission queues
with explicit backpressure, request batching into the coalesced entry
points, and real recommender learning on every completion.  Reports
recommendations/sec and p50/p95/p99 request latency per mix, the numbers
``bench_engine.py --suite service`` pins into ``BENCH_service.json``.

Clock model
-----------
The harness is **event-driven in simulated time**: every recommendation and
completion runs for real (real models, real policy state, real admission
queues), but the *time axis* is simulated -- serving a batch of ``k``
requests occupies its shard for ``batch_overhead + k * cost_per_request``
simulated seconds, where ``cost_per_request`` is calibrated from the real
measured wall-clock cost of a submit/complete cycle (or passed explicitly
for deterministic tests).  The same constant is used for every shard count,
so reported throughput ratios measure the *architecture* (how many shards
can drain queues concurrently, since shards share no state) rather than
this container's core count; results label themselves with
``"clock": "simulated"`` and carry the calibrated constant.  Real measured
wall-clock rates of the core are reported separately by the bench suite.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware import ndp_catalog
from repro.integration import (
    AdmissionController,
    BackpressureError,
    RecommendationService,
)
from repro.workloads import (
    ArrivalProcess,
    BurstyArrivals,
    HotspotArrivals,
    LinearRuntimeWorkload,
    PoissonArrivals,
)

__all__ = [
    "ZipfianAppMix",
    "HotspotAppMix",
    "ServiceLoadConfig",
    "ServiceLoadResult",
    "build_load_service",
    "standard_mixes",
    "run_service_load",
    "calibrate_cost_per_request",
]


@dataclass(frozen=True)
class ZipfianAppMix:
    """Zipfian application popularity: app ``i`` has weight ``1/(i+1)^s``.

    The skew of real multi-tenant platforms -- a few applications dominate
    traffic -- which is exactly what stresses per-shard load balance.
    """

    n_apps: int
    exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.n_apps < 1:
            raise ValueError(f"n_apps must be >= 1, got {self.n_apps}")
        if self.exponent <= 0:
            raise ValueError(f"exponent must be positive, got {self.exponent}")

    def weights(self) -> np.ndarray:
        raw = 1.0 / np.arange(1, self.n_apps + 1) ** self.exponent
        return raw / raw.sum()

    def choose(self, t: float, rng: np.random.Generator) -> int:
        """The application index of a request arriving at time ``t``."""
        return int(rng.choice(self.n_apps, p=self.weights()))


@dataclass(frozen=True)
class HotspotAppMix:
    """Zipfian background traffic with a flash crowd on one application.

    Inside ``[hotspot_start, hotspot_start + hotspot_duration)`` a request
    targets ``hot_app`` with probability ``hot_probability`` (falling back
    to the Zipfian draw otherwise) -- the "one tenant goes viral" pattern
    that concentrates load on a single shard.
    """

    n_apps: int
    exponent: float = 1.1
    hot_app: int = 0
    hot_probability: float = 0.8
    hotspot_start: float = 0.0
    hotspot_duration: float = 10.0

    def __post_init__(self) -> None:
        if not 0 <= self.hot_app < self.n_apps:
            raise ValueError(f"hot_app {self.hot_app} out of range for {self.n_apps} apps")
        if not 0 <= self.hot_probability <= 1:
            raise ValueError(f"hot_probability must be in [0, 1], got {self.hot_probability}")

    def _base(self) -> ZipfianAppMix:
        return ZipfianAppMix(self.n_apps, self.exponent)

    def choose(self, t: float, rng: np.random.Generator) -> int:
        in_window = self.hotspot_start <= t < self.hotspot_start + self.hotspot_duration
        if in_window and rng.random() < self.hot_probability:
            return self.hot_app
        return self._base().choose(t, rng)


@dataclass(frozen=True)
class ServiceLoadConfig:
    """Knobs of one load-harness run (see module docstring for the clock model)."""

    n_apps: int = 32
    n_shards: int = 1
    n_requests: int = 2000
    n_features: int = 3
    seed: int = 0
    #: Zipf exponent of the benchmark mixes.  Consistent hashing is
    #: load-oblivious, so the achievable N-shard speedup is capped at
    #: ``1 / max_shard_share``; heavier skew (or fewer apps) lowers the cap.
    zipf_exponent: float = 0.9
    #: Simulated seconds one request occupies its shard; ``None`` calibrates
    #: from real wall clock (:func:`calibrate_cost_per_request`).
    cost_per_request: Optional[float] = None
    #: Fixed per-batch dispatch cost (simulated seconds) -- what coalescing
    #: amortises.
    batch_overhead: float = 0.0005
    max_batch: int = 16
    queue_capacity: int = 128
    #: Client retries after backpressure before giving up (abandonment is
    #: counted, never silent).
    max_retries: int = 5
    #: Offered load as a multiple of the aggregate drain rate of
    #: ``saturation_shards`` shards (defaults to ``n_shards``); > 1 keeps
    #: every shard busy so throughput measures drain capacity.
    saturation_factor: float = 2.0
    saturation_shards: Optional[int] = None


@dataclass
class ServiceLoadResult:
    """Metrics of one mix run through the serving stack."""

    mix: str
    n_shards: int
    n_requests: int
    completed: int
    rejected_admissions: int
    retries: int
    abandoned: int
    duration_seconds: float
    throughput_rps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    cost_per_request: float
    offered_rate_rps: float
    shard_utilisation: List[float] = field(default_factory=list)
    shard_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    clock: str = "simulated"

    def to_dict(self) -> Dict:
        return {
            "mix": self.mix,
            "n_shards": self.n_shards,
            "n_requests": self.n_requests,
            "completed": self.completed,
            "rejected_admissions": self.rejected_admissions,
            "retries": self.retries,
            "abandoned": self.abandoned,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "cost_per_request": self.cost_per_request,
            "offered_rate_rps": self.offered_rate_rps,
            "shard_utilisation": self.shard_utilisation,
            "shard_stats": {str(k): v for k, v in self.shard_stats.items()},
            "clock": self.clock,
        }


def build_load_service(
    config: ServiceLoadConfig,
) -> Tuple[RecommendationService, Dict[str, LinearRuntimeWorkload]]:
    """A service with ``n_apps`` registered synthetic applications."""
    catalog = ndp_catalog()
    service = RecommendationService(
        catalog=catalog, seed=config.seed, n_shards=config.n_shards
    )
    workloads: Dict[str, LinearRuntimeWorkload] = {}
    for index in range(config.n_apps):
        name = f"app-{index:02d}"
        workload = LinearRuntimeWorkload.random(
            catalog, n_features=config.n_features, seed=1000 + index, name=name
        )
        workloads[name] = workload
        service.register_application(
            name, owner=f"tenant-{index:02d}", feature_names=workload.feature_names
        )
    return service, workloads


def calibrate_cost_per_request(n_probe: int = 200, seed: int = 0) -> float:
    """Real measured wall-clock seconds of one submit+complete cycle.

    Runs ``n_probe`` full recommendation/observation cycles on a scratch
    service and returns the mean per-request cost -- the constant anchoring
    the simulated clock to this machine's real serving speed.
    """
    config = ServiceLoadConfig(n_apps=4, n_shards=1, seed=seed)
    service, workloads = build_load_service(config)
    rng = np.random.default_rng(seed)
    apps = list(workloads)
    start = time.perf_counter()
    for i in range(n_probe):
        app = apps[i % len(apps)]
        features = workloads[app].sample_features(rng)
        ticket = service.submit_workflow(app, features)
        runtime = workloads[app].observed_runtime(
            ticket.features, ticket.recommendation.hardware, rng
        )
        service.complete_workflow(ticket.ticket_id, runtime)
    return (time.perf_counter() - start) / n_probe


def standard_mixes(
    config: ServiceLoadConfig, offered_rate: float
) -> Dict[str, Tuple[object, ArrivalProcess]]:
    """The three benchmark traffic mixes at ``offered_rate`` requests/sec."""
    horizon = config.n_requests / offered_rate
    return {
        "zipfian": (
            ZipfianAppMix(config.n_apps, config.zipf_exponent),
            PoissonArrivals(rate_per_second=offered_rate),
        ),
        "hotspot": (
            HotspotAppMix(
                config.n_apps,
                config.zipf_exponent,
                hotspot_start=horizon * 0.25,
                hotspot_duration=horizon * 0.25,
            ),
            HotspotArrivals(
                base_rate_per_second=offered_rate * 0.75,
                hotspot_factor=2.0,
                hotspot_start=horizon * 0.25,
                hotspot_duration=horizon * 0.25,
            ),
        ),
        "bursty": (
            ZipfianAppMix(config.n_apps, config.zipf_exponent),
            BurstyArrivals(
                burst_size=max(8, config.max_batch),
                burst_interval_seconds=max(8, config.max_batch) / offered_rate,
                jitter_seconds=0.1 / offered_rate,
            ),
        ),
    }


@dataclass
class _Request:
    index: int
    app: str
    arrival_time: float
    retries: int = 0


def run_service_load(
    mix_name: str,
    config: ServiceLoadConfig,
    app_mix=None,
    arrivals: Optional[ArrivalProcess] = None,
) -> ServiceLoadResult:
    """Run one traffic mix through the serving stack; see the module docstring.

    ``mix_name`` selects from :func:`standard_mixes` unless an explicit
    ``(app_mix, arrivals)`` pair overrides it.  Fully deterministic given
    ``config`` (and an explicit ``cost_per_request``).
    """
    cost = config.cost_per_request
    if cost is None:
        cost = calibrate_cost_per_request(seed=config.seed)
    if not cost > 0:
        raise ValueError(f"cost_per_request must be positive, got {cost}")
    saturation_shards = config.saturation_shards or config.n_shards
    offered_rate = config.saturation_factor * saturation_shards / cost
    if app_mix is None or arrivals is None:
        try:
            app_mix, arrivals = standard_mixes(config, offered_rate)[mix_name]
        except KeyError:
            raise ValueError(
                f"unknown mix {mix_name!r}; known: "
                f"{sorted(standard_mixes(config, offered_rate))}"
            ) from None

    service, workloads = build_load_service(config)
    apps = list(workloads)
    controller = AdmissionController(
        n_shards=config.n_shards,
        capacity=config.queue_capacity,
        drain_rate_per_second=1.0 / cost,
    )
    arrival_rng = np.random.default_rng(config.seed + 1)
    app_rng = np.random.default_rng(config.seed + 2)
    runtime_rng = np.random.default_rng(config.seed + 3)

    arrival_times = arrivals.arrival_times(config.n_requests, arrival_rng)
    events: List[Tuple[float, int, str, object]] = []
    seq = 0
    for index, t in enumerate(arrival_times):
        app = apps[app_mix.choose(t, app_rng)]
        heapq.heappush(events, (t, seq, "arrival", _Request(index, app, t)))
        seq += 1

    shard_busy = [False] * config.n_shards
    shard_busy_time = [0.0] * config.n_shards
    latencies: List[float] = []
    retries = 0
    abandoned = 0
    completed = 0
    first_arrival = arrival_times[0] if arrival_times else 0.0
    last_completion = first_arrival

    def start_batch(shard_id: int, now: float) -> None:
        nonlocal seq
        batch = controller.pop_batch(shard_id, config.max_batch)
        if not batch:
            return
        shard_busy[shard_id] = True
        by_app: Dict[str, List[_Request]] = {}
        for request in batch:
            by_app.setdefault(request.app, []).append(request)
        served: List[Tuple[_Request, object]] = []
        for app, requests in by_app.items():
            features = [workloads[app].sample_features(runtime_rng) for _ in requests]
            tickets = service.submit_workflows(app, features)
            served.extend(zip(requests, tickets))
        service_time = config.batch_overhead + len(batch) * cost
        shard_busy_time[shard_id] += service_time
        heapq.heappush(events, (now + service_time, seq, "done", (shard_id, served)))
        seq += 1

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "arrival":
            request = payload
            shard_id = service.shard_for(request.app)
            try:
                controller.admit(shard_id, request)
            except BackpressureError as error:
                if request.retries < config.max_retries:
                    request.retries += 1
                    retries += 1
                    heapq.heappush(
                        events,
                        (now + error.retry_after_seconds, seq, "arrival", request),
                    )
                    seq += 1
                else:
                    abandoned += 1
                continue
            if not shard_busy[shard_id]:
                start_batch(shard_id, now)
        else:  # done
            shard_id, served = payload
            completions = []
            for request, ticket in served:
                runtime = workloads[request.app].observed_runtime(
                    ticket.features, ticket.recommendation.hardware, runtime_rng
                )
                completions.append((ticket.ticket_id, runtime))
                latencies.append(now - request.arrival_time)
            service.complete_workflows(completions)
            completed += len(served)
            last_completion = now
            shard_busy[shard_id] = False
            start_batch(shard_id, now)

    duration = max(last_completion - first_arrival, 1e-12)
    rejected = sum(q["rejected"] for q in controller.stats().values())
    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    return ServiceLoadResult(
        mix=mix_name,
        n_shards=config.n_shards,
        n_requests=config.n_requests,
        completed=completed,
        rejected_admissions=rejected,
        retries=retries,
        abandoned=abandoned,
        duration_seconds=float(duration),
        throughput_rps=float(completed / duration),
        latency_p50=float(np.percentile(lat, 50)),
        latency_p95=float(np.percentile(lat, 95)),
        latency_p99=float(np.percentile(lat, 99)),
        latency_mean=float(lat.mean()),
        cost_per_request=float(cost),
        offered_rate_rps=float(offered_rate),
        shard_utilisation=[
            float(busy / duration) for busy in shard_busy_time
        ],
        shard_stats=controller.stats(),
    )
