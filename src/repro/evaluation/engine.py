"""The unified event-driven experiment engine.

Every evaluation loop in this repository -- the paper's replicated online
simulation (:mod:`repro.evaluation.simulation`) and the contention-aware
cluster-in-the-loop scenarios (:mod:`repro.evaluation.contention`) -- runs on
the machinery in this module.  The frontends describe *what* to evaluate
(workloads, arrival streams, cluster shape, scoring); the engine owns *how*
a run plays out:

* **one round/outcome ledger** -- :class:`ScenarioAccountant` turns every
  completion into a :class:`~repro.core.rewards.RoundOutcome`, a per-tenant
  :class:`~repro.core.rewards.RegretLedger` entry and one accounting row,
  identically for the queued and the synchronous path;
* **one completion → observe path** -- completions are reported to the
  :class:`~repro.integration.RecommendationService` in completion-event
  order, one ``complete_workflows`` batch per event drain, which feeds each
  application's recommender through
  :meth:`~repro.core.BanditWare.observe_batch` (queue delays ride along for
  the queue-aware reward mode);
* **one seeding discipline** -- replications derive from a
  :class:`~repro.utils.rng.SeedSequencePool` via
  :func:`replication_sequences`; tenant feature/arrival/warm-start streams
  derive from :func:`stream_rng`, so every frontend draws the same streams
  for the same scenario and the queued/synchronous parity is exact;
* **the event loop** -- :class:`ExperimentEngine` interleaves external
  arrivals with the cluster's own events (pod lifecycle, autoscaler
  provisioning and drains) in global time order, with cluster events winning
  ties so an arrival at time *t* sees every completion whose event fires at
  *t*.

The engine also hosts the replication runners: the sequential online-loop
replication used by :class:`~repro.evaluation.simulation.OnlineSimulation`
(process pool with bit-identical fallback) and a process-pool sweep over
pickled contention scenarios (:func:`run_scenario_sweep`).
"""

from __future__ import annotations

import heapq
import itertools
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cluster.simulator import ClusterSimulator, CompletedRun
from repro.core.rewards import RegretLedger, RoundOutcome
from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, ResourceCostModel
from repro.integration.recommender_service import RecommendationService, WorkflowTicket
from repro.utils.logging import EventLog
from repro.utils.rng import SeedSequencePool
from repro.workloads import ClosedLoopArrivals, TraceGenerator
from repro.workloads.base import WorkloadModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.evaluation.contention import ContentionScenario, TenantSpec
    from repro.evaluation.simulation import OnlineSimulation

__all__ = [
    "TenantOutcome",
    "ContentionResult",
    "ScenarioAccountant",
    "ExperimentEngine",
    "replication_sequences",
    "stream_rng",
    "run_online_replication",
    "run_replications",
    "run_scenario_sweep",
    "ReplicationSummary",
    "run_scenario_replications",
]


# --------------------------------------------------------------------- #
# The seeding discipline
# --------------------------------------------------------------------- #
#: Stable stream labels: every independent random stream an experiment uses
#: is derived from (scenario seed, tenant index, purpose), so frontends can
#: never collide or drift apart.
_STREAM_PURPOSES = {"features": 101, "arrivals": 202, "warm_start": 303}


def stream_rng(seed: int, index: int, purpose: str) -> np.random.Generator:
    """The random stream for one (seed, tenant, purpose) triple.

    All scenario-level randomness -- feature sampling, arrival times,
    warm-start traces -- flows through here so the queued and synchronous
    frontends draw byte-identical streams.
    """
    if purpose not in _STREAM_PURPOSES:
        raise KeyError(
            f"unknown stream purpose {purpose!r}; known: {sorted(_STREAM_PURPOSES)}"
        )
    return np.random.default_rng([seed, index, _STREAM_PURPOSES[purpose]])


def replication_sequences(seed: int, n: int) -> List[np.random.SeedSequence]:
    """Independent child seed sequences for ``n`` replications of one run."""
    pool = SeedSequencePool(seed)
    return [pool.sequence(i) for i in range(n)]


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #
@dataclass
class TenantOutcome:
    """Per-tenant ledger and decision stream of one scenario run."""

    tenant: str
    application: str
    ledger: RegretLedger
    #: Hardware chosen per workflow, in submission order.
    decisions: List[str] = field(default_factory=list)
    #: Observed runtime per workflow, in completion (event) order.
    runtimes: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        return self.ledger.summary()


@dataclass
class ContentionResult:
    """Everything observed while a scenario played out on the shared cluster."""

    scenario_name: str
    description: str
    makespan_seconds: float
    total_occupancy_cost: float
    #: One row per completed workflow, in completion (event) order.
    rows: List[Dict[str, object]]
    tenants: Dict[str, TenantOutcome]
    #: Resource-seconds discarded by preemptions (checkpoint-free restarts).
    wasted_occupancy_cost: float = 0.0
    #: Resource-seconds of autoscaled node lifetime (provision to drain).
    node_pool_cost: float = 0.0
    #: Autoscaling actions, in time order (empty without an autoscaler).
    scale_events: List[object] = field(default_factory=list)
    #: Registry name of the placement policy the run's scheduler used.
    placement: str = "first-fit"
    #: Reward mode per tenant (``"runtime"``, ``"queue_inclusive"`` or
    #: ``"slowdown_inclusive"``), for the report's reward-shaping line.
    reward_modes: Dict[str, str] = field(default_factory=dict)
    #: Kernel wall-time accounting (re-integration / scheduling / placement
    #: seconds and event counters), populated only when the engine ran with
    #: ``profile=True``.  Never part of :meth:`summary` -- profiling must not
    #: perturb parity-pinned outputs.
    kernel_profile: Optional[Dict[str, float]] = None

    @property
    def n_completed(self) -> int:
        return len(self.rows)

    def queue_delays(self) -> np.ndarray:
        return np.asarray([float(row["queue_seconds"]) for row in self.rows])

    def to_frame(self) -> DataFrame:
        """The per-completion accounting table as a :class:`DataFrame`."""
        return DataFrame.from_records(self.rows)

    def summary(self) -> Dict[str, float]:
        """Headline queue-aware numbers for reports and tests."""
        delays = self.queue_delays()
        ledgers = [outcome.ledger for outcome in self.tenants.values()]
        total_rounds = sum(len(ledger) for ledger in ledgers)
        correct = sum(
            sum(1 for r in ledger.rounds if r.correct) for ledger in ledgers
        )
        regret = sum(
            float(ledger.cumulative_runtime_regret()[-1]) for ledger in ledgers if len(ledger)
        )
        queue_regret = sum(
            float(ledger.cumulative_queue_inclusive_regret()[-1])
            for ledger in ledgers
            if len(ledger)
        )
        interference_regret = sum(
            float(ledger.cumulative_interference_inclusive_regret()[-1])
            for ledger in ledgers
            if len(ledger)
        )
        interference_seconds = sum(
            ledger.total_interference_seconds() for ledger in ledgers
        )
        slowdowns = [float(row.get("slowdown", 1.0)) for row in self.rows]
        preemptions = sum(int(row.get("preemptions", 0)) for row in self.rows)
        return {
            "workflows": float(total_rounds),
            "tenants": float(len(self.tenants)),
            "makespan_seconds": float(self.makespan_seconds),
            "total_queue_seconds": float(delays.sum()) if delays.size else 0.0,
            "mean_queue_seconds": float(delays.mean()) if delays.size else 0.0,
            "p95_queue_seconds": float(np.percentile(delays, 95)) if delays.size else 0.0,
            "max_queue_seconds": float(delays.max()) if delays.size else 0.0,
            "occupancy_cost": float(self.total_occupancy_cost),
            "wasted_occupancy_cost": float(self.wasted_occupancy_cost),
            "node_pool_cost": float(self.node_pool_cost),
            "preemptions": float(preemptions),
            "cumulative_regret": regret,
            "queue_inclusive_regret": queue_regret,
            "interference_inclusive_regret": interference_regret,
            "interference_seconds": float(interference_seconds),
            "mean_slowdown": float(np.mean(slowdowns)) if slowdowns else 1.0,
            "max_slowdown": float(np.max(slowdowns)) if slowdowns else 1.0,
            "accuracy": (correct / total_rounds) if total_rounds else 0.0,
        }


# --------------------------------------------------------------------- #
# Shared construction (queued runner and synchronous reference must build
# byte-identical services and workflow streams for the parity guarantee)
# --------------------------------------------------------------------- #
def tenant_feature_streams(scenario: "ContentionScenario") -> List[List[Dict[str, float]]]:
    """The workflow feature stream of every tenant, in tenant order."""
    streams: List[List[Dict[str, float]]] = []
    for index, tenant in enumerate(scenario.tenants):
        if tenant.features is not None:
            streams.append([dict(f) for f in tenant.features])
            continue
        rng = stream_rng(scenario.seed, index, "features")
        streams.append(
            [tenant.workload.sample_features(rng) for _ in range(tenant.n_workflows)]
        )
    return streams


def build_scenario_service(
    scenario: "ContentionScenario",
    catalog: HardwareCatalog,
    log: Optional[EventLog] = None,
) -> RecommendationService:
    """A recommendation service with one warm-started recommender per tenant."""
    service = RecommendationService(catalog=catalog, seed=scenario.seed, log=log)
    for index, tenant in enumerate(scenario.tenants):
        if tenant.warm_start_runs > 0:
            generator = TraceGenerator(
                tenant.workload,
                tenant.catalog,
                seed=stream_rng(scenario.seed, index, "warm_start"),
            )
            service.history.extend(generator.generate_grid(tenant.warm_start_runs))
        service.register_application(
            tenant.workload.name,
            owner=tenant.name,
            feature_names=tenant.workload.feature_names,
            catalog=tenant.catalog,
            tolerance=tenant.tolerance,
            reward=tenant.reward,
            priority=tenant.priority,
        )
    return service


def oracle_runtimes(
    workload: WorkloadModel,
    catalog: HardwareCatalog,
    features: Dict[str, float],
) -> Tuple[str, float, Dict[str, float]]:
    """Oracle-best hardware, its expected runtime, and the full runtime table."""
    table = {hw.name: workload.expected_runtime(features, hw) for hw in catalog}
    best = min(table, key=lambda name: (table[name], name))
    return best, table[best], table


# --------------------------------------------------------------------- #
# The round/outcome ledger
# --------------------------------------------------------------------- #
class _TenantState:
    """Mutable per-tenant bookkeeping while a scenario plays."""

    def __init__(self, index: int, spec: "TenantSpec", features: List[Dict[str, float]]):
        self.index = index
        self.spec = spec
        self.features = features
        self.next_index = 0  # next workflow to submit
        #: Workflows whose arrival is already on the heap or submitted.  The
        #: closed-loop refill gates on this (not on ``next_index``): two
        #: completions handled in one event drain must not both enqueue the
        #: single remaining workflow.
        self.scheduled = 0
        self.outcome = TenantOutcome(
            tenant=spec.name,
            application=spec.workload.name,
            ledger=RegretLedger(),
        )

    @property
    def fully_scheduled(self) -> bool:
        return self.scheduled >= len(self.features)

    def next_features(self) -> Dict[str, float]:
        features = self.features[self.next_index]
        self.next_index += 1
        return features


@dataclass(frozen=True)
class _InFlight:
    state: _TenantState
    ticket: WorkflowTicket
    features: Dict[str, float]


class ScenarioAccountant:
    """One round/outcome ledger for every frontend.

    Turns each completed run into a :class:`RoundOutcome` on the tenant's
    regret ledger plus one accounting row, and integrates occupancy cost --
    useful and (for preempted pods) wasted resource-seconds.  Both the queued
    event-driven path and the synchronous reference loop record through this
    class, so their accounting cannot drift apart.
    """

    def __init__(self, catalog: HardwareCatalog, cost_model: ResourceCostModel):
        self.catalog = catalog
        self.cost_model = cost_model
        self.rows: List[Dict[str, object]] = []
        self.total_occupancy = 0.0
        self.wasted_occupancy = 0.0

    def record(
        self,
        state: _TenantState,
        features: Dict[str, float],
        run: CompletedRun,
        explored: bool,
        finish_time: float,
    ) -> RoundOutcome:
        spec = state.spec
        best_name, best_runtime, table = oracle_runtimes(
            spec.workload, spec.catalog, features
        )
        outcome = RoundOutcome(
            round_index=len(state.outcome.ledger),
            chosen_hardware=run.record.hardware,
            best_hardware=best_name,
            observed_runtime=run.record.runtime_seconds,
            best_expected_runtime=best_runtime,
            expected_runtime_on_chosen=table[run.record.hardware],
            explored=explored,
            queue_seconds=run.queue_seconds,
            planned_runtime=run.planned_runtime_seconds,
        )
        state.outcome.ledger.record(outcome)
        state.outcome.runtimes.append(run.record.runtime_seconds)
        config = self.catalog[run.record.hardware]
        occupancy = self.cost_model.occupancy_cost(config, run.record.runtime_seconds)
        wasted = self.cost_model.occupancy_cost(config, run.wasted_runtime_seconds)
        self.total_occupancy += occupancy
        self.wasted_occupancy += wasted
        self.rows.append(
            {
                "tenant": spec.name,
                "application": run.record.application,
                "round": outcome.round_index,
                "finish_time": finish_time,
                "hardware": run.record.hardware,
                "node": run.node,
                "priority": spec.priority,
                "queue_seconds": run.queue_seconds,
                "runtime_seconds": run.record.runtime_seconds,
                "planned_seconds": (
                    run.planned_runtime_seconds
                    if run.planned_runtime_seconds is not None
                    else run.record.runtime_seconds
                ),
                "slowdown": run.slowdown,
                "occupancy_cost": occupancy,
                "preemptions": run.preemptions,
                "wasted_seconds": run.wasted_runtime_seconds,
                "wasted_occupancy_cost": wasted,
                "explored": outcome.explored,
                "correct": outcome.correct,
                "runtime_regret": outcome.runtime_regret,
                "queue_inclusive_regret": outcome.queue_inclusive_regret,
                "interference_seconds": outcome.interference_seconds,
            }
        )
        return outcome


# --------------------------------------------------------------------- #
# The event-driven engine
# --------------------------------------------------------------------- #
class ExperimentEngine:
    """Drive one contention scenario through the shared event-driven cluster.

    Workflows are recommended at their arrival instant (seeing exactly the
    completions whose events precede that instant), executed as pods on the
    shared cluster -- with priority classes, preemption and autoscaling when
    the scenario configures them -- and observed by their application's
    recommender in completion-event order.
    """

    def __init__(
        self,
        scenario: "ContentionScenario",
        cost_model: Optional[ResourceCostModel] = None,
        log: Optional[EventLog] = None,
        profile: bool = False,
    ):
        self.scenario = scenario
        self.cost_model = cost_model or ResourceCostModel()
        self.log = log
        self.profile = profile
        self.catalog = scenario.union_catalog()

    # ------------------------------------------------------------------ #
    def _build_cluster(self, workload: WorkloadModel) -> ClusterSimulator:
        scheduler = self.scenario.scheduler_factory()
        if self.scenario.placement is not None:
            # The placement axis is orthogonal to the queue discipline: the
            # scenario's policy is injected into whatever scheduler the
            # factory built (FIFO, backfill, priority, ...).
            scheduler.placement = self.scenario.placement
        return ClusterSimulator(
            workload=workload,
            catalog=self.catalog,
            nodes=self.scenario.fresh_nodes(),
            scheduler=scheduler,
            seed=self.scenario.seed,
            log=self.log,
            autoscaler=self.scenario.autoscaler,
            interference=self.scenario.interference,
        )

    def _reward_modes(self) -> Dict[str, str]:
        return {
            tenant.name: (tenant.reward.mode if tenant.reward is not None else "runtime")
            for tenant in self.scenario.tenants
        }

    def _node_pool_cost(self, cluster: ClusterSimulator) -> float:
        pool = self.scenario.autoscaler
        if pool is None:
            return 0.0
        return sum(
            self.cost_model.node_occupancy_cost(
                pool.node_cpus, pool.node_memory_gb, end - start, pool.node_gpus
            )
            for _, start, end in cluster.pool_node_lifetimes()
        )

    # ------------------------------------------------------------------ #
    def run(self) -> ContentionResult:
        """Play the scenario through the queued cluster path."""
        scenario = self.scenario
        cluster = self._build_cluster(scenario.tenants[0].workload)
        kernel_profile = cluster.enable_profiling() if self.profile else None
        service = build_scenario_service(scenario, self.catalog, log=self.log)
        accountant = ScenarioAccountant(self.catalog, self.cost_model)
        states = [
            _TenantState(index, spec, stream)
            for index, (spec, stream) in enumerate(
                zip(scenario.tenants, tenant_feature_streams(scenario))
            )
        ]

        # Arrival heap: (time, sequence, tenant_index).  Open-loop tenants get
        # a precomputed schedule; closed-loop tenants start `concurrency`
        # workflows and enqueue the next one when a previous one completes.
        arrival_seq = itertools.count()
        arrivals: List[Tuple[float, int, int]] = []
        for index, state in enumerate(states):
            process = state.spec.arrivals
            if isinstance(process, ClosedLoopArrivals):
                initial = min(process.concurrency, state.spec.n_workflows)
                for _ in range(initial):
                    heapq.heappush(arrivals, (process.start_time, next(arrival_seq), index))
                state.scheduled = initial
            else:
                rng = stream_rng(scenario.seed, index, "arrivals")
                for time in process.arrival_times(state.spec.n_workflows, rng):
                    heapq.heappush(arrivals, (float(time), next(arrival_seq), index))
                state.scheduled = state.spec.n_workflows

        in_flight: Dict[str, _InFlight] = {}

        def submit(state: _TenantState, at_time: float) -> None:
            features = state.next_features()
            ticket = service.submit_workflow(state.spec.workload.name, features)
            state.outcome.decisions.append(ticket.recommendation.hardware.name)
            pod = cluster.submit(
                features,
                ticket.recommendation.hardware,
                at_time=at_time,
                workload=state.spec.workload,
                priority=ticket.priority,
            )
            in_flight[pod.name] = _InFlight(state=state, ticket=ticket, features=features)

        def handle_completions(runs: Sequence[CompletedRun]) -> None:
            if not runs:
                return
            # One batch per event-drain: observations reach each recommender
            # via observe_batch in completion-event order.  The runtime is
            # the *observed* (interference-inflated) one -- the bandit learns
            # from what actually happened on the shared cluster, exactly as
            # the paper's loop learns from measured runtimes.  Queue delays
            # ride along for the queue-aware reward mode, and the
            # observed/planned slowdown for the ticket's audit trail.
            service.complete_workflows(
                [
                    (
                        in_flight[run.pod_name].ticket.ticket_id,
                        run.record.runtime_seconds,
                        run.queue_seconds,
                        run.slowdown,
                    )
                    for run in runs
                ]
            )
            for run in runs:
                entry = in_flight.pop(run.pod_name)
                state = entry.state
                accountant.record(
                    state,
                    entry.features,
                    run,
                    explored=entry.ticket.recommendation.explored,
                    finish_time=run.finish_time,
                )
                process = state.spec.arrivals
                if isinstance(process, ClosedLoopArrivals) and not state.fully_scheduled:
                    next_time = run.finish_time + process.think_time_seconds
                    heapq.heappush(arrivals, (next_time, next(arrival_seq), state.index))
                    state.scheduled += 1

        # Event loop: interleave external arrivals with the cluster's own
        # events in global time order.  Cluster events win ties so an arrival
        # at time t sees every completion whose event fires at t.
        # ``peek_next_event_time`` is frontier-aware: it reports the next
        # *live* event, never a superseded (cancelled) node frontier, so the
        # engine steps once per genuine cluster instant instead of waking at
        # timestamps where the simulator would discard a stale entry and do
        # nothing.
        while arrivals or cluster.has_work:
            next_arrival = arrivals[0][0] if arrivals else None
            next_event = cluster.peek_next_event_time()
            if next_arrival is None or (next_event is not None and next_event <= next_arrival):
                handle_completions(cluster.run_until(next_event))
            else:
                time, _, tenant_index = heapq.heappop(arrivals)
                submit(states[tenant_index], at_time=time)

        if in_flight:
            # Pods stuck pending with no events left: surfaces the simulator's
            # diagnosis (infeasible requests, head-of-line deadlock).
            cluster.run_until_idle()

        # The makespan is when the last workflow finished; the cluster clock
        # may sit later (e.g. on an autoscaler drain check).
        makespan = (
            float(accountant.rows[-1]["finish_time"]) if accountant.rows else cluster.now
        )
        return ContentionResult(
            scenario_name=scenario.name,
            description=scenario.description,
            makespan_seconds=makespan,
            total_occupancy_cost=accountant.total_occupancy,
            rows=accountant.rows,
            tenants={state.spec.name: state.outcome for state in states},
            wasted_occupancy_cost=accountant.wasted_occupancy,
            node_pool_cost=self._node_pool_cost(cluster),
            scale_events=cluster.scale_events,
            placement=cluster.scheduler.placement.name,
            reward_modes=self._reward_modes(),
            kernel_profile=kernel_profile.as_dict() if kernel_profile else None,
        )

    # ------------------------------------------------------------------ #
    def run_synchronous(self) -> ContentionResult:
        """Play a single-tenant scenario through the contention-free loop.

        This is the paper's one-workflow-per-round protocol: recommend,
        execute "alone" via :meth:`ClusterSimulator.run_workload`, observe.
        It exists as the parity reference for the queued runner -- a
        zero-contention scenario must reproduce its decision stream exactly.
        """
        scenario = self.scenario
        if len(scenario.tenants) != 1:
            raise ValueError(
                "the synchronous reference loop supports exactly one tenant; "
                f"scenario {scenario.name!r} has {len(scenario.tenants)}"
            )
        tenant = scenario.tenants[0]
        cluster = self._build_cluster(tenant.workload)
        service = build_scenario_service(scenario, self.catalog, log=self.log)
        accountant = ScenarioAccountant(self.catalog, self.cost_model)
        state = _TenantState(0, tenant, tenant_feature_streams(scenario)[0])
        clock = 0.0
        for features in state.features:
            ticket = service.submit_workflow(tenant.workload.name, features)
            state.outcome.decisions.append(ticket.recommendation.hardware.name)
            run = cluster.run_workload(features, ticket.recommendation.hardware)
            service.complete_workflow(ticket.ticket_id, run.record.runtime_seconds)
            clock += run.record.runtime_seconds
            accountant.record(
                state,
                features,
                run,
                explored=ticket.recommendation.explored,
                finish_time=clock,
            )
        return ContentionResult(
            scenario_name=scenario.name,
            description=scenario.description,
            makespan_seconds=clock,
            total_occupancy_cost=accountant.total_occupancy,
            rows=accountant.rows,
            tenants={tenant.name: state.outcome},
            placement=cluster.scheduler.placement.name,
            reward_modes=self._reward_modes(),
        )


# --------------------------------------------------------------------- #
# Replication runners
# --------------------------------------------------------------------- #
def run_online_replication(
    simulation: "OnlineSimulation", seed_seq: np.random.SeedSequence
) -> Tuple[np.ndarray, np.ndarray]:
    """Play one replication of the online loop; return per-round ``(rmse, accuracy)``.

    This is the engine's sequential round driver behind
    :class:`~repro.evaluation.simulation.OnlineSimulation`: each round a
    workflow arrives, the bandit recommends, the (noisy) runtime is observed
    through the replay fast path or the workload model, and the observation
    feeds back through the recommender.  Scoring is deferred: the per-round
    coefficient matrices are recorded (only the observed arm's row changes
    per round) and the whole series is scored in one batched pass at the end.
    """
    from repro.core.banditware import BanditWare

    cfg = simulation.config
    rng = np.random.default_rng(seed_seq)
    bandit = BanditWare(
        catalog=simulation.catalog,
        feature_names=simulation.feature_names,
        policy=cfg.make_policy(),
        arm_model_factory=cfg.make_arm_model_factory(),
        seed=rng,
        track_history=False,
    )
    models = bandit.models
    n_arms = len(simulation.catalog)
    n_pool = len(simulation._workflow_pool)
    sample_from_frame = simulation.sample_from_frame
    env_fast = simulation._env_fast
    truth = simulation._truth
    pool_sigma = simulation._pool_sigma
    pool_contexts = simulation._pool_contexts
    recommend = bandit.recommend_vector
    observe = bandit.observe_vector
    W_hist = np.zeros((cfg.n_rounds, n_arms, len(simulation.feature_names)))
    b_hist = np.zeros((cfg.n_rounds, n_arms))
    for round_idx in range(cfg.n_rounds):
        if sample_from_frame:
            pool_idx = int(rng.integers(n_pool))
            context = pool_contexts[pool_idx]
        else:
            features = simulation.workload.sample_features(rng)
            context = np.asarray(
                [
                    (float(features[name]) - simulation._feature_mean[i])
                    / simulation._feature_std[i]
                    for i, name in enumerate(simulation.feature_names)
                ]
            )
        recommendation = recommend(context)
        arm = recommendation.decision.arm_index
        if env_fast:
            # Inlined WorkloadModel.observed_runtime on precomputed
            # expectation/noise matrices (identical draws and clamping).
            mean = truth[pool_idx, arm]
            noise = pool_sigma[pool_idx, arm]
            value = float(rng.normal(mean, noise)) if noise > 0 else mean
            runtime = max(value, 0.01 * mean, 0.0)
        else:
            if sample_from_frame:
                features = simulation._workflow_pool[pool_idx]
            runtime = simulation.workload.observed_runtime(
                features, recommendation.hardware, rng
            )
        # Contexts come from the validated evaluation arrays (or the
        # workload sampler) and runtimes from observed_runtime's clamp,
        # so the engine skips per-round re-validation.
        observe(context, arm, float(runtime), validate=False)
        if round_idx:
            W_hist[round_idx] = W_hist[round_idx - 1]
            b_hist[round_idx] = b_hist[round_idx - 1]
        W_hist[round_idx, arm] = models[arm].coefficients
        b_hist[round_idx, arm] = models[arm].intercept
    return simulation._score_series(W_hist, b_hist)


# Process-pool plumbing.  The simulation object is shipped to each worker
# once (via the initializer) instead of once per replication.
_WORKER_SIMULATION: Optional["OnlineSimulation"] = None


def _replication_worker_init(simulation: "OnlineSimulation") -> None:
    global _WORKER_SIMULATION
    _WORKER_SIMULATION = simulation


def _replication_worker_run(seed_seq: np.random.SeedSequence) -> Tuple[np.ndarray, np.ndarray]:
    assert _WORKER_SIMULATION is not None, "worker used before initialisation"
    return run_online_replication(_WORKER_SIMULATION, seed_seq)


def run_replications(
    simulation: "OnlineSimulation",
    sequences: Optional[Sequence[np.random.SeedSequence]] = None,
    n_workers: Optional[int] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Run a simulation's replications (serial or process pool), in order.

    Results are ordered like ``sequences`` and each replication owns an
    independent child seed, so the parallel path is bit-identical to the
    serial one regardless of scheduling.
    """
    cfg = simulation.config
    if sequences is None:
        sequences = replication_sequences(cfg.seed, cfg.n_simulations)
    if n_workers is None:
        n_workers = cfg.n_workers
    n_workers = min(n_workers, len(sequences))
    if n_workers <= 1:
        return [run_online_replication(simulation, seq) for seq in sequences]
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_replication_worker_init,
            initargs=(simulation,),
        ) as executor:
            return list(executor.map(_replication_worker_run, sequences))
    except (OSError, PermissionError, ImportError, BrokenExecutor,
            pickle.PicklingError, AttributeError, TypeError):
        # Process pools can be unavailable (restricted sandboxes, exotic
        # platforms) or the simulation unpicklable (custom workloads with
        # closures on spawn-start platforms); threads preserve correctness,
        # if not parallel speed.  A genuine bug inside the replication loop
        # re-raises from the thread fallback.
        with ThreadPoolExecutor(max_workers=n_workers) as executor:
            return list(
                executor.map(lambda seq: run_online_replication(simulation, seq), sequences)
            )


# --------------------------------------------------------------------- #
# Scenario sweeps
# --------------------------------------------------------------------- #
def _sweep_worker(
    scenario: "ContentionScenario", cost_model: Optional[ResourceCostModel] = None
) -> ContentionResult:
    return ExperimentEngine(scenario, cost_model=cost_model).run()


def run_scenario_sweep(
    scenarios: Sequence["ContentionScenario"],
    n_workers: int = 1,
    cost_model: Optional[ResourceCostModel] = None,
) -> List[ContentionResult]:
    """Run many scenarios, optionally fanning out over a process pool.

    Scenario runs are independent, so the pool is embarrassingly parallel;
    results come back in input order either way.  Scenarios (and their
    workloads, arrival processes and schedulers) are picklable by
    construction, which the contention test-suite pins.  ``cost_model``
    applies to every run, exactly as it would in ``run_scenario``.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    worker = partial(_sweep_worker, cost_model=cost_model)
    n_workers = min(n_workers, len(scenarios)) if scenarios else 1
    if n_workers <= 1:
        return [worker(scenario) for scenario in scenarios]
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            return list(executor.map(worker, scenarios))
    except (OSError, PermissionError, ImportError, BrokenExecutor,
            pickle.PicklingError, AttributeError, TypeError):
        # Same fallback contract as run_replications.
        with ThreadPoolExecutor(max_workers=n_workers) as executor:
            return list(executor.map(worker, scenarios))


# --------------------------------------------------------------------- #
# Scenario replications with confidence bands
# --------------------------------------------------------------------- #
@dataclass
class ReplicationSummary:
    """Per-round mean ± spread curves across replications of one scenario.

    A single scenario run is one sample of every headline number; the
    replication runner plays the same scenario under ``n`` consecutive
    seeds and aggregates the per-completion curves, so reports can show
    confidence bands instead of point estimates.  Completion index is the
    round axis: every replication completes the same number of workflows
    (each tenant's ``n_workflows`` is part of the scenario), so the curve
    matrices are rectangular by construction.

    Attributes
    ----------
    scenario_name:
        The replicated scenario.
    seeds:
        The seed of each replication, in result order.
    results:
        The full per-replication :class:`ContentionResult` objects.
    regret_curves, queue_regret_curves, interference_regret_curves:
        ``(n_replications, n_rounds)`` cumulative regret in completion
        order (runtime, queue-inclusive and interference-inclusive).
    slowdown_curves:
        ``(n_replications, n_rounds)`` running mean slowdown in completion
        order.
    """

    scenario_name: str
    seeds: List[int]
    results: List[ContentionResult]
    regret_curves: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    queue_regret_curves: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    interference_regret_curves: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    slowdown_curves: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))

    @property
    def n_replications(self) -> int:
        return len(self.results)

    @property
    def n_rounds(self) -> int:
        return int(self.regret_curves.shape[1]) if self.regret_curves.size else 0

    def band(self, which: str = "queue_regret", z: float = 1.96) -> Dict[str, np.ndarray]:
        """Per-round ``mean``/``std``/``lo``/``hi`` arrays for one curve family.

        ``which`` is ``"regret"``, ``"queue_regret"``,
        ``"interference_regret"`` or ``"slowdown"``; ``lo``/``hi`` is the
        normal-approximation confidence band ``mean ± z * std / sqrt(n)``
        (``z=1.96`` for 95%).
        """
        curves = {
            "regret": self.regret_curves,
            "queue_regret": self.queue_regret_curves,
            "interference_regret": self.interference_regret_curves,
            "slowdown": self.slowdown_curves,
        }
        if which not in curves:
            raise KeyError(f"unknown curve {which!r}; known: {sorted(curves)}")
        matrix = curves[which]
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0, ddof=1) if matrix.shape[0] > 1 else np.zeros_like(mean)
        half = z * std / np.sqrt(matrix.shape[0]) if matrix.shape[0] else std
        return {"mean": mean, "std": std, "lo": mean - half, "hi": mean + half}

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """Headline scalars as ``(mean, std)`` across replications."""
        keys = [
            "makespan_seconds",
            "total_queue_seconds",
            "cumulative_regret",
            "queue_inclusive_regret",
            "interference_inclusive_regret",
            "mean_slowdown",
            "occupancy_cost",
            "accuracy",
        ]
        summaries = [result.summary() for result in self.results]
        table = {key: np.asarray([s[key] for s in summaries]) for key in keys}
        return {
            key: (
                float(values.mean()),
                float(values.std(ddof=1)) if values.size > 1 else 0.0,
            )
            for key, values in table.items()
        }


def run_scenario_replications(
    scenario: "ContentionScenario",
    n_replications: int,
    n_workers: int = 1,
    cost_model: Optional[ResourceCostModel] = None,
) -> ReplicationSummary:
    """Replicate one scenario over consecutive seeds and aggregate band curves.

    Replication ``i`` runs the scenario with seed ``scenario.seed + i``
    (every stream -- features, arrivals, warm starts, runtime noise,
    exploration -- derives from the scenario seed, so consecutive seeds are
    independent replications of the same setup).  The fan-out reuses
    :func:`run_scenario_sweep`, so ``n_workers > 1`` distributes
    replications over a process pool with the usual thread fallback.
    """
    if n_replications < 1:
        raise ValueError(f"n_replications must be >= 1, got {n_replications}")
    seeds = [scenario.seed + i for i in range(n_replications)]
    replications = [dataclass_replace(scenario, seed=seed) for seed in seeds]
    results = run_scenario_sweep(replications, n_workers=n_workers, cost_model=cost_model)
    lengths = {len(result.rows) for result in results}
    if len(lengths) > 1:
        raise RuntimeError(
            f"replications completed unequal workflow counts {sorted(lengths)}; "
            "per-round aggregation needs rectangular curves"
        )
    regret = np.vstack(
        [np.cumsum([float(row["runtime_regret"]) for row in r.rows]) for r in results]
    )
    queue_regret = np.vstack(
        [
            np.cumsum([float(row["queue_inclusive_regret"]) for row in r.rows])
            for r in results
        ]
    )
    interference_regret = np.vstack(
        [
            np.cumsum(
                [
                    float(row["runtime_regret"]) + float(row["interference_seconds"])
                    for row in r.rows
                ]
            )
            for r in results
        ]
    )
    rounds = np.arange(1, len(results[0].rows) + 1)
    slowdown = np.vstack(
        [
            np.cumsum([float(row["slowdown"]) for row in r.rows]) / rounds
            for r in results
        ]
    )
    return ReplicationSummary(
        scenario_name=scenario.name,
        seeds=seeds,
        results=list(results),
        regret_curves=regret,
        queue_regret_curves=queue_regret,
        interference_regret_curves=interference_regret,
        slowdown_curves=slowdown,
    )
