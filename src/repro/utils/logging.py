"""A tiny structured event log.

The cluster simulator and the NDP-style recommendation service record what
they did (which pod was scheduled where, what was recommended and why) as a
list of :class:`LogRecord` entries.  Tests assert against these records, and
example scripts print them for a human-readable account of an online run.

The standard :mod:`logging` module is deliberately avoided: the log here is a
data structure that experiments consume, not a side channel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["LogRecord", "EventLog", "NullLog"]


@dataclass(frozen=True)
class LogRecord:
    """A single structured log entry.

    Attributes
    ----------
    seq:
        Monotonically increasing sequence number within the owning log.
    time:
        Simulation time (seconds) the event refers to; ``0.0`` when the
        emitting component is not time-aware.
    source:
        Short component name, e.g. ``"scheduler"`` or ``"banditware"``.
    event:
        Event name, e.g. ``"pod_scheduled"`` or ``"recommendation"``.
    detail:
        Free-form key/value payload.
    """

    seq: int
    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.seq:05d} t={self.time:.3f}] {self.source}:{self.event} {kv}"


class EventLog:
    """An append-only in-memory event log."""

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self._counter = itertools.count()

    def record(self, source: str, event: str, time: float = 0.0, **detail: Any) -> LogRecord:
        """Append a record and return it."""
        rec = LogRecord(seq=next(self._counter), time=float(time), source=source, event=event, detail=dict(detail))
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> LogRecord:
        return self._records[idx]

    def filter(self, source: Optional[str] = None, event: Optional[str] = None) -> List[LogRecord]:
        """Return records matching the given ``source`` and/or ``event``."""
        out = []
        for rec in self._records:
            if source is not None and rec.source != source:
                continue
            if event is not None and rec.event != event:
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        """Drop all records (the sequence counter keeps increasing)."""
        self._records.clear()


class NullLog(EventLog):
    """An :class:`EventLog` that silently discards everything.

    Used as the default log so that hot loops pay no bookkeeping cost unless
    the caller explicitly asks for a real log.
    """

    def record(self, source: str, event: str, time: float = 0.0, **detail: Any) -> LogRecord:
        return LogRecord(seq=-1, time=float(time), source=source, event=event, detail=dict(detail))
