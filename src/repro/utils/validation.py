"""Argument-validation helpers shared across the library.

These helpers keep error messages consistent and make the public API fail
loudly on misuse (negative runtimes, malformed feature matrices, mismatched
lengths) instead of silently producing nonsense recommendations.
"""

from __future__ import annotations

from typing import Any, Sequence, Sized

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_feature_matrix",
    "check_same_length",
]


def check_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite number > 0."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite number >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float = -np.inf,
    high: float = np.inf,
    inclusive: bool = True,
) -> float:
    """Raise :class:`ValueError` unless ``low (<|<=) value (<|<=) high``."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} {name} {op} {high}, got {value!r}")
    return value


def check_feature_matrix(x: Any, name: str = "X", n_features: int | None = None) -> np.ndarray:
    """Coerce ``x`` into a 2-D float array of shape ``(n_samples, n_features)``.

    A 1-D input is interpreted as a single sample.  Non-finite entries raise.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    if n_features is not None and arr.shape[1] != n_features:
        raise ValueError(
            f"{name} has {arr.shape[1]} features but {n_features} were expected"
        )
    return arr


def check_same_length(*pairs: tuple[str, Sized]) -> int:
    """Check that all named sized objects have equal length; return that length."""
    if not pairs:
        return 0
    lengths = {name: len(obj) for name, obj in pairs}
    unique = set(lengths.values())
    if len(unique) > 1:
        detail = ", ".join(f"{k}={v}" for k, v in lengths.items())
        raise ValueError(f"length mismatch: {detail}")
    return unique.pop()
