"""Deterministic random-number-generator plumbing.

All stochastic components in the library accept a ``seed`` argument that may
be ``None``, an ``int``, a :class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalises all of these
into a generator so that experiment scripts can fix a single integer seed and
obtain bit-for-bit reproducible figures.

The evaluation harness replays the same experiment many times ("simulations"
in the paper's terminology, e.g. ``n_sim = 100``).  Each replication must see
an *independent* random stream while remaining reproducible as a family;
:func:`spawn_generators` and :class:`SeedSequencePool` provide that via NumPy
seed-sequence spawning.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

__all__ = ["SeedLike", "as_generator", "spawn_generators", "SeedSequencePool"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int``, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Examples
    --------
    >>> g = as_generator(42)
    >>> g2 = as_generator(42)
    >>> float(g.random()) == float(g2.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, a numpy SeedSequence or a numpy Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Create ``n`` independent generators derived from ``seed``.

    Independence is achieved through :meth:`numpy.random.SeedSequence.spawn`,
    which guarantees non-overlapping streams.  When ``seed`` is already a
    ``Generator`` the child streams are derived from its bit generator's
    seed sequence when available and from fresh entropy otherwise.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if ss is None:  # pragma: no cover - extremely unusual
            ss = np.random.SeedSequence()
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif seed is None:
        ss = np.random.SeedSequence()
    else:
        ss = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class SeedSequencePool:
    """A pool of reproducible child seeds keyed by insertion order.

    The evaluation harness uses one pool per experiment: replication ``i``
    always receives the ``i``-th child seed regardless of how many
    replications run, so adding more simulations never perturbs earlier ones.

    Parameters
    ----------
    seed:
        Root seed for the pool.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        elif isinstance(seed, np.random.Generator):
            root = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
            self._root = root if root is not None else np.random.SeedSequence()
        elif seed is None:
            self._root = np.random.SeedSequence()
        else:
            self._root = np.random.SeedSequence(int(seed))
        self._children: List[np.random.SeedSequence] = []

    def __len__(self) -> int:
        return len(self._children)

    def _ensure(self, index: int) -> None:
        while len(self._children) <= index:
            self._children.extend(self._root.spawn(max(1, index + 1 - len(self._children))))

    def sequence(self, index: int) -> np.random.SeedSequence:
        """Return the child :class:`~numpy.random.SeedSequence` for ``index``.

        Seed sequences (unlike generators) are cheap to pickle, which is how
        the parallel evaluation engine ships replication seeds to worker
        processes while staying bit-identical to the serial path:
        ``default_rng(pool.sequence(i))`` and ``pool.generator(i)`` produce
        the same stream.
        """
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        self._ensure(index)
        return self._children[index]

    def generator(self, index: int) -> np.random.Generator:
        """Return the generator for child ``index`` (created lazily)."""
        return np.random.default_rng(self.sequence(index))

    def generators(self, n: int) -> List[np.random.Generator]:
        """Return generators for children ``0 .. n-1``."""
        return [self.generator(i) for i in range(n)]
