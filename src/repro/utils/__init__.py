"""Shared utilities for the BanditWare reproduction.

The :mod:`repro.utils` package groups small cross-cutting helpers used by
every other subsystem:

* :mod:`repro.utils.rng` -- deterministic random-number-generator plumbing.
  Every stochastic component in the library (workload generators, bandit
  policies, simulation replications) accepts either an integer seed or a
  :class:`numpy.random.Generator` and funnels it through
  :func:`repro.utils.rng.as_generator` so experiments are reproducible.
* :mod:`repro.utils.validation` -- argument-checking helpers that raise
  consistent, descriptive errors.
* :mod:`repro.utils.logging` -- a tiny structured logger used by the cluster
  simulator and the recommendation service.
"""

from repro.utils.rng import SeedSequencePool, as_generator, spawn_generators
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_feature_matrix,
    check_same_length,
)
from repro.utils.logging import EventLog, LogRecord, NullLog

__all__ = [
    "SeedSequencePool",
    "as_generator",
    "spawn_generators",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_feature_matrix",
    "check_same_length",
    "EventLog",
    "LogRecord",
    "NullLog",
]
