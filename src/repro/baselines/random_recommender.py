"""The random-guess recommender reference."""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.rng import SeedLike, as_generator

__all__ = ["RandomRecommender"]


class RandomRecommender:
    """Recommend a hardware configuration uniformly at random.

    The paper repeatedly benchmarks accuracy against the random-guess rate
    (1/|H|); instantiating that reference as a recommender lets the evaluation
    harness score it with exactly the same code paths as BanditWare.
    """

    def __init__(self, catalog: HardwareCatalog, seed: SeedLike = None):
        self.catalog = catalog
        self._rng = as_generator(seed)

    def recommend(self, features: Dict[str, float]) -> HardwareConfig:
        """Return a uniformly random configuration (features are ignored)."""
        return self.catalog[int(self._rng.integers(len(self.catalog)))]

    def observe(self, features: Dict[str, float], hardware, runtime_seconds: float) -> None:
        """No-op: the random recommender never learns."""

    @property
    def expected_accuracy(self) -> float:
        """The theoretical accuracy of random guessing: ``1 / |H|``."""
        return 1.0 / len(self.catalog)
