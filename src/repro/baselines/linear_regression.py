"""The offline linear-regression recommender baseline (Sections 4.2 / 4.3).

The paper's comparison protocol is: draw a small training subset (25 rows),
fit a linear runtime model per hardware on it, and evaluate the model on the
full dataset; repeat 100 times and report the spread of RMSE and R².  This
module implements both the single recommender and the 100-model ensemble
experiment behind Figures 5 and 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.models import LeastSquaresModel
from repro.dataframe import DataFrame
from repro.evaluation.metrics import r2_score, rmse
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "LinearRegressionRecommender",
    "RegressionEnsembleResult",
    "train_regression_ensemble",
]


class LinearRegressionRecommender:
    """Fit one least-squares runtime model per hardware, then recommend the fastest.

    Parameters
    ----------
    catalog:
        Hardware configurations that may be recommended.
    feature_names:
        Ordered workflow feature names (the model inputs).
    standardize:
        Standardise features to zero mean / unit variance using statistics of
        the training subset (default).  The model class is unchanged (the
        scaling is linear), but tiny training subsets with wildly-scaled
        features -- e.g. BP3D's ``run_max_mem_rss_bytes`` at ~1e10 next to
        moisture percentages -- no longer produce astronomically bad
        extrapolations.

    Notes
    -----
    Unlike :class:`~repro.core.BanditWare` this recommender is purely offline:
    it must be ``fit`` on a historical table before it can recommend, and it
    never updates afterwards.  That is exactly the property the paper
    contrasts BanditWare's online learning against.
    """

    def __init__(
        self,
        catalog: HardwareCatalog,
        feature_names: Sequence[str],
        standardize: bool = True,
    ):
        if not feature_names:
            raise ValueError("feature_names must contain at least one feature")
        self.catalog = catalog
        self.feature_names = [str(n) for n in feature_names]
        self.standardize = bool(standardize)
        self._models: Dict[str, LeastSquaresModel] = {}
        self._fitted = False
        self._feature_mean = np.zeros(len(self.feature_names))
        self._feature_std = np.ones(len(self.feature_names))

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _context_matrix(self, frame: DataFrame) -> np.ndarray:
        raw = frame.to_numpy(self.feature_names, dtype=float)
        return (raw - self._feature_mean) / self._feature_std

    def _fit_scaler(self, frame: DataFrame) -> None:
        raw = frame.to_numpy(self.feature_names, dtype=float)
        if self.standardize and len(frame) > 1:
            self._feature_mean = raw.mean(axis=0)
            std = raw.std(axis=0)
            self._feature_std = np.where(std > 0, std, 1.0)
        else:
            self._feature_mean = np.zeros(raw.shape[1])
            self._feature_std = np.ones(raw.shape[1])

    def fit(
        self,
        frame: DataFrame,
        hardware_column: str = "hardware",
        runtime_column: str = "runtime_seconds",
    ) -> "LinearRegressionRecommender":
        """Fit per-hardware models from a run-history table.

        Hardware configurations with no rows keep an unfitted (all-zero)
        model, mirroring how a recommender trained on sparse data behaves.
        """
        for column in (hardware_column, runtime_column, *self.feature_names):
            if column not in frame:
                raise KeyError(f"training frame is missing column {column!r}")
        self._fit_scaler(frame)
        self._models = {
            hw.name: LeastSquaresModel(len(self.feature_names)) for hw in self.catalog
        }
        for hw_name, group in frame.groupby(hardware_column):
            name = str(hw_name[0])
            if name not in self._models:
                continue
            X = self._context_matrix(group)
            y = group[runtime_column].to_numpy(float)
            self._models[name].fit(X, y)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    def predict_runtimes(self, features: Dict[str, float]) -> Dict[str, float]:
        """Predicted runtime of a workflow on every hardware configuration."""
        self._require_fitted()
        raw = np.asarray([float(features[name]) for name in self.feature_names])
        x = (raw - self._feature_mean) / self._feature_std
        return {name: float(model.predict(x)) for name, model in self._models.items()}

    def recommend(self, features: Dict[str, float]) -> HardwareConfig:
        """The hardware with the lowest predicted runtime."""
        predictions = self.predict_runtimes(features)
        best = min(predictions, key=lambda name: (predictions[name], self.catalog.index_of(name)))
        return self.catalog[best]

    def model_for(self, hardware: Union[str, HardwareConfig]) -> LeastSquaresModel:
        """The fitted model of one hardware configuration."""
        self._require_fitted()
        name = hardware.name if isinstance(hardware, HardwareConfig) else str(hardware)
        return self._models[name]

    # ------------------------------------------------------------------ #
    def score(
        self,
        frame: DataFrame,
        hardware_column: str = "hardware",
        runtime_column: str = "runtime_seconds",
    ) -> Dict[str, float]:
        """Pooled RMSE and R² of runtime predictions over ``frame``.

        Each row is predicted with the model of the hardware it actually ran
        on, so the score reflects runtime-prediction quality (the quantity
        Figures 5 and 8 report), not recommendation accuracy.
        """
        self._require_fitted()
        X = self._context_matrix(frame)
        hardware = frame[hardware_column].values
        actual = frame[runtime_column].to_numpy(float)
        predicted = np.empty(len(frame))
        for i in range(len(frame)):
            predicted[i] = self._models[str(hardware[i])].predict(X[i])
        return {"rmse": rmse(actual, predicted), "r2": r2_score(actual, predicted)}

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                "this recommender has not been fitted; call fit(frame) before using it"
            )


@dataclass
class RegressionEnsembleResult:
    """Aggregate outcome of the 100-model subset-training experiment.

    Attributes
    ----------
    rmse_scores, r2_scores:
        One entry per trained model, evaluated on the full dataset.
    train_seconds:
        Wall-clock fit time of each model.
    n_samples:
        Training-subset size used for every model.
    """

    rmse_scores: np.ndarray
    r2_scores: np.ndarray
    train_seconds: np.ndarray
    n_samples: int

    def summary(self) -> Dict[str, float]:
        """The statistics the paper quotes: min/max/mean/range of RMSE and R²."""
        return {
            "rmse_min": float(np.min(self.rmse_scores)),
            "rmse_max": float(np.max(self.rmse_scores)),
            "rmse_mean": float(np.mean(self.rmse_scores)),
            "rmse_range": float(np.ptp(self.rmse_scores)),
            "r2_min": float(np.min(self.r2_scores)),
            "r2_max": float(np.max(self.r2_scores)),
            "r2_mean": float(np.mean(self.r2_scores)),
            "r2_range": float(np.ptp(self.r2_scores)),
            "train_seconds_min": float(np.min(self.train_seconds)),
            "train_seconds_max": float(np.max(self.train_seconds)),
            "train_seconds_mean": float(np.mean(self.train_seconds)),
        }


def train_regression_ensemble(
    frame: DataFrame,
    catalog: HardwareCatalog,
    feature_names: Sequence[str],
    n_models: int = 100,
    n_samples: int = 25,
    seed: SeedLike = None,
    hardware_column: str = "hardware",
    runtime_column: str = "runtime_seconds",
    evaluation_frame: Optional[DataFrame] = None,
) -> RegressionEnsembleResult:
    """Train ``n_models`` recommenders on random ``n_samples``-row subsets.

    Each model is evaluated on ``evaluation_frame`` (defaults to the full
    ``frame``), reproducing the paper's protocol for Figures 5 and 8.
    """
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if n_samples > len(frame):
        raise ValueError(
            f"cannot draw {n_samples}-row training subsets from a {len(frame)}-row frame"
        )
    rng = as_generator(seed)
    evaluation_frame = evaluation_frame if evaluation_frame is not None else frame
    rmse_scores = np.empty(n_models)
    r2_scores = np.empty(n_models)
    train_seconds = np.empty(n_models)
    for i in range(n_models):
        subset = frame.sample(n_samples, rng)
        recommender = LinearRegressionRecommender(catalog, feature_names)
        start = time.perf_counter()
        recommender.fit(subset, hardware_column=hardware_column, runtime_column=runtime_column)
        train_seconds[i] = time.perf_counter() - start
        scores = recommender.score(
            evaluation_frame, hardware_column=hardware_column, runtime_column=runtime_column
        )
        rmse_scores[i] = scores["rmse"]
        r2_scores[i] = scores["r2"]
    return RegressionEnsembleResult(
        rmse_scores=rmse_scores,
        r2_scores=r2_scores,
        train_seconds=train_seconds,
        n_samples=n_samples,
    )
