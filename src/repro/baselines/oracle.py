"""Oracle baselines: the full-data fit and the ground-truth workload model.

Two distinct "best possible" references appear in the paper:

* the **full fit** -- per-hardware least squares fitted on the *entire*
  historical dataset ("the theoretical best possible model that the
  contextual bandit can learn"), used as the red/orange reference line of the
  RMSE and accuracy plots; and
* the **ground truth** -- the workload model itself, which only the
  simulation harness has access to.  It defines which hardware really is
  fastest for a workflow, which is what "accuracy" is measured against.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.baselines.linear_regression import LinearRegressionRecommender
from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.workloads.base import WorkloadModel

__all__ = ["FullFitOracle", "GroundTruthOracle"]


class FullFitOracle(LinearRegressionRecommender):
    """Per-hardware least squares fitted on the complete historical dataset.

    This is simply a :class:`LinearRegressionRecommender` with a constructor
    that fits immediately, so benchmarks read as the paper describes:
    "We begin by fitting all our data (1316 samples) as the baseline".
    """

    def __init__(
        self,
        frame: DataFrame,
        catalog: HardwareCatalog,
        feature_names: Sequence[str],
        hardware_column: str = "hardware",
        runtime_column: str = "runtime_seconds",
        standardize: bool = False,
    ):
        # Unlike the 25-sample ensembles, the full-data fit is well determined,
        # so features are kept in their natural units by default: the per-arm
        # coefficients are then directly comparable to the workload models'
        # ground truth (Figure 3) and to the paper's plotted fits.
        super().__init__(catalog, feature_names, standardize=standardize)
        self.fit(frame, hardware_column=hardware_column, runtime_column=runtime_column)
        self._reference_scores = self.score(
            frame, hardware_column=hardware_column, runtime_column=runtime_column
        )

    @property
    def reference_rmse(self) -> float:
        """RMSE of the full fit on its own training data (the paper's reference line)."""
        return self._reference_scores["rmse"]

    @property
    def reference_r2(self) -> float:
        """R² of the full fit on its own training data."""
        return self._reference_scores["r2"]


class GroundTruthOracle:
    """Knows the workload model's true expected runtimes.

    Used exclusively by the evaluation harness: it provides the "correct"
    hardware for accuracy scoring and the best expected runtime for regret
    accounting.  It is *not* available to BanditWare or to any baseline
    recommender.
    """

    def __init__(self, workload: WorkloadModel, catalog: HardwareCatalog):
        self.workload = workload
        self.catalog = catalog

    def expected_runtimes(self, features: Dict[str, float]) -> Dict[str, float]:
        """True expected runtime of ``features`` on every configuration."""
        return {
            hw.name: self.workload.expected_runtime(features, hw) for hw in self.catalog
        }

    def best_hardware(self, features: Dict[str, float]) -> HardwareConfig:
        """The configuration with the lowest true expected runtime."""
        runtimes = self.expected_runtimes(features)
        best = min(runtimes, key=lambda name: (runtimes[name], self.catalog.index_of(name)))
        return self.catalog[best]

    def best_runtime(self, features: Dict[str, float]) -> float:
        """The lowest true expected runtime for ``features``."""
        return min(self.expected_runtimes(features).values())

    def acceptable_hardware(
        self,
        features: Dict[str, float],
        tolerance_ratio: float = 0.0,
        tolerance_seconds: float = 0.0,
    ) -> set:
        """Configurations whose true runtime is within the tolerance of the best.

        The paper's tolerance experiments (Figures 11 and 12) count a
        recommendation as acceptable when its true runtime is within the
        allowed slowdown of the true optimum; this is the ground-truth side of
        that check.
        """
        if tolerance_ratio < 0 or tolerance_seconds < 0:
            raise ValueError("tolerances must be non-negative")
        runtimes = self.expected_runtimes(features)
        limit = (1.0 + tolerance_ratio) * min(runtimes.values()) + tolerance_seconds
        return {name for name, value in runtimes.items() if value <= limit}
