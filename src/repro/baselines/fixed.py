"""A context-free baseline: always recommend the historically-best configuration."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.dataframe import DataFrame
from repro.hardware import HardwareCatalog, HardwareConfig

__all__ = ["BestFixedHardwareRecommender"]


class BestFixedHardwareRecommender:
    """Recommend the single configuration with the lowest historical mean runtime.

    This is the strongest *context-free* strategy: if one configuration
    dominated every past run it cannot be beaten, but whenever the best
    hardware depends on the workflow's features (the regime BanditWare
    targets) it leaves runtime on the table.  The ablation benchmarks use it
    to quantify how much the contextual part of the contextual bandit buys.
    """

    def __init__(self, catalog: HardwareCatalog):
        self.catalog = catalog
        self._choice: Optional[HardwareConfig] = None
        self._mean_runtimes: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._choice is not None

    @property
    def mean_runtimes(self) -> Dict[str, float]:
        """Historical mean runtime per configuration (after :meth:`fit`)."""
        return dict(self._mean_runtimes)

    def fit(
        self,
        frame: DataFrame,
        hardware_column: str = "hardware",
        runtime_column: str = "runtime_seconds",
    ) -> "BestFixedHardwareRecommender":
        """Compute per-hardware mean runtimes from a run-history table."""
        if hardware_column not in frame or runtime_column not in frame:
            raise KeyError(
                f"frame must contain {hardware_column!r} and {runtime_column!r} columns"
            )
        means: Dict[str, float] = {}
        for key, group in frame.groupby(hardware_column):
            name = str(key[0])
            if name in self.catalog:
                means[name] = float(np.mean(group[runtime_column].to_numpy(float)))
        if not means:
            raise ValueError("no rows in the frame match the catalog's hardware names")
        self._mean_runtimes = means
        best = min(means, key=lambda name: (means[name], self.catalog.index_of(name)))
        self._choice = self.catalog[best]
        return self

    def recommend(self, features: Dict[str, float]) -> HardwareConfig:
        """Return the fixed best configuration (features are ignored)."""
        if self._choice is None:
            raise RuntimeError("call fit(frame) before recommending")
        return self._choice

    def observe(self, features: Dict[str, float], hardware, runtime_seconds: float) -> None:
        """No-op: the fixed recommender never adapts online."""
