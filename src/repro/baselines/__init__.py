"""Baseline recommenders the paper compares BanditWare against.

* :class:`~repro.baselines.linear_regression.LinearRegressionRecommender` --
  the offline recommender of Sections 4.2/4.3: fit one linear model per
  hardware from a (small) training subset, then recommend the hardware with
  the lowest predicted runtime.  The paper trains 100 such models on
  25-sample subsets and reports the spread of their RMSE/R² (Figures 5 and 8).
* :class:`~repro.baselines.oracle.FullFitOracle` -- the "theoretical best
  possible model" the paper fits on all 1316 samples and uses as the RMSE
  reference line in Figures 4 and 7.
* :class:`~repro.baselines.oracle.GroundTruthOracle` -- knows the workload
  model itself; used by the evaluation harness to score accuracy/regret.
* :class:`~repro.baselines.random_recommender.RandomRecommender` -- the
  random-guess reference.
* :class:`~repro.baselines.fixed.BestFixedHardwareRecommender` -- always
  recommends the single configuration that is best on average (a context-free
  baseline the bandit must beat when the best hardware depends on features).
"""

from repro.baselines.linear_regression import (
    LinearRegressionRecommender,
    RegressionEnsembleResult,
    train_regression_ensemble,
)
from repro.baselines.oracle import FullFitOracle, GroundTruthOracle
from repro.baselines.random_recommender import RandomRecommender
from repro.baselines.fixed import BestFixedHardwareRecommender

__all__ = [
    "LinearRegressionRecommender",
    "RegressionEnsembleResult",
    "train_regression_ensemble",
    "FullFitOracle",
    "GroundTruthOracle",
    "RandomRecommender",
    "BestFixedHardwareRecommender",
]
