"""Progress-based execution and pluggable interference models."""

import pytest

from repro.cluster import (
    AutoscalingNodePool,
    CapacityContention,
    ClusterSimulator,
    FIFOScheduler,
    LinearSlowdown,
    Node,
    NoInterference,
    Pod,
    PodPhase,
    PriorityScheduler,
)
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.workloads import LinearRuntimeWorkload

from conftest import constant_workload as _constant_workload

_CATALOG = HardwareCatalog(
    [
        HardwareConfig("small", cpus=2, memory_gb=8),
        HardwareConfig("big", cpus=4, memory_gb=8),
    ]
)


def _cluster(runtimes=None, interference=None, nodes=None, scheduler=None, autoscaler=None, workload=None):
    return ClusterSimulator(
        workload=workload or _constant_workload(runtimes or {"small": 10.0, "big": 10.0}),
        catalog=_CATALOG,
        nodes=nodes or [Node("n", cpus=8, memory_gb=32)],
        scheduler=scheduler,
        seed=0,
        autoscaler=autoscaler,
        interference=interference,
    )


def _noisy_workload(name="noisy"):
    return LinearRuntimeWorkload(
        feature_ranges={"x": (0.0, 1.0)},
        coefficients={
            "small": ({"x": 5.0}, 20.0),
            "big": ({"x": 3.0}, 12.0),
        },
        noise_sigma=2.0,
        name=name,
    )


class TestInterferenceModels:
    def _pod(self, hw="small", name="p"):
        return Pod(name, _CATALOG[hw])

    def test_solo_pod_runs_at_full_speed_in_every_model(self):
        node = Node("n", cpus=8, memory_gb=32)
        for model in (NoInterference(), LinearSlowdown(0.7), CapacityContention(0.5)):
            assert model.speed(self._pod(), node, []) == 1.0

    def test_no_interference_ignores_neighbours(self):
        node = Node("n", cpus=8, memory_gb=32)
        others = [self._pod("big", "q"), self._pod("big", "r")]
        assert NoInterference().speed(self._pod(), node, others) == 1.0

    def test_linear_slowdown_scales_with_co_resident_utilisation(self):
        node = Node("n", cpus=8, memory_gb=32)
        one = [self._pod("small", "q")]  # 2/8 cpus = 0.25
        two = [self._pod("small", "q"), self._pod("big", "r")]  # 6/8 = 0.75
        model = LinearSlowdown(alpha=1.0)
        assert model.speed(self._pod(), node, one) == pytest.approx(1 / 1.25)
        assert model.speed(self._pod(), node, two) == pytest.approx(1 / 1.75)
        assert model.speed(self._pod(), node, two) < model.speed(self._pod(), node, one)

    def test_linear_slowdown_uses_bottleneck_dimension(self):
        # Memory is the contended resource here: 24/32 GiB vs 4/16 CPUs.
        node = Node("n", cpus=16, memory_gb=32)
        hog = Pod("q", HardwareConfig("memhog", cpus=4, memory_gb=24))
        expected = 1 / (1 + 0.5 * (24 / 32))
        assert LinearSlowdown(0.5).speed(self._pod(), node, [hog]) == pytest.approx(expected)

    def test_capacity_contention_throttles_past_usable_fraction(self):
        node = Node("n", cpus=8, memory_gb=64)
        model = CapacityContention(cpu_fraction=0.5)  # 4 usable CPUs shared
        others = [self._pod("big", "q")]  # total 2 + 4 = 6 > 4
        assert model.speed(self._pod(), node, others) == pytest.approx(4 / 6)

    def test_capacity_contention_below_threshold_is_free(self):
        node = Node("n", cpus=8, memory_gb=64)
        model = CapacityContention(cpu_fraction=0.75)  # 6 usable CPUs
        others = [self._pod("small", "q")]  # total 4 <= 6
        assert model.speed(self._pod(), node, others) == 1.0

    def test_model_validation(self):
        with pytest.raises(ValueError):
            LinearSlowdown(alpha=-0.1)
        with pytest.raises(ValueError):
            CapacityContention(cpu_fraction=0.0)
        with pytest.raises(ValueError):
            CapacityContention(memory_fraction=1.5)

    def test_simulator_rejects_out_of_range_speed(self):
        class Bogus(NoInterference):
            def speed(self, pod, node, co_residents):
                return 2.0 if co_residents else 1.0

        sim = _cluster(interference=Bogus())
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        with pytest.raises(ValueError, match="rates must be in"):
            sim.run_until_idle()

    def test_simulator_rejects_slowed_solo_pod(self):
        class Sluggish(NoInterference):
            def speed(self, pod, node, co_residents):
                return 0.5

        sim = _cluster(interference=Sluggish())
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        with pytest.raises(ValueError, match="solo pods"):
            sim.run_until_idle()


class TestProgressExecution:
    def test_no_interference_observed_equals_planned_bit_for_bit(self):
        sim = _cluster(workload=_noisy_workload())
        for x in (0.1, 0.5, 0.9):
            sim.submit({"x": x}, "small", at_time=0.0)
        runs = sim.run_until_idle()
        for run in runs:
            assert run.record.runtime_seconds == run.planned_runtime_seconds
            assert run.slowdown == 1.0

    def test_two_co_resident_pods_slow_each_other_down(self):
        # Two 10s pods sharing the node under alpha=1: each runs at
        # 1/(1+0.25) while the other is present.
        sim = _cluster(interference=LinearSlowdown(alpha=1.0))
        a = sim.submit({"x": 0.0}, "small", at_time=0.0)
        b = sim.submit({"x": 0.0}, "small", at_time=0.0)
        runs = sim.run_until_idle()
        assert len(runs) == 2
        # Both progress at 0.8 until the first finishes at t=12.5; the
        # survivor then needs no further slowdown.  First: 10/0.8 = 12.5.
        first, second = sorted(runs, key=lambda r: r.finish_time)
        assert first.finish_time == pytest.approx(12.5)
        assert first.record.runtime_seconds == pytest.approx(12.5)
        # Second: progressed 10 work-seconds' worth at 0.8 over 12.5s, so
        # remaining 0 work... identical pods tie; both finish at 12.5.
        assert second.finish_time == pytest.approx(12.5)
        assert a.slowdown == pytest.approx(1.25)
        assert b.slowdown == pytest.approx(1.25)

    def test_departure_speeds_up_the_survivor(self):
        # A 5s pod and a 20s pod co-reside under alpha=1 (u=0.25 -> 0.8).
        sim = _cluster(
            runtimes={"small": 5.0, "big": 20.0},
            interference=LinearSlowdown(alpha=1.0),
        )
        short = sim.submit({"x": 0.0}, "small", at_time=0.0)
        long = sim.submit({"x": 0.0}, "big", at_time=0.0)
        runs = sim.run_until_idle()
        # short: 5 work at 1/(1+4/8)=2/3 -> finishes at 7.5.
        assert short.finish_time == pytest.approx(7.5)
        # long: at t=7.5 progressed 7.5 * (1/(1+2/8)) = 6 of 20; the
        # remaining 14 run at full speed -> finishes at 21.5.
        assert long.finish_time == pytest.approx(21.5)
        assert long.observed_runtime_seconds == pytest.approx(21.5)
        assert long.slowdown == pytest.approx(21.5 / 20.0)

    def test_arrival_slows_down_a_running_pod(self):
        sim = _cluster(
            runtimes={"small": 10.0, "big": 30.0},
            interference=LinearSlowdown(alpha=2.0),
        )
        early = sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "small", at_time=5.0)
        sim.run_until_idle()
        # early ran alone for 5s (5 work done), then at 1/(1+2*0.25)=2/3:
        # remaining 5 work takes 7.5s -> finish at 12.5.
        assert early.finish_time == pytest.approx(12.5)
        assert early.slowdown == pytest.approx(1.25)

    def test_queueing_is_not_interference(self):
        # A pod waiting for capacity has zero progress and zero slowdown:
        # only co-residency inflates observed runtime.
        sim = _cluster(
            nodes=[Node("tiny", cpus=2, memory_gb=16)],
            interference=LinearSlowdown(alpha=5.0),
        )
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        waiting = sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.run_until_idle()
        assert waiting.queue_seconds == pytest.approx(10.0)
        assert waiting.slowdown == pytest.approx(1.0)  # it always ran alone

    def test_completed_run_slowdown_property(self):
        sim = _cluster(interference=LinearSlowdown(alpha=1.0))
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        runs = sim.run_until_idle()
        for run in runs:
            assert run.slowdown == pytest.approx(
                run.record.runtime_seconds / run.planned_runtime_seconds
            )
            assert run.slowdown > 1.0


class TestDrawAtSubmitDeterminism:
    """Regression: the ground-truth draw must not depend on scheduling order."""

    def _submissions(self, sim, priorities):
        pods = []
        for i, priority in enumerate(priorities):
            pods.append(
                sim.submit({"x": 0.3 + 0.1 * i}, "big", at_time=float(i), priority=priority)
            )
        sim.run_until_idle()
        return pods

    def test_planned_runtimes_identical_across_schedulers(self):
        # Same submission order, different service order (FIFO vs priority
        # with preemption): the draws must be identical pod for pod.
        fifo = _cluster(workload=_noisy_workload(), scheduler=FIFOScheduler(),
                        nodes=[Node("n", cpus=4, memory_gb=32)])
        prio = _cluster(workload=_noisy_workload(), scheduler=PriorityScheduler(preemption=True),
                        nodes=[Node("n", cpus=4, memory_gb=32)])
        priorities = [0, 5, 10, 0, 7]
        fifo_pods = self._submissions(fifo, priorities)
        prio_pods = self._submissions(prio, priorities)
        assert [p.work_seconds for p in fifo_pods] == [p.work_seconds for p in prio_pods]

    def test_preempted_pod_does_not_redraw(self):
        # The preempted pod restarts with the SAME drawn runtime, and later
        # pods' draws are unaffected by the restart.
        sim = _cluster(workload=_noisy_workload(),
                       scheduler=PriorityScheduler(preemption=True),
                       nodes=[Node("n", cpus=4, memory_gb=32)])
        low = sim.submit({"x": 0.5}, "big", at_time=0.0, priority=0)
        drawn = low.work_seconds
        sim.submit({"x": 0.5}, "big", at_time=2.0, priority=10)
        runs = sim.run_until_idle()
        assert low.preemptions == 1
        assert low.work_seconds == drawn
        (run,) = [r for r in runs if r.pod_name == low.name]
        assert run.record.runtime_seconds == drawn  # NoInterference: observed == draw
        assert run.planned_runtime_seconds == drawn


class TestWorkConservation:
    """Property: the integral of the progress rate over the completed
    attempt equals the drawn work, across preemption and autoscale
    boundaries."""

    def _integral(self, pod):
        # progress_log holds (time, speed) changepoints of the final
        # attempt; integrate the piecewise-constant rate to finish_time.
        points = list(pod.progress_log) + [(pod.finish_time, 0.0)]
        total = 0.0
        for (t0, s0), (t1, _) in zip(points, points[1:]):
            total += (t1 - t0) * s0
        return total

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "interference", [NoInterference(), LinearSlowdown(1.3), CapacityContention(0.6)]
    )
    def test_completed_progress_integrates_to_drawn_work(self, seed, interference):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (0.0, 1.0)},
            coefficients={"small": ({"x": 8.0}, 15.0), "big": ({"x": 4.0}, 9.0)},
            noise_sigma=1.5,
            name="prop",
        )
        sim = ClusterSimulator(
            workload=workload,
            catalog=_CATALOG,
            nodes=[Node("base", cpus=4, memory_gb=16)],
            scheduler=PriorityScheduler(preemption=True),
            seed=seed,
            autoscaler=AutoscalingNodePool(
                node_cpus=4,
                node_memory_gb=16,
                max_nodes=2,
                provision_delay_seconds=12.0,
                scale_down_idle_seconds=40.0,
            ),
            interference=interference,
        )
        import numpy as np

        rng = np.random.default_rng(seed)
        pods = []
        for i in range(14):
            hw = "big" if rng.random() < 0.4 else "small"
            pods.append(
                sim.submit(
                    {"x": float(rng.random())},
                    hw,
                    at_time=float(i * 3),
                    priority=int(rng.integers(0, 3)) * 5,
                )
            )
        runs = sim.run_until_idle()
        assert len(runs) == len(pods)
        for pod in pods:
            assert pod.phase is PodPhase.SUCCEEDED
            assert self._integral(pod) == pytest.approx(pod.work_seconds, rel=1e-9)
            assert pod.observed_runtime_seconds >= pod.work_seconds - 1e-9
            # Observed wall time spans the final attempt exactly.
            assert pod.observed_runtime_seconds == pytest.approx(
                pod.finish_time - pod.start_time, abs=1e-6
            )

    def test_preempted_and_restarted_pod_conserves_work_with_changing_co_residents(self):
        """Directed preemption x interference case: the victim's final
        attempt runs amid *different* co-residents than its first attempt,
        and its progress integral must still equal the drawn work."""
        sim = ClusterSimulator(
            workload=_constant_workload({"small": 30.0, "big": 30.0}),
            catalog=_CATALOG,
            nodes=[Node("n", cpus=6, memory_gb=32)],
            scheduler=PriorityScheduler(preemption=True),
            seed=0,
            interference=LinearSlowdown(1.3),
        )
        victim = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=0)
        # A small low-priority neighbour shares the first attempt...
        neighbour = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=0)
        # ...then a high-priority big request evicts the victim mid-run.
        preemptor = sim.submit({"x": 0.0}, "big", at_time=10.0, priority=10)
        runs = sim.run_until_idle()
        assert len(runs) == 3
        assert victim.preemptions == 1
        # The restart shared the node with a different mix (the preemptor
        # finishes at a different time than the original neighbour), so the
        # final attempt's rate changepoints differ from the first attempt's.
        assert len(victim.progress_log) >= 2
        # Work conservation across the restart: integrate the final
        # attempt's piecewise-constant rate.
        points = list(victim.progress_log) + [(victim.finish_time, 0.0)]
        integral = sum((t1 - t0) * s for (t0, s), (t1, _) in zip(points, points[1:]))
        assert integral == pytest.approx(victim.work_seconds, rel=1e-9)
        assert victim.observed_runtime_seconds == pytest.approx(
            victim.finish_time - victim.start_time, abs=1e-9
        )
        # The discarded first attempt is charged as waste, not progress.
        assert victim.wasted_runtime_seconds > 0.0
        (victim_run,) = [r for r in runs if r.pod_name == victim.name]
        assert victim_run.preemptions == 1
        assert victim_run.planned_runtime_seconds == victim.work_seconds
        assert victim_run.record.runtime_seconds >= victim.work_seconds - 1e-9


class TestProratedUtilisation:
    def test_base_node_busy_fraction_integrates_over_time(self):
        sim = _cluster(nodes=[Node("n", cpus=4, memory_gb=32)])
        sim.submit({"x": 0.0}, "big", at_time=0.0)  # 4 CPUs for 10s
        sim.run_until(10.0)
        sim.run_until(20.0)
        util = sim.utilisation()["n"]
        assert util["cpus"] == 0.0  # instantaneous: idle now
        assert util["busy_cpus"] == pytest.approx(0.5)  # 10 busy of 20s window

    def test_pool_node_prorated_by_provision_window_not_full_duration(self):
        # Pool node provisioned at t=30 runs a 10s pod then idles: at t=50
        # its busy fraction is 10/20 over ITS window, not 10/50.
        pool = AutoscalingNodePool(
            node_cpus=4,
            node_memory_gb=32,
            max_nodes=1,
            provision_delay_seconds=30.0,
            scale_down_idle_seconds=100.0,
        )
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=pool)
        sim.submit({"x": 0.0}, "small", at_time=0.0)   # occupies base 0..10
        sim.submit({"x": 0.0}, "big", at_time=0.0)     # needs the pool node
        sim.run_until(50.0)
        (pool_name,) = [n.name for n in sim.nodes if n.name.startswith("autoscale-")]
        util = sim.utilisation()[pool_name]
        assert util["busy_cpus"] == pytest.approx(0.5)
        # Base node: 2 CPUs busy for 10s of a 50s life.
        assert sim.utilisation()["base"]["busy_cpus"] == pytest.approx(10.0 / 50.0)

    def test_zero_window_reports_zero(self):
        sim = _cluster()
        util = sim.utilisation()["n"]
        assert util["busy_cpus"] == 0.0
        assert util["busy_memory_gb"] == 0.0
