"""Property-based tests for the core bandit machinery."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.models import LeastSquaresModel, RecursiveLeastSquaresModel, RidgeModel
from repro.core.selection import ToleranceConfig, TolerantSelector
from repro.core import BanditWare
from repro.hardware import HardwareCatalog, HardwareConfig, ResourceCostModel, ndp_catalog

finite_floats = st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def catalogs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    configs = [
        HardwareConfig(f"H{i}", cpus=draw(st.integers(1, 32)), memory_gb=draw(st.integers(1, 256)))
        for i in range(n)
    ]
    return HardwareCatalog(configs)


class TestTolerantSelectionProperties:
    @settings(max_examples=150)
    @given(
        catalogs(),
        st.data(),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_chosen_is_always_within_tolerance(self, catalog, data, ratio, seconds):
        estimates = {
            name: data.draw(finite_floats, label=f"estimate_{name}") for name in catalog.names
        }
        selector = TolerantSelector(ToleranceConfig(ratio=ratio, seconds=seconds))
        outcome = selector.select(catalog, estimates)
        fastest = min(estimates.values())
        limit = (1.0 + ratio) * fastest + seconds
        assert estimates[outcome.chosen.name] <= limit + 1e-9
        assert outcome.fastest.name in estimates
        assert estimates[outcome.fastest.name] == fastest

    @settings(max_examples=100)
    @given(catalogs(), st.data())
    def test_strict_selection_minimises_runtime(self, catalog, data):
        estimates = {
            name: data.draw(finite_floats, label=f"estimate_{name}") for name in catalog.names
        }
        outcome = TolerantSelector().select(catalog, estimates)
        assert estimates[outcome.chosen.name] == min(estimates.values())

    @settings(max_examples=100)
    @given(catalogs(), st.data(), st.floats(min_value=0.0, max_value=10.0))
    def test_widening_tolerance_never_increases_footprint(self, catalog, data, seconds):
        """A larger tolerance can only allow an equally or more efficient choice."""
        estimates = {
            name: data.draw(finite_floats, label=f"estimate_{name}") for name in catalog.names
        }
        cost = ResourceCostModel()
        narrow = TolerantSelector(ToleranceConfig(seconds=0.0), cost_model=cost).select(catalog, estimates)
        wide = TolerantSelector(ToleranceConfig(seconds=seconds), cost_model=cost).select(catalog, estimates)
        assert cost.footprint(wide.chosen) <= cost.footprint(narrow.chosen) + 1e-12


class TestModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(small_floats, small_floats),
            min_size=3,
            max_size=40,
        ),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_ols_interpolates_noise_free_lines(self, xs, slope, intercept):
        """With >= 2 distinct x values and no noise, OLS reproduces the line."""
        x_values = np.asarray([x for x, _ in xs])
        assume(np.ptp(x_values) > 1e-3)
        y = np.clip(slope * x_values + intercept, 0.0, None)
        # Only keep cases where clipping did not kick in (still a pure line).
        assume(np.all(slope * x_values + intercept >= 0))
        model = LeastSquaresModel(1).fit(x_values.reshape(-1, 1), y)
        query = float(np.mean(x_values))
        assert model.predict([query]) == pytest.approx(slope * query + intercept, abs=1e-3)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(small_floats, finite_floats), min_size=1, max_size=30))
    def test_rls_and_ridge_predictions_are_finite(self, pairs):
        rls = RecursiveLeastSquaresModel(1, regularization=1.0)
        ridge = RidgeModel(1, alpha=1.0)
        for x, y in pairs:
            rls.update([x], y)
            ridge.update([x], y)
        assert np.isfinite(rls.predict([1.0]))
        assert np.isfinite(ridge.predict([1.0]))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(small_floats, finite_floats), min_size=2, max_size=25))
    def test_observation_count_matches_updates(self, pairs):
        model = LeastSquaresModel(1)
        for x, y in pairs:
            model.update([x], y)
        assert model.n_observations == len(pairs)


class TestBanditProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10_000))
    def test_observation_counts_sum_to_rounds(self, rounds, seed):
        catalog = ndp_catalog()
        bandit = BanditWare(catalog=catalog, feature_names=["x"], seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(rounds):
            features = {"x": float(rng.uniform(0, 10))}
            rec = bandit.recommend(features)
            bandit.observe(features, rec.hardware, float(rng.uniform(0, 100)))
        counts = bandit.observation_counts()
        assert sum(counts.values()) == rounds
        assert len(bandit.history) == rounds

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_epsilon_never_leaves_unit_interval(self, seed):
        catalog = ndp_catalog()
        bandit = BanditWare(catalog=catalog, feature_names=["x"], seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            features = {"x": float(rng.uniform(0, 10))}
            rec = bandit.recommend(features)
            assert 0.0 <= bandit.policy.epsilon <= 1.0
            bandit.observe(features, rec.hardware, float(rng.uniform(0, 100)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_predictions_are_finite_after_any_history(self, seed):
        catalog = ndp_catalog()
        bandit = BanditWare(catalog=catalog, feature_names=["x"], seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(20):
            features = {"x": float(rng.uniform(0, 10))}
            rec = bandit.recommend(features)
            bandit.observe(features, rec.hardware, float(rng.uniform(0, 1000)))
        predictions = bandit.predict_runtimes({"x": 5.0})
        assert all(np.isfinite(v) for v in predictions.values())
