"""Tests for the cluster simulator substrate."""

import numpy as np
import pytest

from repro.cluster import (
    BackfillScheduler,
    BestFitScheduler,
    ClusterSimulator,
    EventQueue,
    FIFOScheduler,
    InsufficientCapacityError,
    Node,
    Pod,
    PodPhase,
)
from repro.hardware import HardwareCatalog, HardwareConfig, ndp_catalog
from repro.utils.logging import EventLog
from repro.workloads import CyclesWorkload


@pytest.fixture
def request_small():
    return HardwareConfig("H0", cpus=2, memory_gb=16)


@pytest.fixture
def request_large():
    return HardwareConfig("H2", cpus=4, memory_gb=16)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        assert q.pop().kind == "a"
        assert q.pop().kind == "b"

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"

    def test_now_advances(self):
        q = EventQueue()
        q.push(3.0, "x")
        q.pop()
        assert q.now == 3.0

    def test_push_in_is_relative(self):
        q = EventQueue()
        q.push(2.0, "x")
        q.pop()
        q.push_in(1.5, "y")
        assert q.peek_time() == 3.5

    def test_cannot_schedule_in_the_past(self):
        q = EventQueue()
        q.push(2.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0, "late")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_drain_until(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(2.0, "b")
        seen = []
        processed = q.drain(lambda e: seen.append(e.kind), until=1.5)
        assert processed == 1
        assert seen == ["a"]
        assert q.now == 1.5

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_drain_until_advances_clock_with_no_events(self):
        q = EventQueue()
        processed = q.drain(lambda e: None, until=7.5)
        assert processed == 0
        assert q.now == 7.5

    def test_drain_until_before_next_event_leaves_it_queued(self):
        q = EventQueue()
        q.push(5.0, "later")
        processed = q.drain(lambda e: None, until=2.0)
        assert processed == 0
        assert q.now == 2.0
        assert q.peek_time() == 5.0

    def test_drain_until_in_the_past_does_not_rewind_clock(self):
        q = EventQueue()
        q.push(4.0, "x")
        q.pop()
        assert q.drain(lambda e: None, until=1.0) == 0
        assert q.now == 4.0

    def test_drain_processes_handler_pushed_events_within_window(self):
        q = EventQueue()
        seen = []

        def handler(event):
            seen.append((event.kind, event.time))
            if event.kind == "first":
                q.push(event.time + 1.0, "chained")
                q.push(event.time + 10.0, "outside")

        q.push(1.0, "first")
        processed = q.drain(handler, until=5.0)
        assert processed == 2
        assert seen == [("first", 1.0), ("chained", 2.0)]
        assert q.peek_time() == 11.0
        assert q.now == 5.0

    def test_drain_without_until_processes_everything(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert q.drain(lambda e: None) == 2
        assert not q

    def test_cancel_hides_event_from_pop(self):
        q = EventQueue()
        stale = q.push(1.0, "stale")
        q.push(2.0, "live")
        q.cancel(stale)
        assert q.pop().kind == "live"
        assert q.now == 2.0  # the clock never visited the cancelled time

    def test_cancel_updates_len_and_bool(self):
        q = EventQueue()
        event = q.push(1.0, "x")
        assert len(q) == 1 and q
        q.cancel(event)
        assert len(q) == 0 and not q

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        event = q.push(1.0, "x")
        other = q.push(2.0, "y")
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 1
        assert q.pop() is other

    def test_peek_time_skips_cancelled_head(self):
        q = EventQueue()
        stale = q.push(1.0, "stale")
        q.push(3.0, "live")
        q.cancel(stale)
        assert q.peek_time() == 3.0

    def test_peek_time_empty_after_cancelling_everything(self):
        q = EventQueue()
        q.cancel(q.push(1.0, "x"))
        assert q.peek_time() is None

    def test_drain_does_not_count_cancelled_events(self):
        q = EventQueue()
        q.cancel(q.push(1.0, "stale"))
        q.push(2.0, "live")
        seen = []
        assert q.drain(lambda e: seen.append(e.kind)) == 1
        assert seen == ["live"]

    def test_pop_after_cancelling_everything_raises(self):
        q = EventQueue()
        q.cancel(q.push(1.0, "x"))
        with pytest.raises(IndexError):
            q.pop()

    def test_traffic_counters(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.cancel(q.push(2.0, "b"))
        q.push(3.0, "c")
        q.drain(lambda e: None)
        assert (q.pushed, q.popped, q.skipped) == (3, 2, 1)
        assert q.pushed == q.popped + q.skipped + len(q)

    def test_push_frontier_event_shape(self):
        from repro.cluster.events import NODE_NEXT_FINISH

        q = EventQueue()
        event = q.push_frontier(4.0, 7)
        assert event.kind is NODE_NEXT_FINISH
        assert event.node_slot == 7
        assert event.payload is None  # the hot path allocates no dict
        assert event.alive
        assert q.pop() is event

    def test_push_frontier_rejects_past_times(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.push_frontier(1.0, 0)


class TestNode:
    def test_allocation_reduces_free_capacity(self, request_small):
        node = Node("n", cpus=8, memory_gb=32)
        node.allocate("pod-1", request_small)
        assert node.free_cpus == 6
        assert node.free_memory_gb == 16

    def test_fits_checks_all_dimensions(self, request_small):
        node = Node("n", cpus=2, memory_gb=8)
        assert not node.fits(request_small)  # memory too small

    def test_over_allocation_rejected(self, request_large):
        node = Node("n", cpus=4, memory_gb=16)
        node.allocate("pod-1", request_large)
        with pytest.raises(InsufficientCapacityError):
            node.allocate("pod-2", request_large)

    def test_duplicate_pod_rejected(self, request_small):
        node = Node("n", cpus=8, memory_gb=32)
        node.allocate("pod-1", request_small)
        with pytest.raises(ValueError):
            node.allocate("pod-1", request_small)

    def test_release_restores_capacity(self, request_small):
        node = Node("n", cpus=8, memory_gb=32)
        node.allocate("pod-1", request_small)
        node.release("pod-1")
        assert node.free_cpus == 8

    def test_release_unknown_pod(self):
        with pytest.raises(KeyError):
            Node("n", cpus=1, memory_gb=1).release("ghost")

    def test_utilisation(self, request_small):
        node = Node("n", cpus=4, memory_gb=32)
        node.allocate("pod-1", request_small)
        util = node.utilisation()
        assert util["cpus"] == 0.5
        assert util["memory_gb"] == 0.5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Node("n", cpus=0, memory_gb=1)


class TestPodLifecycle:
    def test_normal_transitions(self, request_small):
        pod = Pod("p", request_small)
        pod.mark_submitted(0.0)
        pod.mark_running(5.0, "node-a")
        pod.mark_finished(25.0)
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.queue_seconds == 5.0
        assert pod.runtime_seconds == 20.0
        assert pod.is_terminal

    def test_cannot_finish_before_running(self, request_small):
        pod = Pod("p", request_small)
        pod.mark_submitted(0.0)
        with pytest.raises(RuntimeError):
            pod.mark_finished(1.0)

    def test_cannot_run_twice(self, request_small):
        pod = Pod("p", request_small)
        pod.mark_submitted(0.0)
        pod.mark_running(1.0, "n")
        with pytest.raises(RuntimeError):
            pod.mark_running(2.0, "n")

    def test_double_submit_rejected(self, request_small):
        pod = Pod("p", request_small)
        pod.mark_submitted(0.0)
        with pytest.raises(RuntimeError):
            pod.mark_submitted(1.0)

    def test_failed_phase(self, request_small):
        pod = Pod("p", request_small)
        pod.mark_submitted(0.0)
        pod.mark_running(0.0, "n")
        pod.mark_finished(1.0, succeeded=False)
        assert pod.phase is PodPhase.FAILED

    def test_to_dict(self, request_small):
        pod = Pod("p", request_small, features={"size": 10.0}, application="matmul")
        d = pod.to_dict()
        assert d["hardware"] == "H0"
        assert d["feature_size"] == 10.0


class TestSchedulers:
    def test_fifo_picks_first_fitting_node(self, request_small):
        nodes = [Node("a", cpus=1, memory_gb=4), Node("b", cpus=8, memory_gb=32)]
        decision = FIFOScheduler().schedule(Pod("p", request_small), nodes)
        assert decision.node_name == "b"
        assert nodes[1].allocations

    def test_fifo_no_capacity(self, request_large):
        nodes = [Node("a", cpus=2, memory_gb=8)]
        decision = FIFOScheduler().schedule(Pod("p", request_large), nodes)
        assert not decision.placed

    def test_best_fit_prefers_tightest_node(self, request_small):
        nodes = [Node("roomy", cpus=32, memory_gb=128), Node("tight", cpus=2, memory_gb=16)]
        decision = BestFitScheduler().schedule(Pod("p", request_small), nodes)
        assert decision.node_name == "tight"

    def test_best_fit_no_capacity(self, request_large):
        nodes = [Node("a", cpus=2, memory_gb=8)]
        decision = BestFitScheduler().select_node(Pod("p", request_large), nodes)
        assert decision.node_name is None

    def test_queue_disciplines(self):
        # FIFO preserves strict service order; backfill and best-fit skip ahead.
        assert FIFOScheduler().head_of_line_blocking
        assert not BackfillScheduler().head_of_line_blocking
        assert not BestFitScheduler().head_of_line_blocking

    def test_backfill_places_like_fifo(self, request_small):
        nodes = [Node("a", cpus=1, memory_gb=4), Node("b", cpus=8, memory_gb=32)]
        decision = BackfillScheduler().select_node(Pod("p", request_small), nodes)
        assert decision.node_name == "b"


class TestClusterSimulator:
    def _make(self, **kwargs):
        return ClusterSimulator(
            workload=CyclesWorkload(),
            catalog=ndp_catalog(),
            seed=0,
            **kwargs,
        )

    def test_run_workload_returns_record(self):
        sim = self._make()
        run = sim.run_workload({"num_tasks": 100}, "H0")
        assert run.record.hardware == "H0"
        assert run.record.runtime_seconds > 0
        assert run.queue_seconds == 0.0

    def test_run_workload_accepts_config_object(self):
        sim = self._make()
        run = sim.run_workload({"num_tasks": 100}, ndp_catalog()["H1"])
        assert run.record.hardware == "H1"

    def test_run_workload_unknown_hardware(self):
        sim = self._make()
        with pytest.raises(KeyError):
            sim.run_workload({"num_tasks": 100}, "H9")

    def test_queued_execution_completes_all_pods(self):
        sim = self._make()
        for _ in range(6):
            sim.submit({"num_tasks": 100}, "H0")
        runs = sim.run_until_idle()
        assert len(runs) == 6
        assert all(p.phase is PodPhase.SUCCEEDED for p in sim.pods.values())

    def test_contention_produces_queueing(self):
        # One tiny node: the second pod must wait for the first to finish.
        sim = ClusterSimulator(
            workload=CyclesWorkload(),
            catalog=ndp_catalog(),
            nodes=[Node("tiny", cpus=2, memory_gb=16)],
            seed=0,
        )
        sim.submit({"num_tasks": 100}, "H0", at_time=0.0)
        sim.submit({"num_tasks": 100}, "H0", at_time=0.0)
        runs = sim.run_until_idle()
        queue_times = sorted(r.queue_seconds for r in runs)
        assert queue_times[0] == 0.0
        assert queue_times[1] > 0.0

    def test_impossible_request_raises(self):
        sim = ClusterSimulator(
            workload=CyclesWorkload(),
            catalog=ndp_catalog(),
            nodes=[Node("tiny", cpus=1, memory_gb=1)],
            seed=0,
        )
        with pytest.raises(RuntimeError, match="never be scheduled"):
            sim.submit({"num_tasks": 100}, "H0")

    def test_event_log_records_lifecycle(self):
        log = EventLog()
        sim = ClusterSimulator(
            workload=CyclesWorkload(), catalog=ndp_catalog(), seed=0, log=log
        )
        sim.submit({"num_tasks": 100}, "H0")
        sim.run_until_idle()
        events = {rec.event for rec in log}
        assert {"pod_submitted", "pod_scheduled", "pod_finished"} <= events

    def test_simulation_clock_advances(self):
        sim = self._make()
        sim.submit({"num_tasks": 100}, "H0")
        sim.run_until_idle()
        assert sim.now > 0

    def test_utilisation_snapshot_shape(self):
        sim = self._make()
        util = sim.utilisation()
        assert set(util) == {node.name for node in sim.nodes}

    def test_runtimes_are_plausible(self):
        sim = self._make()
        expected = CyclesWorkload().expected_runtime({"num_tasks": 100}, ndp_catalog()["H0"])
        run = sim.run_workload({"num_tasks": 100}, "H0")
        assert run.record.runtime_seconds == pytest.approx(expected, rel=0.5)

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator(workload=CyclesWorkload(), catalog=ndp_catalog(), nodes=[])


from conftest import constant_workload as _constant_workload

_SIZED_CATALOG = HardwareCatalog(
    [
        HardwareConfig("small", cpus=2, memory_gb=8),
        HardwareConfig("big", cpus=4, memory_gb=8),
    ]
)


class TestFIFOStarvation:
    """Regression: a large pod at the head of the queue must not be starved."""

    def _cluster(self, scheduler):
        return ClusterSimulator(
            workload=_constant_workload({"small": 10.0, "big": 10.0}),
            catalog=_SIZED_CATALOG,
            nodes=[Node("n", cpus=4, memory_gb=32)],
            scheduler=scheduler,
            seed=0,
        )

    def _submit_stream(self, sim):
        """Two running small pods, a big pod, then a stream of small pods."""
        pods = [sim.submit({"x": 0.0}, "small", at_time=0.0) for _ in range(2)]
        pods.append(sim.submit({"x": 0.0}, "big", at_time=0.0))
        pods.extend(sim.submit({"x": 0.0}, "small", at_time=0.0) for _ in range(2))
        sim.run_until_idle()
        return pods

    def test_fifo_blocks_head_of_line(self):
        sim = self._cluster(FIFOScheduler())
        a1, a2, big, d, e = self._submit_stream(sim)
        # The big pod starts as soon as both initial pods release capacity,
        # *before* the small pods queued behind it.
        assert big.start_time == pytest.approx(10.0)
        assert d.start_time == pytest.approx(20.0)
        assert e.start_time == pytest.approx(20.0)

    def test_backfill_skips_ahead(self):
        sim = self._cluster(BackfillScheduler())
        a1, a2, big, d, e = self._submit_stream(sim)
        # The seed's old behaviour, now opt-in: later small pods jump the
        # queue and the big pod waits for a fully free node.
        assert d.start_time == pytest.approx(10.0)
        assert e.start_time == pytest.approx(10.0)
        assert big.start_time == pytest.approx(20.0)

    def test_fifo_starvation_bounded_under_continuous_small_stream(self):
        # Small pods keep arriving while the big pod is queued; strict FIFO
        # still gets the big pod on within one drain of the initial pods.
        sim = self._cluster(FIFOScheduler())
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        big = sim.submit({"x": 0.0}, "big", at_time=1.0)
        for k in range(8):
            sim.submit({"x": 0.0}, "small", at_time=2.0 + k)
        sim.run_until_idle()
        assert big.start_time == pytest.approx(10.0)

    def test_infeasible_submit_fails_fast_without_wedging_the_queue(self):
        # An infeasible pod would block every later pod under head-of-line
        # FIFO, so submit rejects it at the point of error; the queue keeps
        # flowing for feasible pods.
        sim = ClusterSimulator(
            workload=_constant_workload({"small": 10.0, "big": 10.0}),
            catalog=_SIZED_CATALOG,
            nodes=[Node("tiny", cpus=2, memory_gb=16)],
            scheduler=FIFOScheduler(),
            seed=0,
        )
        with pytest.raises(InsufficientCapacityError, match="never be scheduled"):
            sim.submit({"x": 0.0}, "big", at_time=0.0)
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        assert len(sim.run_until_idle()) == 1


class TestRunWorkloadFeasibility:
    """Regression: run_workload must not fabricate a node it cannot use."""

    def _cluster(self, nodes, **kwargs):
        return ClusterSimulator(
            workload=CyclesWorkload(),
            catalog=ndp_catalog(),
            nodes=nodes,
            seed=0,
            **kwargs,
        )

    def test_infeasible_request_raises(self):
        sim = self._cluster([Node("tiny", cpus=1, memory_gb=1)])
        with pytest.raises(InsufficientCapacityError):
            sim.run_workload({"num_tasks": 100}, "H0")

    def test_reports_a_node_that_actually_fits(self):
        sim = self._cluster(
            [Node("small-node", cpus=2, memory_gb=16), Node("big-node", cpus=32, memory_gb=128)]
        )
        run = sim.run_workload({"num_tasks": 100}, "H2")  # H2 needs 4 CPUs
        assert run.node == "big-node"

    def test_feasibility_ignores_queued_occupancy(self):
        # A synchronous run executes "alone": pods occupying the cluster in
        # queued mode do not make it infeasible.
        sim = self._cluster([Node("n", cpus=4, memory_gb=32)])
        sim.submit({"num_tasks": 100}, "H2", at_time=0.0)
        sim.run_until(0.0)  # schedule the pod so it holds all 4 CPUs
        run = sim.run_workload({"num_tasks": 100}, "H2")
        assert run.node == "n"
        sim.run_until_idle()

    def test_modes_agree_on_feasibility(self):
        # What raises synchronously is rejected at submit in queued mode too.
        sync = self._cluster([Node("tiny", cpus=1, memory_gb=1)])
        with pytest.raises(InsufficientCapacityError):
            sync.run_workload({"num_tasks": 100}, "H0")
        queued = self._cluster([Node("tiny", cpus=1, memory_gb=1)])
        with pytest.raises(InsufficientCapacityError, match="never be scheduled"):
            queued.submit({"num_tasks": 100}, "H0")

    def test_best_fit_reports_its_own_node_choice(self):
        sim = self._cluster(
            [Node("roomy", cpus=32, memory_gb=128), Node("tight", cpus=2, memory_gb=16)],
            scheduler=BestFitScheduler(),
        )
        run = sim.run_workload({"num_tasks": 100}, "H0")  # H0 needs 2 CPUs
        assert run.node == "tight"


class TestRunUntil:
    def _cluster(self):
        return ClusterSimulator(
            workload=_constant_workload({"small": 10.0, "big": 10.0}),
            catalog=_SIZED_CATALOG,
            nodes=[Node("n", cpus=8, memory_gb=32)],
            seed=0,
        )

    def test_partial_progress_and_clock(self):
        sim = self._cluster()
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "small", at_time=4.0)
        assert sim.run_until(5.0) == []  # both scheduled, none finished
        assert sim.now == 5.0
        assert sim.has_work
        runs = sim.run_until(20.0)
        assert len(runs) == 2
        assert sim.now == 20.0
        assert not sim.has_work

    def test_clock_advances_without_events(self):
        sim = self._cluster()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_peek_next_event_time(self):
        sim = self._cluster()
        assert sim.peek_next_event_time() is None
        sim.submit({"x": 0.0}, "small", at_time=3.0)
        assert sim.peek_next_event_time() == 3.0


class TestMultiWorkloadSubmit:
    def test_per_pod_workload_drives_runtime_and_application(self):
        fast = _constant_workload({"small": 5.0, "big": 5.0}, name="fast-app")
        slow = _constant_workload({"small": 50.0, "big": 50.0}, name="slow-app")
        sim = ClusterSimulator(
            workload=fast,
            catalog=_SIZED_CATALOG,
            nodes=[Node("n", cpus=8, memory_gb=32)],
            seed=0,
        )
        sim.submit({"x": 0.0}, "small", at_time=0.0)                  # default workload
        sim.submit({"x": 0.0}, "small", at_time=0.0, workload=slow)   # other tenant
        runs = sim.run_until_idle()
        by_app = {r.record.application: r.record.runtime_seconds for r in runs}
        assert by_app == {"fast-app": 5.0, "slow-app": 50.0}

    def test_completed_runs_carry_pod_names(self):
        sim = ClusterSimulator(
            workload=_constant_workload({"small": 5.0, "big": 5.0}),
            catalog=_SIZED_CATALOG,
            nodes=[Node("n", cpus=8, memory_gb=32)],
            seed=0,
        )
        pod = sim.submit({"x": 0.0}, "small")
        (run,) = sim.run_until_idle()
        assert run.pod_name == pod.name
        assert run.finish_time == pytest.approx(5.0)
        sync_run = sim.run_workload({"x": 0.0}, "small")
        assert sync_run.pod_name is None
