"""Tests for request batching and admission control (the serving mechanisms).

Two contracts are pinned here:

* the :class:`RequestBatcher` coalesces traffic into the batched entry
  points without changing any per-application decision;
* the :class:`AdmissionController` never drops silently -- every request is
  either admitted (and eventually drained) or rejected with an explicit
  retry-after estimate.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.capture_service_parity import build_reference_service
from repro.integration import (
    AdmissionController,
    BackpressureError,
    RequestBatcher,
    ShardQueue,
)


def _request_stream(workloads, n, seed=9):
    rng = np.random.default_rng(seed)
    apps = ["alpha", "beta", "gamma"]
    return [
        (app := apps[i % 3], workloads[app].sample_features(rng)) for i in range(n)
    ]


class TestRequestBatcher:
    def test_per_application_decisions_match_sequential_calls(self):
        sequential, workloads_a = build_reference_service(n_shards=2)
        batched, workloads_b = build_reference_service(n_shards=2)
        requests = _request_stream(workloads_a, 12)
        # identical RNG draws for the batched side
        _ = _request_stream(workloads_b, 12)

        sequential_tickets = [sequential.submit_workflow(a, f) for a, f in requests]
        batcher = RequestBatcher(batched, max_batch=100)
        for app, features in requests:
            assert batcher.enqueue_recommend(app, features) is None
        batched_tickets = batcher.flush()

        assert len(batched_tickets) == len(sequential_tickets)
        for seq, bat in zip(sequential_tickets, batched_tickets):
            assert seq.application == bat.application
            assert seq.recommendation.hardware.name == bat.recommendation.hardware.name
            assert seq.recommendation.explored == bat.recommendation.explored
            assert seq.features == bat.features

    def test_flush_returns_tickets_in_enqueue_order(self):
        service, workloads = build_reference_service(n_shards=2)
        batcher = RequestBatcher(service, max_batch=100)
        requests = _request_stream(workloads, 9)
        for app, features in requests:
            batcher.enqueue_recommend(app, features)
        tickets = batcher.flush()
        assert [t.application for t in tickets] == [a for a, _ in requests]

    def test_auto_flush_at_max_batch(self):
        service, workloads = build_reference_service(n_shards=2)
        batcher = RequestBatcher(service, max_batch=3)
        requests = _request_stream(workloads, 3)
        assert batcher.enqueue_recommend(*requests[0]) is None
        assert batcher.enqueue_recommend(*requests[1]) is None
        tickets = batcher.enqueue_recommend(*requests[2])
        assert tickets is not None and len(tickets) == 3
        assert batcher.pending_recommends == 0
        assert batcher.flushes == 1

    def test_unknown_application_fails_fast_at_enqueue(self):
        service, _ = build_reference_service(n_shards=2)
        batcher = RequestBatcher(service, max_batch=10)
        with pytest.raises(KeyError, match="no recommender"):
            batcher.enqueue_recommend("nope", {"x": 1.0})
        assert batcher.pending_recommends == 0

    def test_completions_flush_through_the_batch_entry_point(self):
        service, workloads = build_reference_service(n_shards=2)
        batcher = RequestBatcher(service, max_batch=100)
        for app, features in _request_stream(workloads, 6):
            batcher.enqueue_recommend(app, features)
        tickets = batcher.flush()
        for ticket in tickets:
            batcher.enqueue_completion(ticket.ticket_id, 10.0, queue_seconds=0.5)
        assert batcher.pending_completions == 6
        batcher.flush()
        assert batcher.pending_completions == 0
        assert all(service.ticket(t.ticket_id).completed for t in tickets)
        assert service.ticket(tickets[0].ticket_id).observed_queue_seconds == 0.5

    def test_rejected_completion_batch_stays_buffered_and_retryable(self):
        service, workloads = build_reference_service(n_shards=2)
        batcher = RequestBatcher(service, max_batch=100)
        for app, features in _request_stream(workloads, 3):
            batcher.enqueue_recommend(app, features)
        tickets = batcher.flush()
        batcher.enqueue_completion(tickets[0].ticket_id, 10.0)
        batcher.enqueue_completion(tickets[1].ticket_id, float("nan"))
        with pytest.raises(ValueError, match="finite and non-negative"):
            batcher.flush()
        # Nothing mutated, buffer intact; repair and flush again.
        assert batcher.pending_completions == 2
        assert not service.ticket(tickets[0].ticket_id).completed
        batcher._completion_buffer[1] = (tickets[1].ticket_id, 12.0, 0.0, None)
        batcher.flush()
        assert service.ticket(tickets[0].ticket_id).completed
        assert service.ticket(tickets[1].ticket_id).completed

    def test_validates_max_batch(self):
        service, _ = build_reference_service()
        with pytest.raises(ValueError, match="max_batch"):
            RequestBatcher(service, max_batch=0)


class TestAdmissionController:
    def test_rejects_when_full_with_retry_after(self):
        controller = AdmissionController(n_shards=1, capacity=2, drain_rate_per_second=4.0)
        controller.admit(0, "a")
        controller.admit(0, "b")
        with pytest.raises(BackpressureError) as excinfo:
            controller.admit(0, "c")
        error = excinfo.value
        assert error.shard_id == 0
        assert error.queue_depth == 2
        assert error.capacity == 2
        assert error.retry_after_seconds == pytest.approx(0.5)
        assert "retry after" in str(error)

    def test_nothing_dropped_silently(self):
        controller = AdmissionController(n_shards=1, capacity=3)
        offered = 10
        admitted = 0
        for i in range(offered):
            try:
                controller.admit(0, i)
                admitted += 1
            except BackpressureError:
                pass
        stats = controller.stats()[0]
        assert stats["admitted"] + stats["rejected"] == offered
        assert stats["admitted"] == admitted == 3

    def test_pop_batch_is_fifo_and_counts_drained(self):
        controller = AdmissionController(n_shards=2, capacity=8)
        for i in range(5):
            controller.admit(1, i)
        assert controller.pop_batch(1, 3) == [0, 1, 2]
        assert controller.pop_batch(1, 3) == [3, 4]
        assert controller.pop_batch(1, 3) == []
        assert controller.stats()[1]["drained"] == 5
        assert controller.depth(1) == 0

    def test_rejection_frees_no_slot_and_admits_after_drain(self):
        controller = AdmissionController(n_shards=1, capacity=1)
        controller.admit(0, "a")
        with pytest.raises(BackpressureError):
            controller.admit(0, "b")
        controller.pop_batch(0, 1)
        controller.admit(0, "c")  # slot freed by draining, not by rejecting
        assert controller.depth(0) == 1

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="n_shards"):
            AdmissionController(n_shards=0)
        with pytest.raises(ValueError, match="capacity"):
            ShardQueue(0, capacity=0)
        with pytest.raises(ValueError, match="drain_rate"):
            AdmissionController(n_shards=1, drain_rate_per_second=0.0)
