"""The array kernel: parity pins, facade contract and re-integration edge cases.

The structure-of-arrays refactor (:mod:`repro.cluster.state`) promised two
things: the flat arrays are *invisible* through the public ``Pod``/``Node``
facades, and every registered scenario reproduces the pre-refactor engine
bit for bit.  This suite pins both:

* the seed-0 summary of every scenario in ``CONTENTION_SCENARIOS`` equals
  ``benchmarks/kernel_parity_reference.json`` exactly (captured *before*
  the refactor; never regenerate it from a post-refactor engine);
* the incrementally maintained co-residency map / cached placement context
  makes the same placement decisions as a context rebuilt from scratch on
  every call;
* re-integration edge cases: zero-work pods, simultaneous topology changes
  at one timestamp, and long-horizon work conservation (the piecewise
  progress-rate integral of ``pod.progress_log`` recovers ``work_seconds``)
  across interference models and seeds;
* the facade contract: bound pods/nodes mirror the arrays both ways,
  unbound ones behave as plain objects.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from conftest import constant_workload
from repro.cluster import (
    CapacityContention,
    ClusterSimulator,
    ClusterState,
    FIFOScheduler,
    LeastSlowdown,
    LinearSlowdown,
    Node,
    NoInterference,
    PlacementContext,
    Pod,
    PodPhase,
)
from repro.evaluation.contention import (
    CONTENTION_SCENARIOS,
    build_scenario,
    run_scenario,
)
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.workloads import LinearRuntimeWorkload

REFERENCE_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "kernel_parity_reference.json"
)


# ---------------------------------------------------------------------- #
# Kernel parity pins
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def parity_reference():
    with open(REFERENCE_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(CONTENTION_SCENARIOS))
def test_scenario_pinned_to_pre_refactor_reference(name, parity_reference):
    """Every registered scenario reproduces the pre-refactor engine exactly.

    The reference summaries were captured from the per-object engine before
    the array kernel landed; equality here is ``==`` on every float, not
    approx -- the kernel's batched math must be bit-identical.
    """
    summary = run_scenario(build_scenario(name, seed=0)).summary()
    reference = parity_reference[name]
    assert set(summary) == set(reference)
    drifted = {
        key: (summary[key], reference[key])
        for key in reference
        if summary[key] != reference[key]
    }
    assert not drifted, f"scenario {name!r} drifted from the pre-refactor engine: {drifted}"


def test_parity_reference_covers_every_registered_scenario(parity_reference):
    """New scenarios must be captured into the reference (pre-refactor rule:
    capture with the current engine *before* touching the kernel)."""
    assert set(parity_reference) == set(CONTENTION_SCENARIOS)


# ---------------------------------------------------------------------- #
# Incremental co-residency / cached placement context
# ---------------------------------------------------------------------- #
def _interference_cluster(seed=0):
    catalog = HardwareCatalog(
        [
            HardwareConfig("small", cpus=2, memory_gb=8),
            HardwareConfig("large", cpus=4, memory_gb=16),
        ]
    )
    workload = LinearRuntimeWorkload(
        feature_ranges={"size": (1.0, 8.0)},
        coefficients={
            "small": ({"size": 60.0}, 30.0),
            "large": ({"size": 30.0}, 15.0),
        },
        noise_sigma=0.25,
        name="ctx",
    )
    nodes = [
        Node("n1", cpus=8, memory_gb=32),
        Node("n2", cpus=8, memory_gb=32),
        Node("n3", cpus=8, memory_gb=32),
    ]
    return ClusterSimulator(
        workload,
        catalog,
        nodes=nodes,
        scheduler=FIFOScheduler(placement=LeastSlowdown()),
        seed=seed,
        interference=LinearSlowdown(alpha=0.7),
    )


def _submit_stream(sim, n=24):
    for i in range(n):
        sim.submit(
            {"size": 1.0 + (i % 5)},
            "large" if i % 3 == 0 else "small",
            at_time=float(i) * 7.0,
        )


class TestIncrementalPlacementContext:
    def test_cached_context_matches_rebuilt_context(self):
        """The cached live-view context places identically to a from-scratch one.

        The reference simulator monkeypatches ``_placement_context`` to
        rebuild a fresh snapshot (copied resident lists) on every call --
        the pre-incremental behaviour.  Assignments, runtimes and finish
        times must be identical.
        """
        cached = _interference_cluster()
        rebuilt = _interference_cluster()

        def fresh_context():
            if not rebuilt.scheduler.placement.needs_context:
                return None
            return PlacementContext(
                interference=rebuilt.interference,
                running={name: list(pods) for name, pods in rebuilt._running.items()},
            )

        rebuilt._placement_context = fresh_context

        _submit_stream(cached)
        _submit_stream(rebuilt)
        runs_cached = cached.run_until_idle()
        runs_rebuilt = rebuilt.run_until_idle()

        def trace(runs):
            return [
                (r.pod_name, r.node, r.record.runtime_seconds, r.finish_time)
                for r in runs
            ]

        assert trace(runs_cached) == trace(runs_rebuilt)

    def test_running_map_tracks_allocations_mid_run(self):
        """The incremental co-residency map agrees with the allocation dicts
        at every step of a contended run (not just at idle)."""
        sim = _interference_cluster()
        _submit_stream(sim, n=18)
        checked = 0
        while sim.has_work:
            next_time = sim.peek_next_event_time()
            sim.run_until(next_time)
            by_node = sim._running_pods_by_node()
            assert set(by_node) == {node.name for node in sim.nodes}
            for node in sim.nodes:
                names = [pod.name for pod in by_node[node.name]]
                assert names == node.resident_pods
                for pod in by_node[node.name]:
                    assert pod.phase is PodPhase.RUNNING
                    assert pod.node == node.name
            checked += 1
        assert checked > 5  # the stream genuinely stepped through events

    def test_running_map_returns_fresh_lists(self):
        sim = _interference_cluster()
        _submit_stream(sim, n=4)
        sim.run_until(sim.peek_next_event_time())
        by_node = sim._running_pods_by_node()
        for pods in by_node.values():
            pods.clear()  # caller-owned copies: mutating must not corrupt the map
        assert sim.run_until_idle()  # still drains cleanly


# ---------------------------------------------------------------------- #
# Re-integration edge cases
# ---------------------------------------------------------------------- #
def _single_node_sim(workload, runtime_name="small", cpus=8, memory_gb=32, **kwargs):
    catalog = HardwareCatalog([HardwareConfig(runtime_name, cpus=2, memory_gb=8)])
    return ClusterSimulator(
        workload,
        catalog,
        nodes=[Node("solo", cpus=cpus, memory_gb=memory_gb)],
        seed=0,
        **kwargs,
    )


def _integrated_work(pod):
    """Integrate the attempt's piecewise-constant progress rate to the finish."""
    log = pod.progress_log
    assert log, f"pod {pod.name} finished without a progress log"
    total = 0.0
    for (t0, s0), (t1, _) in zip(log, log[1:]):
        total += (t1 - t0) * s0
    t_last, s_last = log[-1]
    total += (pod.finish_time - t_last) * s_last
    return total


class TestReintegrationEdgeCases:
    def test_zero_work_pods_complete_immediately(self):
        workload = constant_workload({"small": 0.0})
        sim = _single_node_sim(workload, interference=LinearSlowdown(alpha=0.5))
        for i in range(6):
            sim.submit({"x": 0.0}, "small", at_time=float(i % 2))
        runs = sim.run_until_idle()
        assert len(runs) == 6
        for run in runs:
            assert run.record.runtime_seconds == 0.0
            assert run.planned_runtime_seconds == 0.0
            pod = sim.pods[run.pod_name]
            assert pod.phase is PodPhase.SUCCEEDED
            assert pod.finish_time == pod.start_time
            assert pod.observed_runtime_seconds == 0.0

    def test_simultaneous_finishes_and_starts_at_one_timestamp(self):
        """A batch finishing at one instant frees capacity for the next batch
        at that same instant: multiple topology changes per timestamp."""
        workload = constant_workload({"small": 100.0})
        sim = _single_node_sim(workload, interference=LinearSlowdown(alpha=0.5))
        # The node fits 4 of the 2-cpu requests: 8 pods -> two waves of 4.
        for _ in range(8):
            sim.submit({"x": 0.0}, "small", at_time=0.0)
        runs = sim.run_until_idle()
        assert len(runs) == 8
        finish_times = sorted({run.finish_time for run in runs})
        assert len(finish_times) == 2  # each wave finishes together
        first_wave = [r for r in runs if r.finish_time == finish_times[0]]
        second_wave = [r for r in runs if r.finish_time == finish_times[1]]
        assert len(first_wave) == len(second_wave) == 4
        # Identical work under identical co-residency: both waves observe the
        # same slowed runtime, and the second wave starts exactly when the
        # first finishes.
        observed = {r.record.runtime_seconds for r in runs}
        assert len(observed) == 1
        assert all(r.slowdown > 1.0 for r in runs)
        for run in second_wave:
            assert sim.pods[run.pod_name].start_time == finish_times[0]

    @pytest.mark.parametrize(
        "model",
        [
            NoInterference(),
            LinearSlowdown(alpha=0.5),
            LinearSlowdown(alpha=1.5),
            CapacityContention(cpu_fraction=0.6),
        ],
        ids=["none", "linear", "linear-steep", "capacity"],
    )
    @pytest.mark.parametrize("seed", [0, 7])
    def test_long_horizon_work_conservation(self, model, seed):
        """Integrating each pod's logged piecewise rate recovers its drawn work.

        A long staggered stream forces many re-integrations per pod (every
        neighbour arrival/departure changes the rate); float error must not
        accumulate beyond a relative 1e-9 over the whole horizon.
        """
        workload = LinearRuntimeWorkload(
            feature_ranges={"size": (1.0, 8.0)},
            coefficients={"small": ({"size": 40.0}, 20.0)},
            noise_sigma=0.5,
            name="conserve",
        )
        catalog = HardwareCatalog([HardwareConfig("small", cpus=2, memory_gb=8)])
        sim = ClusterSimulator(
            workload,
            catalog,
            nodes=[Node("a", cpus=8, memory_gb=32), Node("b", cpus=8, memory_gb=32)],
            seed=seed,
            interference=model,
        )
        for i in range(60):
            sim.submit({"size": 1.0 + (i % 7)}, "small", at_time=float(i) * 3.0)
        runs = sim.run_until_idle()
        assert len(runs) == 60
        rate_changes = 0
        for run in runs:
            pod = sim.pods[run.pod_name]
            rate_changes += len(pod.progress_log)
            integral = _integrated_work(pod)
            assert integral == pytest.approx(pod.work_seconds, rel=1e-9, abs=1e-9)
            assert pod.progress_seconds == pod.work_seconds
        if not isinstance(model, NoInterference):
            # The horizon genuinely exercised re-integration: far more rate
            # changepoints than pods.
            assert rate_changes > 120
        else:
            # Without interference observed == planned bit for bit, and no
            # pod's rate ever changes after start.
            assert rate_changes == 60
            for run in runs:
                assert run.record.runtime_seconds == run.planned_runtime_seconds


# ---------------------------------------------------------------------- #
# Facade contract
# ---------------------------------------------------------------------- #
def _config(name="hw", cpus=2, memory_gb=8.0, gpus=0):
    return HardwareConfig(name, cpus=cpus, memory_gb=memory_gb, gpus=gpus)


class TestFacadeContract:
    def test_unbound_pod_keeps_plain_attribute_behaviour(self):
        pod = Pod("standalone", request=_config())
        assert pod._state is None
        assert pod.speed is None and pod.work_seconds is None
        pod.work_seconds = 12.5
        pod.progress_seconds = 3.0
        pod.speed = 0.5
        assert (pod.work_seconds, pod.progress_seconds, pod.speed) == (12.5, 3.0, 0.5)
        pod.speed = None
        assert pod.speed is None

    def test_adopted_pod_mirrors_state_arrays_both_ways(self):
        state = ClusterState()
        pod = Pod("bound", request=_config(cpus=3, memory_gb=24.0, gpus=1))
        pod.work_seconds = 7.0
        index = state.adopt_pod(pod)
        # Adoption snapshots the facade's values...
        assert state.work[index] == 7.0
        assert state.req_cpus[index] == 3
        assert state.req_mem[index] == 24.0
        assert state.req_gpus[index] == 1
        assert np.isnan(state.speed[index])
        # ...then property writes land in the arrays...
        pod.progress_seconds = 3.25
        pod.speed = 0.5
        assert state.progress[index] == 3.25
        assert state.speed[index] == 0.5
        # ...array writes are visible through the facade...
        state.progress[index] = 4.0
        assert pod.progress_seconds == 4.0
        # ...and None round-trips through NaN.
        pod.speed = None
        assert np.isnan(state.speed[index])
        assert pod.speed is None

    def test_adopted_pod_status_mirrors_phase(self):
        state = ClusterState()
        pod = Pod("phased", request=_config())
        pod.work_seconds = 1.0
        index = state.adopt_pod(pod)
        assert state.status[index] == 0  # pending
        pod.mark_submitted(0.0)
        node = Node("n", cpus=4, memory_gb=16)
        node.allocate(pod.name, pod.request)
        pod.mark_running(1.0, "n")
        assert state.status[index] == 1
        pod.set_speed(1.0, 1.0)
        pod.mark_finished(2.0)
        assert state.status[index] == 2

    def test_duplicate_adoption_rejected(self):
        state = ClusterState()
        pod = Pod("dup", request=_config())
        state.adopt_pod(pod)
        with pytest.raises(ValueError, match="already adopted"):
            state.adopt_pod(Pod("dup", request=_config()))
        node = Node("n", cpus=4, memory_gb=16)
        state.adopt_node(node)
        with pytest.raises(ValueError, match="already adopted"):
            state.adopt_node(Node("n", cpus=4, memory_gb=16))

    def test_adopted_node_totals_match_allocation_dict(self):
        state = ClusterState()
        node = Node("n", cpus=8, memory_gb=32, gpus=2)
        slot = state.adopt_node(node)
        pods = [Pod(f"p{i}", request=_config(cpus=2, memory_gb=8.0, gpus=1)) for i in range(2)]
        for pod in pods:
            state.adopt_pod(pod)
            node.allocate(pod.name, pod.request)
        assert node.allocated_cpus == sum(r.cpus for r in node.allocations.values()) == 4
        assert state.alloc_cpus[slot] == 4
        assert state.alloc_mem[slot] == 16.0
        assert state.alloc_gpus[slot] == 2
        # Resident slots track allocation order.
        assert [state.pods[i].name for i in state.residents[slot]] == ["p0", "p1"]
        node.release("p0")
        assert state.alloc_cpus[slot] == 2
        assert [state.pods[i].name for i in state.residents[slot]] == ["p1"]
        assert node.free_cpus == 6

    def test_pod_array_growth_preserves_values(self):
        state = ClusterState(pod_capacity=2)
        pods = []
        for i in range(20):
            pod = Pod(f"grow-{i}", request=_config())
            pod.work_seconds = float(i)
            state.adopt_pod(pod)
            pods.append(pod)
        assert state.n_pods == 20
        for i, pod in enumerate(pods):
            assert pod.work_seconds == float(i)
            assert state.work[i] == float(i)

    def test_simulator_state_exposes_kernel(self):
        sim = _single_node_sim(constant_workload({"small": 10.0}))
        pod = sim.submit({"x": 0.0}, "small", at_time=0.0)
        assert sim.state.pod_index[pod.name] == pod._index
        assert sim.state.nbytes() > 0
        sim.run_until_idle()
        assert sim.state.status[pod._index] == 2  # succeeded, through the facade
