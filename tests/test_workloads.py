"""Tests for the application workload models and trace generation."""

import numpy as np
import pytest

from repro.hardware import matmul_catalog, ndp_catalog, synthetic_catalog
from repro.workloads import (
    BP3D_FEATURES,
    BurnPro3DWorkload,
    CyclesWorkload,
    LinearRuntimeWorkload,
    MatrixMultiplicationWorkload,
    RunRecord,
    TraceGenerator,
    records_to_frame,
    tiled_matrix_square,
)


class TestRunRecord:
    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            RunRecord("r", "app", "H0", -1.0)

    def test_feature_vector_ordering(self):
        rec = RunRecord("r", "app", "H0", 1.0, features={"b": 2.0, "a": 1.0})
        assert rec.feature_vector(["a", "b"]).tolist() == [1.0, 2.0]

    def test_feature_vector_missing(self):
        rec = RunRecord("r", "app", "H0", 1.0, features={"a": 1.0})
        with pytest.raises(KeyError):
            rec.feature_vector(["a", "z"])

    def test_to_row_flattens_features(self):
        rec = RunRecord("r", "app", "H0", 1.0, features={"x": 3.0})
        row = rec.to_row()
        assert row["x"] == 3.0 and row["hardware"] == "H0"

    def test_records_to_frame(self):
        frame = records_to_frame(
            [RunRecord(f"r{i}", "app", "H0", float(i), features={"x": 1.0}) for i in range(3)]
        )
        assert frame.shape == (3, 5)

    def test_records_to_frame_empty(self):
        assert records_to_frame([]).shape == (0, 0)


class TestCyclesWorkload:
    def test_feature_names(self):
        assert CyclesWorkload().feature_names == ["num_tasks"]

    def test_sampled_sizes_come_from_configured_set(self, rng):
        workload = CyclesWorkload(task_sizes=(100, 500))
        sizes = {workload.sample_features(rng)["num_tasks"] for _ in range(50)}
        assert sizes <= {100.0, 500.0}

    def test_runtime_is_linear_in_tasks(self):
        workload = CyclesWorkload()
        hw = synthetic_catalog(4)["H0"]
        r100 = workload.expected_runtime({"num_tasks": 100}, hw)
        r300 = workload.expected_runtime({"num_tasks": 300}, hw)
        r500 = workload.expected_runtime({"num_tasks": 500}, hw)
        assert r500 - r300 == pytest.approx(r300 - r100, rel=1e-9)

    def test_bigger_hardware_is_faster(self):
        workload = CyclesWorkload()
        catalog = synthetic_catalog(4)
        runtimes = [workload.expected_runtime({"num_tasks": 500}, hw) for hw in catalog]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_scale_matches_figure_3(self):
        # ~3000 s for 500 tasks on the smallest configuration (Figure 3's y-axis).
        workload = CyclesWorkload()
        hw0 = synthetic_catalog(4)["H0"]
        assert 1500 <= workload.expected_runtime({"num_tasks": 500}, hw0) <= 4500

    def test_true_coefficients_match_expected_runtime(self):
        workload = CyclesWorkload()
        hw = synthetic_catalog(4)["H1"]
        coeffs = workload.true_coefficients(hw)
        predicted = coeffs["w_num_tasks"] * 250 + coeffs["b"]
        assert predicted == pytest.approx(workload.expected_runtime({"num_tasks": 250}, hw))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CyclesWorkload(task_sizes=())
        with pytest.raises(ValueError):
            CyclesWorkload(task_sizes=(0,))
        with pytest.raises(ValueError):
            CyclesWorkload(parallel_fraction=1.5)

    def test_nonpositive_tasks_rejected(self):
        with pytest.raises(ValueError):
            CyclesWorkload().expected_runtime({"num_tasks": 0}, synthetic_catalog(4)["H0"])


class TestBurnPro3DWorkload:
    def test_table1_features(self):
        assert BurnPro3DWorkload().feature_names == BP3D_FEATURES
        assert len(BP3D_FEATURES) == 7

    def test_feature_table_matches_table1(self):
        rows = BurnPro3DWorkload.feature_table()
        assert {r["feature"] for r in rows} == set(BP3D_FEATURES)
        assert all(r["description"] for r in rows)

    def test_sampled_features_in_range(self, rng):
        workload = BurnPro3DWorkload()
        f = workload.sample_features(rng)
        assert 1.0e6 * 0.97 <= f["area"] <= 2.5e6 * 1.03
        assert 0 <= f["wind_direction"] <= 360

    def test_areas_come_from_six_burn_units(self, rng):
        workload = BurnPro3DWorkload(n_burn_units=6)
        assert len(workload.burn_unit_areas) == 6

    def test_hardware_settings_nearly_identical(self, rng):
        """The NDP configurations differ by at most the configured spread."""
        workload = BurnPro3DWorkload()
        catalog = ndp_catalog()
        for _ in range(20):
            f = workload.sample_features(rng)
            runtimes = [workload.expected_runtime(f, hw) for hw in catalog]
            spread = (max(runtimes) - min(runtimes)) / min(runtimes)
            assert spread <= 2.5 * workload.hardware_spread

    def test_runtime_magnitude_matches_figure_6(self, rng):
        workload = BurnPro3DWorkload()
        hw = ndp_catalog()["H0"]
        runtimes = [
            workload.expected_runtime(workload.sample_features(rng), hw) for _ in range(200)
        ]
        assert max(runtimes) > 3.0e4  # tens of thousands of seconds
        assert min(runtimes) > 0

    def test_runtime_increases_with_area(self, rng):
        workload = BurnPro3DWorkload()
        hw = ndp_catalog()["H0"]
        base = workload.sample_features(rng)
        small = dict(base, area=1.0e6)
        large = dict(base, area=2.5e6)
        assert workload.expected_runtime(large, hw) > workload.expected_runtime(small, hw)

    def test_noise_is_heavy(self, rng):
        workload = BurnPro3DWorkload()
        hw = ndp_catalog()["H0"]
        f = workload.sample_features(rng)
        assert workload.noise_scale(f, hw) >= workload.noise_seconds

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurnPro3DWorkload(n_burn_units=0)
        with pytest.raises(ValueError):
            BurnPro3DWorkload(area_range=(10, 5))


class TestMatrixMultiplicationWorkload:
    def test_feature_names(self):
        assert MatrixMultiplicationWorkload().feature_names == [
            "size",
            "sparsity",
            "min_value",
            "max_value",
        ]

    def test_size_distribution_matches_paper(self, rng):
        workload = MatrixMultiplicationWorkload()
        sizes = np.array([workload.sample_features(rng)["size"] for _ in range(2000)])
        small_fraction = float((sizes < 5000).mean())
        assert 0.6 < small_fraction < 0.8  # paper: 1800 / 2520 ≈ 0.71

    def test_small_runs_finish_quickly(self):
        workload = MatrixMultiplicationWorkload()
        hw = matmul_catalog()["H4"]
        runtime = workload.expected_runtime(
            {"size": 3000, "sparsity": 0.0, "min_value": 0, "max_value": 10}, hw
        )
        assert runtime < 60

    def test_large_runs_take_many_minutes(self):
        workload = MatrixMultiplicationWorkload()
        hw = matmul_catalog()["H0"]
        runtime = workload.expected_runtime(
            {"size": 12500, "sparsity": 0.0, "min_value": 0, "max_value": 10}, hw
        )
        assert runtime > 600

    def test_best_hardware_crosses_over_with_size(self):
        """Small matrices favour small allocations, large matrices favour big ones."""
        workload = MatrixMultiplicationWorkload()
        catalog = matmul_catalog()
        small = {"size": 300, "sparsity": 0.0, "min_value": 0, "max_value": 10}
        large = {"size": 10000, "sparsity": 0.0, "min_value": 0, "max_value": 10}
        assert workload.best_hardware(small, catalog).cpus < workload.best_hardware(large, catalog).cpus

    def test_size_dominates_other_features(self):
        workload = MatrixMultiplicationWorkload()
        hw = matmul_catalog()["H2"]
        base = {"size": 8000, "sparsity": 0.0, "min_value": 0, "max_value": 10}
        sparse = dict(base, sparsity=0.9)
        bigger = dict(base, size=9000)
        effect_sparsity = abs(
            workload.expected_runtime(base, hw) - workload.expected_runtime(sparse, hw)
        )
        effect_size = abs(
            workload.expected_runtime(base, hw) - workload.expected_runtime(bigger, hw)
        )
        assert effect_size > 3 * effect_sparsity

    def test_more_cores_help_large_matrices(self):
        workload = MatrixMultiplicationWorkload()
        catalog = matmul_catalog()
        f = {"size": 12000, "sparsity": 0.0, "min_value": 0, "max_value": 10}
        runtimes = [workload.expected_runtime(f, hw) for hw in catalog]
        assert runtimes[0] > runtimes[-1]

    def test_generate_matrix_respects_parameters(self, rng):
        workload = MatrixMultiplicationWorkload()
        features = {"size": 30, "sparsity": 0.5, "min_value": -5, "max_value": 5}
        matrix = workload.generate_matrix(features, rng)
        assert matrix.shape == (30, 30)
        assert matrix.min() >= -5 and matrix.max() <= 5
        assert (matrix == 0).mean() > 0.2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MatrixMultiplicationWorkload(size_range=(100, 50))
        with pytest.raises(ValueError):
            MatrixMultiplicationWorkload(small_size_fraction=2.0)
        with pytest.raises(ValueError):
            MatrixMultiplicationWorkload(startup_seconds_per_cpu=-1)


class TestTiledMatrixSquare:
    def test_matches_direct_product(self, rng):
        a = rng.normal(size=(40, 40))
        assert np.allclose(tiled_matrix_square(a, tile_size=16), a @ a)

    def test_tile_size_larger_than_matrix(self, rng):
        a = rng.normal(size=(10, 10))
        assert np.allclose(tiled_matrix_square(a, tile_size=64), a @ a)

    def test_multithreaded_matches(self, rng):
        a = rng.normal(size=(32, 32))
        assert np.allclose(tiled_matrix_square(a, tile_size=8, n_workers=4), a @ a)

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            tiled_matrix_square(rng.normal(size=(3, 4)))

    def test_rejects_bad_arguments(self, rng):
        a = rng.normal(size=(4, 4))
        with pytest.raises(ValueError):
            tiled_matrix_square(a, tile_size=0)
        with pytest.raises(ValueError):
            tiled_matrix_square(a, n_workers=0)


class TestLinearRuntimeWorkload:
    def test_expected_runtime_matches_coefficients(self, ndp):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (0, 10)},
            coefficients={hw.name: ({"x": 2.0}, 5.0) for hw in ndp},
            noise_sigma=0.0,
        )
        assert workload.expected_runtime({"x": 3.0}, ndp["H0"]) == pytest.approx(11.0)

    def test_missing_hardware_coefficients(self, ndp):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (0, 1)},
            coefficients={"H0": ({"x": 1.0}, 0.0)},
        )
        with pytest.raises(KeyError):
            workload.expected_runtime({"x": 0.5}, ndp["H1"])

    def test_random_factory_covers_catalog(self, ndp):
        workload = LinearRuntimeWorkload.random(ndp, n_features=3, seed=0)
        assert set(workload.hardware_names) == set(ndp.names)
        assert len(workload.feature_names) == 3

    def test_random_factory_reproducible(self, ndp):
        a = LinearRuntimeWorkload.random(ndp, seed=5)
        b = LinearRuntimeWorkload.random(ndp, seed=5)
        f = {name: 1.0 for name in a.feature_names}
        assert a.expected_runtime(f, ndp["H0"]) == b.expected_runtime(f, ndp["H0"])

    def test_nonlinearity_hook(self, ndp):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (0, 1)},
            coefficients={hw.name: ({"x": 1.0}, 0.0) for hw in ndp},
            nonlinearity=lambda v: v**2,
        )
        assert workload.expected_runtime({"x": 3.0}, ndp["H0"]) == pytest.approx(9.0)

    def test_runtime_never_negative(self, ndp, rng):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (0, 1)},
            coefficients={hw.name: ({"x": -100.0}, 1.0) for hw in ndp},
        )
        assert workload.expected_runtime({"x": 1.0}, ndp["H0"]) == 0.0

    def test_invalid_construction(self, ndp):
        with pytest.raises(ValueError):
            LinearRuntimeWorkload(feature_ranges={}, coefficients={"H0": ({}, 0.0)})
        with pytest.raises(ValueError):
            LinearRuntimeWorkload(
                feature_ranges={"x": (0, 1)},
                coefficients={"H0": ({}, 0.0)},
            )


class TestWorkloadModelShared:
    def test_observed_runtime_is_non_negative(self, cycles_workload, synthetic4, rng):
        f = {"num_tasks": 100}
        for _ in range(50):
            assert cycles_workload.observed_runtime(f, synthetic4["H0"], rng) >= 0

    def test_observed_runtime_centres_on_expectation(self, cycles_workload, synthetic4):
        f = {"num_tasks": 500}
        hw = synthetic4["H0"]
        rng = np.random.default_rng(0)
        samples = [cycles_workload.observed_runtime(f, hw, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(
            cycles_workload.expected_runtime(f, hw), rel=0.05
        )

    def test_best_hardware_returns_minimum(self, cycles_workload, synthetic4):
        best = cycles_workload.best_hardware({"num_tasks": 500}, synthetic4)
        table = cycles_workload.runtime_table({"num_tasks": 500}, synthetic4)
        assert table[best.name] == min(table.values())

    def test_feature_vector_order(self, bp3d_workload, rng):
        f = bp3d_workload.sample_features(rng)
        vec = bp3d_workload.feature_vector(f)
        assert vec.shape == (len(BP3D_FEATURES),)
        assert vec[-1] == f["area"]

    def test_feature_vector_missing_raises(self, bp3d_workload):
        with pytest.raises(KeyError):
            bp3d_workload.feature_vector({"area": 1.0})


class TestTraceGenerator:
    def test_generate_runs_count_and_ids(self, cycles_workload, synthetic4):
        gen = TraceGenerator(cycles_workload, synthetic4, seed=0)
        records = gen.generate_runs(10)
        assert len(records) == 10
        assert len({r.run_id for r in records}) == 10

    def test_generate_runs_fixed_hardware(self, cycles_workload, synthetic4):
        gen = TraceGenerator(cycles_workload, synthetic4, seed=0)
        records = gen.generate_runs(5, hardware=synthetic4["H2"])
        assert {r.hardware for r in records} == {"H2"}

    def test_grid_repeats_workflows_on_every_hardware(self, cycles_workload, synthetic4):
        gen = TraceGenerator(cycles_workload, synthetic4, seed=0)
        records = gen.generate_grid(3)
        assert len(records) == 3 * len(synthetic4)
        per_hw = {}
        for r in records:
            per_hw.setdefault(r.hardware, []).append(r.features["num_tasks"])
        sizes = list(per_hw.values())
        assert all(s == sizes[0] for s in sizes)

    def test_generate_frame_columns(self, cycles_workload, synthetic4):
        gen = TraceGenerator(cycles_workload, synthetic4, seed=0)
        frame = gen.generate_frame(4)
        assert {"run_id", "hardware", "runtime_seconds", "num_tasks"} <= set(frame.columns)

    def test_seeded_generation_is_reproducible(self, cycles_workload, synthetic4):
        a = TraceGenerator(cycles_workload, synthetic4, seed=3).generate_frame(5)
        b = TraceGenerator(cycles_workload, synthetic4, seed=3).generate_frame(5)
        assert a["runtime_seconds"].to_list() == b["runtime_seconds"].to_list()

    def test_negative_counts_rejected(self, cycles_workload, synthetic4):
        gen = TraceGenerator(cycles_workload, synthetic4)
        with pytest.raises(ValueError):
            gen.generate_runs(-1)
        with pytest.raises(ValueError):
            gen.generate_grid(-1)
