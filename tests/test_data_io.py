"""Tests for dataset persistence (save_dataset / load_run_history)."""

import json

import numpy as np
import pytest

from repro.data import build_cycles_dataset, load_run_history, save_dataset
from repro.core import BanditWare


class TestSaveLoadRoundtrip:
    def test_directory_layout(self, tmp_path, cycles_bundle):
        path = save_dataset(cycles_bundle, tmp_path / "cycles")
        assert (path / "runs.csv").exists()
        assert (path / "catalog.json").exists()
        assert (path / "metadata.json").exists()

    def test_roundtrip_preserves_rows_and_catalog(self, tmp_path, cycles_bundle):
        path = save_dataset(cycles_bundle, tmp_path / "cycles")
        loaded = load_run_history(path)
        assert loaded.n_runs == cycles_bundle.n_runs
        assert loaded.catalog == cycles_bundle.catalog
        assert loaded.feature_names == cycles_bundle.feature_names
        assert loaded.application == cycles_bundle.workload.name
        original = cycles_bundle.frame["runtime_seconds"].to_numpy(float)
        back = loaded.frame["runtime_seconds"].to_numpy(float)
        assert np.allclose(np.sort(original), np.sort(back))

    def test_loaded_history_can_warm_start_a_recommender(self, tmp_path, cycles_bundle):
        path = save_dataset(cycles_bundle, tmp_path / "cycles")
        loaded = load_run_history(path)
        bandit = BanditWare(catalog=loaded.catalog, feature_names=loaded.feature_names, seed=0)
        assert bandit.warm_start(loaded.frame) == loaded.n_runs

    def test_missing_file_raises(self, tmp_path, cycles_bundle):
        path = save_dataset(cycles_bundle, tmp_path / "cycles")
        (path / "catalog.json").unlink()
        with pytest.raises(FileNotFoundError):
            load_run_history(path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_history(tmp_path / "nope")

    def test_metadata_column_mismatch_raises(self, tmp_path, cycles_bundle):
        path = save_dataset(cycles_bundle, tmp_path / "cycles")
        metadata = json.loads((path / "metadata.json").read_text())
        metadata["feature_names"] = ["not_a_column"]
        (path / "metadata.json").write_text(json.dumps(metadata))
        with pytest.raises(ValueError, match="missing columns"):
            load_run_history(path)

    def test_save_is_idempotent(self, tmp_path, cycles_bundle):
        target = tmp_path / "cycles"
        save_dataset(cycles_bundle, target)
        save_dataset(cycles_bundle, target)  # overwrite in place
        assert load_run_history(target).n_runs == cycles_bundle.n_runs
