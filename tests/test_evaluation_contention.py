"""Tests for the contention-aware, cluster-in-the-loop evaluation."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.core.rewards import RegretLedger, RoundOutcome
from repro.evaluation import (
    CONTENTION_SCENARIOS,
    ContentionScenario,
    TenantSpec,
    build_scenario,
    format_contention_report,
    run_scenario,
    run_synchronous,
)
from repro.hardware import HardwareCatalog, HardwareConfig, ndp_catalog
from repro.workloads import BurstyArrivals, ClosedLoopArrivals, PoissonArrivals

from conftest import constant_workload as _constant_workload


class TestArrivalProcesses:
    def test_poisson_times_are_sorted_and_positive(self):
        times = PoissonArrivals(rate_per_second=0.5).arrival_times(
            50, np.random.default_rng(0)
        )
        assert len(times) == 50
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_per_second=0.0)

    def test_bursty_times_arrive_in_periodic_batches(self):
        process = BurstyArrivals(burst_size=3, burst_interval_seconds=10.0)
        times = process.arrival_times(7, np.random.default_rng(0))
        assert times == [0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 20.0]

    def test_bursty_jitter_spreads_within_burst(self):
        process = BurstyArrivals(burst_size=4, burst_interval_seconds=100.0, jitter_seconds=5.0)
        times = process.arrival_times(4, np.random.default_rng(0))
        assert times == sorted(times)
        assert all(0.0 <= t <= 5.0 for t in times)
        assert len(set(times)) > 1

    def test_bursty_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BurstyArrivals(burst_size=0, burst_interval_seconds=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(burst_size=1, burst_interval_seconds=0.0)

    def test_closed_loop_validates(self):
        with pytest.raises(ValueError):
            ClosedLoopArrivals(concurrency=0)
        with pytest.raises(ValueError):
            ClosedLoopArrivals(think_time_seconds=-1.0)


class TestQueueInclusiveRegret:
    def _outcome(self, queue_seconds, chosen_runtime=14.0, best_runtime=10.0, i=0):
        return RoundOutcome(
            round_index=i,
            chosen_hardware="H1",
            best_hardware="H0",
            observed_runtime=15.0,
            best_expected_runtime=best_runtime,
            expected_runtime_on_chosen=chosen_runtime,
            explored=False,
            queue_seconds=queue_seconds,
        )

    def test_queue_inclusive_adds_waiting_time(self):
        outcome = self._outcome(queue_seconds=6.0)
        assert outcome.runtime_regret == 4.0
        assert outcome.queue_inclusive_regret == 10.0

    def test_defaults_to_zero_queue(self):
        outcome = RoundOutcome(0, "H0", "H0", 10.0, 10.0, 10.0, False)
        assert outcome.queue_seconds == 0.0
        assert outcome.queue_inclusive_regret == outcome.runtime_regret

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            self._outcome(queue_seconds=-1.0)

    def test_ledger_accumulates_queue_regret(self):
        ledger = RegretLedger()
        ledger.record(self._outcome(queue_seconds=6.0, i=0))
        ledger.record(self._outcome(queue_seconds=0.0, i=1))
        assert ledger.cumulative_queue_inclusive_regret().tolist() == [10.0, 14.0]
        assert ledger.total_queue_seconds() == 6.0
        summary = ledger.summary()
        assert summary["queue_inclusive_regret"] == 14.0
        assert summary["total_queue_seconds"] == 6.0

    def test_empty_ledger_has_queue_keys(self):
        summary = RegretLedger().summary()
        assert summary["queue_inclusive_regret"] == 0.0
        assert summary["total_queue_seconds"] == 0.0


class TestScenarioRegistry:
    def test_all_registered_scenarios_build(self):
        for name in CONTENTION_SCENARIOS:
            scenario = build_scenario(name, seed=1)
            assert scenario.name == name
            assert scenario.tenants and scenario.nodes

    def test_expected_suite_names(self):
        assert {"zero-contention", "light", "saturated", "mixed-tenants"} <= set(
            CONTENTION_SCENARIOS
        )

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario("nope")

    def test_tenant_spec_validation(self):
        catalog = ndp_catalog()
        workload = _constant_workload({"H0": 1.0, "H1": 1.0, "H2": 1.0})
        with pytest.raises(ValueError):
            TenantSpec("t", workload, catalog, ClosedLoopArrivals(), n_workflows=0)
        with pytest.raises(ValueError):
            TenantSpec(
                "t",
                workload,
                catalog,
                ClosedLoopArrivals(),
                n_workflows=3,
                features=[{"x": 0.0}],
            )

    def test_duplicate_applications_rejected(self):
        catalog = ndp_catalog()
        workload = _constant_workload({"H0": 1.0, "H1": 1.0, "H2": 1.0})
        tenant = TenantSpec("t", workload, catalog, ClosedLoopArrivals(), n_workflows=1)
        with pytest.raises(ValueError, match="unique"):
            ContentionScenario(
                name="dup",
                description="",
                tenants=(tenant, tenant),
                nodes=(Node("n", cpus=8, memory_gb=32),),
            )

    def test_union_catalog_name_conflict_rejected(self):
        cat_a = HardwareCatalog([HardwareConfig("H0", cpus=2, memory_gb=16)])
        cat_b = HardwareCatalog([HardwareConfig("H0", cpus=4, memory_gb=16)])
        wl_a = _constant_workload({"H0": 1.0}, name="a")
        wl_b = _constant_workload({"H0": 1.0}, name="b")
        scenario = ContentionScenario(
            name="conflict",
            description="",
            tenants=(
                TenantSpec("a", wl_a, cat_a, ClosedLoopArrivals(), n_workflows=1),
                TenantSpec("b", wl_b, cat_b, ClosedLoopArrivals(), n_workflows=1),
            ),
            nodes=(Node("n", cpus=8, memory_gb=32),),
        )
        with pytest.raises(ValueError, match="different"):
            scenario.union_catalog()


class TestZeroContentionParity:
    """The queued path must reproduce the synchronous loop exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_decisions_and_runtimes_identical(self, seed):
        queued = run_scenario(build_scenario("zero-contention", seed=seed))
        synchronous = run_synchronous(build_scenario("zero-contention", seed=seed))
        q, s = queued.tenants["solo"], synchronous.tenants["solo"]
        assert q.decisions == s.decisions
        assert q.runtimes == s.runtimes
        q_rounds, s_rounds = q.ledger.rounds, s.ledger.rounds
        assert [r.chosen_hardware for r in q_rounds] == [r.chosen_hardware for r in s_rounds]
        assert [r.explored for r in q_rounds] == [r.explored for r in s_rounds]

    def test_zero_contention_really_has_no_queueing(self):
        result = run_scenario(build_scenario("zero-contention", seed=0))
        assert result.queue_delays().max() == 0.0
        summary = result.summary()
        assert summary["queue_inclusive_regret"] == pytest.approx(
            summary["cumulative_regret"]
        )

    def test_synchronous_reference_requires_single_tenant(self):
        with pytest.raises(ValueError, match="one tenant"):
            run_synchronous(build_scenario("light", seed=0))


class TestSaturatedAccounting:
    def test_saturation_produces_queue_delay_and_costs(self):
        result = run_scenario(build_scenario("saturated", seed=0))
        summary = result.summary()
        assert summary["workflows"] == 40.0
        assert summary["mean_queue_seconds"] > 0.0
        assert summary["max_queue_seconds"] >= summary["p95_queue_seconds"]
        assert summary["occupancy_cost"] > 0.0
        assert summary["makespan_seconds"] > 0.0
        # Queueing strictly inflates the regret relative to the
        # contention-free accounting.
        assert summary["queue_inclusive_regret"] > summary["cumulative_regret"]
        assert summary["queue_inclusive_regret"] == pytest.approx(
            summary["cumulative_regret"] + summary["total_queue_seconds"]
        )

    def test_rows_arrive_in_event_order(self):
        result = run_scenario(build_scenario("saturated", seed=0))
        finish_times = [row["finish_time"] for row in result.rows]
        assert finish_times == sorted(finish_times)
        assert len(result.rows) == 40

    def test_occupancy_cost_matches_row_sum(self):
        result = run_scenario(build_scenario("saturated", seed=0))
        assert result.total_occupancy_cost == pytest.approx(
            sum(row["occupancy_cost"] for row in result.rows)
        )

    def test_to_frame_round_trips_rows(self):
        result = run_scenario(build_scenario("saturated", seed=0))
        frame = result.to_frame()
        assert frame.shape[0] == len(result.rows)
        assert "queue_seconds" in frame
        assert "queue_inclusive_regret" in frame


class TestScenarioSuite:
    def test_light_scenario_queues_little(self):
        summary = run_scenario(build_scenario("light", seed=0)).summary()
        assert summary["mean_queue_seconds"] < 10.0
        assert summary["workflows"] == 50.0

    def test_mixed_tenants_all_streams_complete(self):
        result = run_scenario(build_scenario("mixed-tenants", seed=0))
        assert set(result.tenants) == {"fire-science", "linear-algebra", "etl-pipeline"}
        scenario = build_scenario("mixed-tenants", seed=0)
        for tenant in scenario.tenants:
            assert len(result.tenants[tenant.name].ledger) == tenant.n_workflows

    def test_report_renders(self):
        result = run_scenario(build_scenario("light", seed=0))
        text = format_contention_report(result)
        assert "scenario summary" in text
        assert "queue_inclusive_regret" in text

    def test_determinism_same_seed_same_result(self):
        a = run_scenario(build_scenario("saturated", seed=7)).summary()
        b = run_scenario(build_scenario("saturated", seed=7)).summary()
        assert a == b


class TestClosedLoopConcurrency:
    def test_concurrency_bounds_in_flight_workflows(self):
        catalog = ndp_catalog()
        workload = _constant_workload({"H0": 10.0, "H1": 10.0, "H2": 10.0})
        scenario = ContentionScenario(
            name="closed",
            description="",
            tenants=(
                TenantSpec(
                    "loop",
                    workload,
                    catalog,
                    ClosedLoopArrivals(concurrency=2),
                    n_workflows=6,
                ),
            ),
            nodes=(Node("n", cpus=64, memory_gb=256),),
            seed=0,
        )
        result = run_scenario(scenario)
        # Two workflows run at a time, 10 s each: makespan is 3 waves.
        assert result.makespan_seconds == pytest.approx(30.0)
        assert result.queue_delays().max() == 0.0

    def test_simultaneous_completions_near_stream_end_do_not_over_submit(self):
        """Regression: two same-instant completions with one workflow left
        must enqueue exactly one refill arrival, not one each (IndexError)."""
        catalog = ndp_catalog()
        workload = _constant_workload({"H0": 10.0, "H1": 10.0, "H2": 10.0})
        scenario = ContentionScenario(
            name="odd",
            description="",
            tenants=(
                TenantSpec(
                    "loop",
                    workload,
                    catalog,
                    ClosedLoopArrivals(concurrency=2),
                    n_workflows=5,
                ),
            ),
            nodes=(Node("n", cpus=64, memory_gb=256),),
            seed=0,
        )
        result = run_scenario(scenario)
        assert result.summary()["workflows"] == 5.0
        assert result.makespan_seconds == pytest.approx(30.0)

    def test_think_time_delays_next_submission(self):
        catalog = ndp_catalog()
        workload = _constant_workload({"H0": 10.0, "H1": 10.0, "H2": 10.0})
        scenario = ContentionScenario(
            name="think",
            description="",
            tenants=(
                TenantSpec(
                    "loop",
                    workload,
                    catalog,
                    ClosedLoopArrivals(concurrency=1, think_time_seconds=5.0),
                    n_workflows=3,
                ),
            ),
            nodes=(Node("n", cpus=64, memory_gb=256),),
            seed=0,
        )
        result = run_scenario(scenario)
        # 10s run, 5s think, repeated: completions at 10, 25, 40.
        assert [row["finish_time"] for row in result.rows] == pytest.approx(
            [10.0, 25.0, 40.0]
        )


@pytest.mark.slow
class TestSaturatedSweepSlow:
    """Larger saturated sweep kept out of tier-1 (see pytest.ini addopts)."""

    def test_queueing_grows_with_burst_size(self):
        from repro.evaluation.contention import _scenario_saturated

        means = []
        for burst in (4, 8, 16):
            base = _scenario_saturated(seed=0)
            tenant = base.tenants[0]
            scenario = ContentionScenario(
                name=f"saturated-{burst}",
                description="",
                tenants=(
                    TenantSpec(
                        tenant.name,
                        tenant.workload,
                        tenant.catalog,
                        BurstyArrivals(burst_size=burst, burst_interval_seconds=120.0),
                        n_workflows=64,
                        warm_start_runs=tenant.warm_start_runs,
                        tolerance=tenant.tolerance,
                    ),
                ),
                nodes=base.nodes,
                seed=0,
            )
            means.append(run_scenario(scenario).summary()["mean_queue_seconds"])
        assert means[0] < means[-1]
