"""Tests for the arm-selection policies."""

import numpy as np
import pytest

from repro.core.models import LeastSquaresModel, RecursiveLeastSquaresModel
from repro.core.policies import (
    DecayingEpsilonGreedyPolicy,
    GreedyPolicy,
    LinUCBPolicy,
    RandomPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.selection import ToleranceConfig
from repro.hardware import ndp_catalog


def _fitted_models(catalog, slopes, intercepts, n_points=30):
    """One well-fitted 1-feature model per arm with the given true lines."""
    models = []
    xs = np.linspace(1, 10, n_points).reshape(-1, 1)
    for slope, intercept in zip(slopes, intercepts):
        model = LeastSquaresModel(1)
        model.fit(xs, slope * xs[:, 0] + intercept)
        models.append(model)
    return models


@pytest.fixture
def catalog():
    return ndp_catalog()


@pytest.fixture
def models(catalog):
    # H1 is clearly fastest for any positive context.
    return _fitted_models(catalog, slopes=[10.0, 2.0, 6.0], intercepts=[5.0, 5.0, 5.0])


class TestDecayingEpsilonGreedy:
    def test_epsilon_decays_each_round(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=0.9)
        for expected_rounds in range(1, 6):
            policy.select(np.array([5.0]), models, catalog, rng)
            assert policy.epsilon == pytest.approx(0.9**expected_rounds)

    def test_epsilon_floor(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=0.0, min_epsilon=0.1)
        policy.select(np.array([5.0]), models, catalog, rng)
        assert policy.epsilon == 0.1

    def test_reset_restores_epsilon(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy(epsilon0=0.8, decay=0.5)
        policy.select(np.array([5.0]), models, catalog, rng)
        policy.reset()
        assert policy.epsilon == 0.8

    def test_zero_epsilon_exploits_fastest(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy(epsilon0=0.0, decay=0.99)
        decision = policy.select(np.array([5.0]), models, catalog, rng)
        assert decision.hardware.name == "H1"
        assert not decision.explored

    def test_full_exploration_is_roughly_uniform(self, catalog, models):
        policy = DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=1.0)
        rng = np.random.default_rng(0)
        counts = {name: 0 for name in catalog.names}
        for _ in range(600):
            decision = policy.select(np.array([5.0]), models, catalog, rng)
            counts[decision.hardware.name] += 1
        assert min(counts.values()) > 120  # each arm ~200 expected

    def test_unseen_arms_are_seeded_first(self, catalog, rng):
        fresh = [LeastSquaresModel(1) for _ in catalog]
        policy = DecayingEpsilonGreedyPolicy(epsilon0=0.0, decay=0.99)
        chosen = []
        for _ in range(3):
            decision = policy.select(np.array([1.0]), fresh, catalog, rng)
            chosen.append(decision.arm_index)
            fresh[decision.arm_index].update([1.0], 10.0)
        assert sorted(chosen) == [0, 1, 2]

    def test_epsilon_not_decayed_during_seeding(self, catalog, rng):
        # Regression: the deterministic seed-unseen-arms rounds consume no
        # ε-draw, so they must not advance the Algorithm 1 decay schedule.
        fresh = [LeastSquaresModel(1) for _ in catalog]
        policy = DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=0.9)
        for _ in range(3):
            decision = policy.select(np.array([1.0]), fresh, catalog, rng)
            fresh[decision.arm_index].update([1.0], 10.0)
            assert policy.epsilon == 1.0  # |H| seeding rounds leave ε at ε₀
        for genuine_rounds in range(1, 4):
            policy.select(np.array([1.0]), fresh, catalog, rng)
            assert policy.epsilon == pytest.approx(0.9**genuine_rounds)

    def test_epsilon_decay_during_seeding_flag_restores_shifted_schedule(self, catalog, rng):
        fresh = [LeastSquaresModel(1) for _ in catalog]
        policy = DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=0.9, decay_during_seeding=True)
        for seeded_rounds in range(1, 4):
            decision = policy.select(np.array([1.0]), fresh, catalog, rng)
            fresh[decision.arm_index].update([1.0], 10.0)
            assert policy.epsilon == pytest.approx(0.9**seeded_rounds)

    def test_tolerance_trades_runtime_for_efficiency(self, catalog, rng):
        # H2 fastest, H0 within 20 s: exploitation should pick H0.
        models = _fitted_models(catalog, slopes=[2.0, 5.0, 1.0], intercepts=[10.0, 10.0, 10.0])
        policy = DecayingEpsilonGreedyPolicy(
            epsilon0=0.0, decay=0.99, tolerance=ToleranceConfig(seconds=20.0)
        )
        decision = policy.select(np.array([5.0]), models, catalog, rng)
        assert decision.hardware.name == "H0"

    def test_decision_detail_contains_epsilon(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy()
        decision = policy.select(np.array([5.0]), models, catalog, rng)
        assert "epsilon" in decision.detail

    def test_estimates_included_in_decision(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy(epsilon0=0.0)
        decision = policy.select(np.array([5.0]), models, catalog, rng)
        assert set(decision.estimates) == set(catalog.names)

    def test_model_count_mismatch(self, catalog, models, rng):
        policy = DecayingEpsilonGreedyPolicy()
        with pytest.raises(ValueError):
            policy.select(np.array([5.0]), models[:2], catalog, rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedyPolicy(epsilon0=1.5)
        with pytest.raises(ValueError):
            DecayingEpsilonGreedyPolicy(decay=1.2)
        with pytest.raises(ValueError):
            DecayingEpsilonGreedyPolicy(epsilon0=0.1, min_epsilon=0.5)

    def test_paper_defaults(self):
        policy = DecayingEpsilonGreedyPolicy()
        assert policy.epsilon0 == 1.0
        assert policy.decay == 0.99


class TestGreedyPolicy:
    def test_always_exploits(self, catalog, models, rng):
        policy = GreedyPolicy()
        for _ in range(10):
            decision = policy.select(np.array([5.0]), models, catalog, rng)
            assert decision.hardware.name == "H1"

    def test_seeds_unseen_arms(self, catalog, rng):
        fresh = [LeastSquaresModel(1) for _ in catalog]
        policy = GreedyPolicy()
        decision = policy.select(np.array([1.0]), fresh, catalog, rng)
        assert decision.explored

    def test_seed_unseen_disabled(self, catalog, rng):
        fresh = [LeastSquaresModel(1) for _ in catalog]
        policy = GreedyPolicy(seed_unseen=False)
        decision = policy.select(np.array([1.0]), fresh, catalog, rng)
        # All estimates are zero; the most efficient arm wins the tie.
        assert decision.hardware.name == "H0"
        assert not decision.explored

    def test_tolerance_respected(self, catalog, rng):
        models = _fitted_models(catalog, slopes=[2.0, 5.0, 1.0], intercepts=[0.0, 0.0, 0.0])
        policy = GreedyPolicy(tolerance=ToleranceConfig(ratio=1.5))
        decision = policy.select(np.array([5.0]), models, catalog, rng)
        assert decision.hardware.name == "H0"

    def test_model_count_mismatch(self, catalog, models, rng):
        with pytest.raises(ValueError):
            GreedyPolicy().select(np.array([5.0]), models[:1], catalog, rng)


class TestRandomPolicy:
    def test_uniform_coverage(self, catalog, models):
        rng = np.random.default_rng(1)
        policy = RandomPolicy()
        counts = {name: 0 for name in catalog.names}
        for _ in range(600):
            counts[policy.select(np.array([5.0]), models, catalog, rng).hardware.name] += 1
        assert min(counts.values()) > 120

    def test_always_marked_explored(self, catalog, models, rng):
        decision = RandomPolicy().select(np.array([5.0]), models, catalog, rng)
        assert decision.explored

    def test_model_count_mismatch(self, catalog, models, rng):
        with pytest.raises(ValueError):
            RandomPolicy().select(np.array([5.0]), models[:1], catalog, rng)


class TestLinUCBPolicy:
    def _rls_models(self, catalog, slopes, n_points):
        models = []
        xs = np.linspace(1, 10, max(n_points, 1))
        for slope, n in zip(slopes, [n_points] * len(slopes)):
            model = RecursiveLeastSquaresModel(1, regularization=1.0, noise_std=1.0)
            for x in xs[:n]:
                model.update([x], slope * x)
            models.append(model)
        return models

    def test_never_tried_arm_is_selected_first(self, catalog, rng):
        models = self._rls_models(catalog, [2.0, 2.0, 2.0], 10)
        models[2] = RecursiveLeastSquaresModel(1)  # untouched arm
        decision = LinUCBPolicy(alpha=1.0).select(np.array([5.0]), models, catalog, rng)
        assert decision.arm_index == 2
        assert decision.explored

    def test_alpha_zero_is_greedy(self, catalog, rng):
        models = self._rls_models(catalog, [10.0, 2.0, 6.0], 30)
        decision = LinUCBPolicy(alpha=0.0).select(np.array([5.0]), models, catalog, rng)
        assert decision.hardware.name == "H1"

    def test_optimism_prefers_uncertain_arm(self, catalog, rng):
        # Equal point estimates; the arm with far fewer observations should win.
        models = []
        for n in (200, 200, 2):
            model = RecursiveLeastSquaresModel(1, regularization=1.0, noise_std=5.0)
            for x in np.linspace(1, 10, n):
                model.update([x], 3.0 * x)
            models.append(model)
        decision = LinUCBPolicy(alpha=5.0).select(np.array([5.0]), models, catalog, rng)
        assert decision.arm_index == 2

    def test_detail_exposes_scores(self, catalog, rng):
        models = self._rls_models(catalog, [1.0, 2.0, 3.0], 10)
        decision = LinUCBPolicy().select(np.array([5.0]), models, catalog, rng)
        assert any(key.startswith("lcb_") for key in decision.detail)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            LinUCBPolicy(alpha=-1.0)

    def test_model_count_mismatch(self, catalog, rng):
        models = self._rls_models(catalog, [1.0, 2.0, 3.0], 5)
        with pytest.raises(ValueError):
            LinUCBPolicy().select(np.array([5.0]), models[:2], catalog, rng)


class TestThompsonSamplingPolicy:
    def test_converges_to_best_arm(self, catalog):
        rng = np.random.default_rng(7)
        models = []
        for slope in (10.0, 2.0, 6.0):
            model = RecursiveLeastSquaresModel(1, regularization=1.0, noise_std=1.0)
            for x in np.linspace(1, 10, 200):
                model.update([x], slope * x + rng.normal(0, 0.1))
            models.append(model)
        policy = ThompsonSamplingPolicy()
        picks = [
            policy.select(np.array([5.0]), models, catalog, rng).hardware.name
            for _ in range(100)
        ]
        assert picks.count("H1") > 80

    def test_unfitted_arms_get_sampled(self, catalog):
        rng = np.random.default_rng(3)
        models = [RecursiveLeastSquaresModel(1) for _ in catalog]
        policy = ThompsonSamplingPolicy()
        picks = {policy.select(np.array([1.0]), models, catalog, rng).arm_index for _ in range(60)}
        assert len(picks) == 3

    def test_works_with_ols_models_via_fallback(self, catalog, models, rng):
        decision = ThompsonSamplingPolicy().select(np.array([5.0]), models, catalog, rng)
        assert decision.hardware.name in catalog.names

    def test_detail_contains_samples(self, catalog, models, rng):
        decision = ThompsonSamplingPolicy().select(np.array([5.0]), models, catalog, rng)
        assert any(key.startswith("sample_") for key in decision.detail)

    def test_invalid_prior_scale(self):
        with pytest.raises(ValueError):
            ThompsonSamplingPolicy(prior_scale=0.0)

    def test_model_count_mismatch(self, catalog, models, rng):
        with pytest.raises(ValueError):
            ThompsonSamplingPolicy().select(np.array([5.0]), models[:1], catalog, rng)
