"""Tests for the serving-layer traffic harness (:mod:`repro.evaluation.service_load`).

Pins the properties the service benchmark relies on: deterministic replay,
request conservation (every offered request is completed or explicitly
abandoned after rejections -- nothing vanishes), the traffic-mix
distributions, and the headline N-shard throughput scaling on the Zipfian
mix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    HotspotAppMix,
    ServiceLoadConfig,
    ZipfianAppMix,
    format_service_load_report,
    run_service_load,
)
from repro.workloads import HotspotArrivals


# Fixed serving cost keeps these tests fast and machine-independent; the
# simulated clock makes results deterministic given (config, cost).
FAST = dict(n_requests=300, cost_per_request=0.002)


class TestZipfianAppMix:
    def test_weights_sum_to_one_and_decrease(self):
        weights = ZipfianAppMix(n_apps=16, exponent=1.1).weights()
        assert weights.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_sampling_follows_the_skew(self):
        mix = ZipfianAppMix(n_apps=8, exponent=1.2)
        rng = np.random.default_rng(0)
        draws = [mix.choose(0.0, rng) for _ in range(4000)]
        counts = np.bincount(draws, minlength=8)
        assert counts[0] > counts[-1] * 2
        assert counts.sum() == 4000

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="n_apps"):
            ZipfianAppMix(n_apps=0)
        with pytest.raises(ValueError, match="exponent"):
            ZipfianAppMix(n_apps=4, exponent=-1.0)


class TestHotspotAppMix:
    def test_hot_window_forces_the_hot_app(self):
        mix = HotspotAppMix(
            n_apps=6,
            hot_app=2,
            hot_probability=1.0,
            hotspot_start=10.0,
            hotspot_duration=5.0,
        )
        rng = np.random.default_rng(1)
        inside = {mix.choose(12.0, rng) for _ in range(50)}
        assert inside == {2}
        outside = {mix.choose(30.0, rng) for _ in range(200)}
        assert len(outside) > 1  # plain Zipf outside the window

    def test_validates_hot_app(self):
        with pytest.raises(ValueError, match="hot_app"):
            HotspotAppMix(n_apps=4, hot_app=9)


class TestHotspotArrivals:
    def test_times_are_strictly_increasing(self):
        arrivals = HotspotArrivals(
            base_rate_per_second=50.0, hotspot_start=1.0, hotspot_duration=2.0
        )
        times = arrivals.arrival_times(300, np.random.default_rng(2))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_hot_window_is_denser(self):
        arrivals = HotspotArrivals(
            base_rate_per_second=50.0,
            hotspot_factor=8.0,
            hotspot_start=2.0,
            hotspot_duration=2.0,
        )
        times = np.asarray(arrivals.arrival_times(2000, np.random.default_rng(3)))
        in_window = ((times >= 2.0) & (times < 4.0)).sum()
        before = ((times >= 0.0) & (times < 2.0)).sum()
        assert in_window > before * 3

    def test_validates_rates(self):
        with pytest.raises(ValueError, match="rate"):
            HotspotArrivals(base_rate_per_second=0.0)
        with pytest.raises(ValueError, match="hotspot_factor"):
            HotspotArrivals(base_rate_per_second=1.0, hotspot_factor=0.5)


class TestRunServiceLoad:
    def test_deterministic_replay(self):
        config = ServiceLoadConfig(n_shards=2, seed=7, **FAST)
        first = run_service_load("zipfian", config).to_dict()
        second = run_service_load("zipfian", config).to_dict()
        assert first == second

    @pytest.mark.parametrize("mix", ["zipfian", "hotspot", "bursty"])
    def test_every_request_is_accounted_for(self, mix):
        config = ServiceLoadConfig(n_shards=2, queue_capacity=16, **FAST)
        result = run_service_load(mix, config)
        assert result.completed + result.abandoned == config.n_requests
        # abandonment only happens after max_retries explicit rejections
        if result.abandoned:
            assert result.rejected_admissions > result.abandoned
        assert result.throughput_rps > 0
        assert result.latency_p50 <= result.latency_p95 <= result.latency_p99

    def test_four_shards_at_least_double_single_shard_zipfian(self):
        results = []
        for n_shards in (1, 4):
            config = ServiceLoadConfig(
                n_shards=n_shards, saturation_shards=4, seed=0, **FAST
            )
            results.append(run_service_load("zipfian", config))
        ratio = results[1].throughput_rps / results[0].throughput_rps
        assert ratio >= 2.0

    def test_unknown_mix_is_rejected(self):
        config = ServiceLoadConfig(**FAST)
        with pytest.raises(ValueError, match="unknown mix"):
            run_service_load("diurnal", config)

    def test_result_dict_is_json_shaped(self):
        config = ServiceLoadConfig(n_shards=1, **FAST)
        result = run_service_load("bursty", config).to_dict()
        for key in (
            "mix",
            "n_shards",
            "throughput_rps",
            "latency_p50",
            "latency_p95",
            "latency_p99",
            "completed",
            "rejected_admissions",
            "retries",
            "abandoned",
            "clock",
        ):
            assert key in result
        assert result["clock"] == "simulated"

    def test_shard_utilisation_covers_every_shard(self):
        config = ServiceLoadConfig(n_shards=3, **FAST)
        result = run_service_load("zipfian", config)
        assert len(result.shard_utilisation) == 3
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in result.shard_utilisation)


class TestReporting:
    def test_report_lists_all_mixes_and_the_contract(self):
        results = [
            run_service_load(mix, ServiceLoadConfig(n_shards=1, **FAST))
            for mix in ("zipfian", "hotspot", "bursty")
        ]
        report = format_service_load_report(results)
        for mix in ("zipfian", "hotspot", "bursty"):
            assert mix in report
        assert "p99" in report
        assert "simulated" in report
