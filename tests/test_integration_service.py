"""Integration tests: the NDP-style recommendation service end to end."""

import numpy as np
import pytest

from repro.cluster import ClusterSimulator
from repro.hardware import ndp_catalog
from repro.integration import (
    ApplicationRegistry,
    RecommendationService,
    RunHistoryStore,
)
from repro.utils.logging import EventLog
from repro.workloads import CyclesWorkload, LinearRuntimeWorkload, RunRecord, TraceGenerator


class TestApplicationRegistry:
    def test_register_and_get(self):
        registry = ApplicationRegistry()
        registry.register("cycles", "alice", ["num_tasks"])
        assert registry.get("cycles").owner == "alice"
        assert "cycles" in registry
        assert len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = ApplicationRegistry()
        registry.register("cycles", "alice", ["num_tasks"])
        with pytest.raises(ValueError):
            registry.register("cycles", "bob", ["num_tasks"])

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            ApplicationRegistry().get("ghost")

    def test_requires_features(self):
        with pytest.raises(ValueError):
            ApplicationRegistry().register("app", "alice", [])

    def test_list_applications_sorted(self):
        registry = ApplicationRegistry()
        registry.register("zeta", "a", ["x"])
        registry.register("alpha", "a", ["x"])
        assert [a.name for a in registry.list_applications()] == ["alpha", "zeta"]


class TestRunHistoryStore:
    def _record(self, app="cycles", hw="H0", runtime=10.0):
        return RunRecord("r", app, hw, runtime, features={"num_tasks": 100.0})

    def test_add_and_query(self):
        store = RunHistoryStore()
        store.add(self._record())
        store.add(self._record(app="other"))
        assert len(store) == 2
        assert len(store.records_for("cycles")) == 1

    def test_frame_for_application(self):
        store = RunHistoryStore()
        store.extend([self._record(), self._record(hw="H1")])
        frame = store.frame_for("cycles")
        assert frame.shape[0] == 2
        assert "num_tasks" in frame

    def test_total_runtime_and_usage(self):
        store = RunHistoryStore()
        store.extend([self._record(runtime=10.0), self._record(hw="H1", runtime=5.0)])
        assert store.total_runtime() == 15.0
        assert store.total_runtime("cycles") == 15.0
        assert store.hardware_usage() == {"H0": 1, "H1": 1}


class TestRecommendationService:
    def _service(self, seed=0, log=None):
        return RecommendationService(catalog=ndp_catalog(), seed=seed, log=log)

    def test_register_creates_recommender(self):
        service = self._service()
        recommender = service.register_application("cycles", "alice", ["num_tasks"])
        assert service.recommender_for("cycles") is recommender

    def test_submit_requires_registration(self):
        with pytest.raises(KeyError):
            self._service().submit_workflow("ghost", {"x": 1.0})

    def test_submit_and_complete_updates_models_and_history(self):
        service = self._service()
        service.register_application("cycles", "alice", ["num_tasks"])
        ticket = service.submit_workflow("cycles", {"num_tasks": 100.0})
        assert ticket.recommendation.hardware.name in ndp_catalog().names
        service.complete_workflow(ticket.ticket_id, 123.0)
        assert service.ticket(ticket.ticket_id).completed
        assert len(service.history) == 1
        counts = service.recommender_for("cycles").observation_counts()
        assert sum(counts.values()) == 1

    def test_double_completion_rejected(self):
        service = self._service()
        service.register_application("cycles", "alice", ["num_tasks"])
        ticket = service.submit_workflow("cycles", {"num_tasks": 100.0})
        service.complete_workflow(ticket.ticket_id, 10.0)
        with pytest.raises(ValueError):
            service.complete_workflow(ticket.ticket_id, 10.0)

    def test_unknown_ticket(self):
        service = self._service()
        with pytest.raises(KeyError):
            service.complete_workflow("wf-999999", 1.0)

    def test_pending_tickets(self):
        service = self._service()
        service.register_application("cycles", "alice", ["num_tasks"])
        ticket = service.submit_workflow("cycles", {"num_tasks": 100.0})
        assert [t.ticket_id for t in service.pending_tickets()] == [ticket.ticket_id]
        service.complete_workflow(ticket.ticket_id, 10.0)
        assert service.pending_tickets() == []

    def test_warm_start_from_existing_history(self, ndp):
        workload = LinearRuntimeWorkload.random(ndp, n_features=1, seed=3)
        history = RunHistoryStore()
        generator = TraceGenerator(workload, ndp, seed=1)
        history.extend(generator.generate_runs(20))
        service = RecommendationService(catalog=ndp, history=history, seed=0)
        recommender = service.register_application(
            workload.name, "alice", workload.feature_names
        )
        assert sum(recommender.observation_counts().values()) == 20

    def test_batch_completion_with_invalid_runtime_mutates_nothing(self):
        """Regression: a bad runtime mid-batch must not leave partial state.

        Before the pre-flight validation, a NaN runtime for application B
        was only rejected *after* application A's recommender had already
        ingested its observations (tickets still marked incomplete), so a
        retry double-learned A's rows.
        """
        service = self._service()
        service.register_application("app-a", "alice", ["x"])
        service.register_application("app-b", "bob", ["x"])
        ticket_a = service.submit_workflow("app-a", {"x": 1.0})
        ticket_b = service.submit_workflow("app-b", {"x": 2.0})
        with pytest.raises(ValueError, match="finite and non-negative"):
            service.complete_workflows(
                [(ticket_a.ticket_id, 50.0), (ticket_b.ticket_id, float("nan"))]
            )
        # No recommender observed anything; no ticket completed; no history.
        for app in ("app-a", "app-b"):
            assert sum(service.recommender_for(app).observation_counts().values()) == 0
        assert not service.ticket(ticket_a.ticket_id).completed
        assert not service.ticket(ticket_b.ticket_id).completed
        assert len(service.history) == 0
        # The retry with corrected runtimes learns each row exactly once.
        service.complete_workflows(
            [(ticket_a.ticket_id, 50.0), (ticket_b.ticket_id, 60.0)]
        )
        for app in ("app-a", "app-b"):
            assert sum(service.recommender_for(app).observation_counts().values()) == 1
        assert len(service.history) == 2

    def test_batch_completion_rejects_negative_and_infinite_runtimes(self):
        service = self._service()
        service.register_application("cycles", "alice", ["num_tasks"])
        for bad in (-1.0, float("inf"), float("-inf")):
            ticket = service.submit_workflow("cycles", {"num_tasks": 100.0})
            with pytest.raises(ValueError, match="finite and non-negative"):
                service.complete_workflows([(ticket.ticket_id, bad)])
            assert not service.ticket(ticket.ticket_id).completed

    def test_register_application_with_custom_catalog(self, ndp):
        subset = ndp.subset(["H0", "H1"])
        service = RecommendationService(catalog=ndp, seed=0)
        recommender = service.register_application(
            "narrow", "alice", ["x"], catalog=subset
        )
        assert recommender.catalog.names == ["H0", "H1"]
        for _ in range(10):
            ticket = service.submit_workflow("narrow", {"x": 1.0})
            assert ticket.recommendation.hardware.name in {"H0", "H1"}
            service.complete_workflow(ticket.ticket_id, 10.0)

    def test_run_workflow_end_to_end_with_cluster(self):
        log = EventLog()
        service = self._service(log=log)
        service.register_application("cycles", "alice", ["num_tasks"])
        cluster = ClusterSimulator(workload=CyclesWorkload(), catalog=ndp_catalog(), seed=0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            features = {"num_tasks": float(rng.choice([100, 500]))}
            ticket = service.run_workflow("cycles", features, cluster)
            assert ticket.completed
            assert ticket.observed_runtime > 0
        assert len(service.history) == 10
        assert len(log.filter(event="recommendation")) == 10

    def test_online_service_learns_the_fast_hardware(self, ndp):
        """Over a stream of workflows the service's recommendations converge."""
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (1.0, 10.0)},
            coefficients={
                "H0": ({"x": 30.0}, 5.0),
                "H1": ({"x": 3.0}, 5.0),
                "H2": ({"x": 15.0}, 5.0),
            },
            noise_sigma=0.5,
        )
        service = RecommendationService(catalog=ndp, seed=2)
        service.register_application(workload.name, "alice", workload.feature_names)
        rng = np.random.default_rng(11)
        picks = []
        for _ in range(120):
            features = workload.sample_features(rng)
            ticket = service.submit_workflow(workload.name, features)
            runtime = workload.observed_runtime(features, ticket.recommendation.hardware, rng)
            service.complete_workflow(ticket.ticket_id, runtime)
            picks.append(ticket.recommendation.hardware.name)
        late_picks = picks[-30:]
        assert late_picks.count("H1") / len(late_picks) > 0.7


class TestQueueAwareServiceCompletions:
    """Queue delays and priority classes flow through the service layer."""

    def _service(self, **register_kwargs):
        from repro.hardware import ndp_catalog

        service = RecommendationService(catalog=ndp_catalog(), seed=0)
        service.register_application(
            "app", "alice", ["x"], warm_start_history=False, **register_kwargs
        )
        return service

    def test_priority_stamped_on_tickets(self):
        service = self._service(priority=7)
        ticket = service.submit_workflow("app", {"x": 1.0})
        assert ticket.priority == 7
        assert service.priority_for("app") == 7

    def test_priority_for_unknown_application(self):
        service = self._service()
        with pytest.raises(KeyError):
            service.priority_for("ghost")

    def test_complete_workflow_records_queue_seconds(self):
        service = self._service()
        ticket = service.submit_workflow("app", {"x": 1.0})
        service.complete_workflow(ticket.ticket_id, 12.0, queue_seconds=3.0)
        assert service.ticket(ticket.ticket_id).observed_queue_seconds == 3.0

    def test_complete_workflows_accepts_triples(self):
        service = self._service()
        first = service.submit_workflow("app", {"x": 1.0})
        second = service.submit_workflow("app", {"x": 2.0})
        service.complete_workflows(
            [(first.ticket_id, 10.0, 4.0), (second.ticket_id, 20.0)]
        )
        assert service.ticket(first.ticket_id).observed_queue_seconds == 4.0
        assert service.ticket(second.ticket_id).observed_queue_seconds == 0.0

    def test_invalid_queue_delay_rejects_whole_batch(self):
        service = self._service()
        good = service.submit_workflow("app", {"x": 1.0})
        bad = service.submit_workflow("app", {"x": 2.0})
        with pytest.raises(ValueError, match="queue delay"):
            service.complete_workflows(
                [(good.ticket_id, 10.0, 0.0), (bad.ticket_id, 20.0, -1.0)]
            )
        # Pre-flight validation: nothing was committed, retry succeeds.
        assert not service.ticket(good.ticket_id).completed
        service.complete_workflows(
            [(good.ticket_id, 10.0, 0.0), (bad.ticket_id, 20.0, 1.0)]
        )
        assert service.ticket(bad.ticket_id).completed

    def test_complete_workflows_accepts_slowdown_quadruples(self):
        service = self._service()
        first = service.submit_workflow("app", {"x": 1.0})
        second = service.submit_workflow("app", {"x": 2.0})
        service.complete_workflows(
            [(first.ticket_id, 15.0, 4.0, 1.5), (second.ticket_id, 20.0, 0.0)]
        )
        assert service.ticket(first.ticket_id).observed_slowdown == 1.5
        assert service.ticket(second.ticket_id).observed_slowdown is None

    def test_complete_workflow_records_slowdown(self):
        service = self._service()
        ticket = service.submit_workflow("app", {"x": 1.0})
        service.complete_workflow(ticket.ticket_id, 12.0, queue_seconds=3.0, slowdown=1.2)
        assert service.ticket(ticket.ticket_id).observed_slowdown == 1.2

    def test_invalid_slowdown_rejects_whole_batch(self):
        service = self._service()
        good = service.submit_workflow("app", {"x": 1.0})
        bad = service.submit_workflow("app", {"x": 2.0})
        with pytest.raises(ValueError, match="slowdown"):
            service.complete_workflows(
                [(good.ticket_id, 10.0, 0.0, 1.0), (bad.ticket_id, 20.0, 0.0, 0.0)]
            )
        assert not service.ticket(good.ticket_id).completed
        with pytest.raises(ValueError, match="slowdown"):
            service.complete_workflows(
                [(bad.ticket_id, 20.0, 0.0, float("nan"))]
            )
        service.complete_workflows(
            [(good.ticket_id, 10.0, 0.0, 1.0), (bad.ticket_id, 20.0, 0.0, 1.1)]
        )
        assert service.ticket(bad.ticket_id).observed_slowdown == 1.1

    def test_queue_aware_application_learns_from_delay(self):
        from repro.core import RewardConfig

        service = self._service(
            reward=RewardConfig(mode="queue_inclusive", queue_weight=1.0)
        )
        first = service.submit_workflow("app", {"x": 1.0})
        second = service.submit_workflow("app", {"x": 2.0})
        hardware = first.recommendation.hardware.name
        # Force both observations onto the first ticket's arm via triples.
        service.complete_workflows(
            [(first.ticket_id, 10.0, 5.0), (second.ticket_id, 20.0, 10.0)]
        )
        recommender = service.recommender_for("app")
        arm_model = recommender.model_for(hardware)
        if second.recommendation.hardware.name == hardware:
            # Both landed on one arm: effective runtime is 15x.
            assert arm_model.predict(np.asarray([3.0])) == pytest.approx(45.0)
        else:
            # Single observation pins the intercept-free fit at 15x.
            assert arm_model.predict(np.asarray([1.0])) == pytest.approx(15.0)

    def test_slowdown_aware_application_learns_from_inflation(self):
        from repro.core import RewardConfig

        service = self._service(
            reward=RewardConfig(mode="slowdown_inclusive", slowdown_weight=1.0)
        )
        first = service.submit_workflow("app", {"x": 1.0})
        second = service.submit_workflow("app", {"x": 2.0})
        hardware = first.recommendation.hardware.name
        # Quadruples: observed 20/40 at slowdown 2.0 -> planned 10/20, so
        # the slowdown-inclusive training target is 30x.
        service.complete_workflows(
            [(first.ticket_id, 20.0, 0.0, 2.0), (second.ticket_id, 40.0, 0.0, 2.0)]
        )
        recommender = service.recommender_for("app")
        arm_model = recommender.model_for(hardware)
        if second.recommendation.hardware.name == hardware:
            assert arm_model.predict(np.asarray([3.0])) == pytest.approx(90.0)
        else:
            assert arm_model.predict(np.asarray([1.0])) == pytest.approx(30.0)
        # The audit trail still records the raw observation.
        assert service.ticket(first.ticket_id).observed_runtime == 20.0
        assert service.ticket(first.ticket_id).observed_slowdown == 2.0
        assert [rec.slowdown for rec in recommender.history] == [2.0, 2.0]

    def test_single_completion_matches_batch_for_slowdown_mode(self):
        from repro.core import RewardConfig

        batch_service = self._service(
            reward=RewardConfig(mode="slowdown_inclusive", slowdown_weight=1.0)
        )
        single_service = self._service(
            reward=RewardConfig(mode="slowdown_inclusive", slowdown_weight=1.0)
        )
        b1 = batch_service.submit_workflow("app", {"x": 1.0})
        b2 = batch_service.submit_workflow("app", {"x": 2.0})
        s1 = single_service.submit_workflow("app", {"x": 1.0})
        s2 = single_service.submit_workflow("app", {"x": 2.0})
        batch_service.complete_workflows(
            [(b1.ticket_id, 20.0, 0.0, 2.0), (b2.ticket_id, 40.0, 0.0, 1.6)]
        )
        single_service.complete_workflow(s1.ticket_id, 20.0, 0.0, 2.0)
        single_service.complete_workflow(s2.ticket_id, 40.0, 0.0, 1.6)
        x = np.asarray([3.0])
        for hw in ("H0", "H1", "H2"):
            assert batch_service.recommender_for("app").model_for(hw).predict(
                x
            ) == pytest.approx(single_service.recommender_for("app").model_for(hw).predict(x))
