"""Tests for the GPU-aware LLM-inference workload (future-work extension)."""

import numpy as np
import pytest

from repro.core import BanditWare
from repro.workloads import LLMInferenceWorkload, gpu_catalog


@pytest.fixture
def llm():
    return LLMInferenceWorkload()


@pytest.fixture
def catalog():
    return gpu_catalog()


class TestGpuCatalog:
    def test_mixes_cpu_and_gpu_configurations(self, catalog):
        gpus = [hw.gpus for hw in catalog]
        assert 0 in gpus
        assert max(gpus) >= 2

    def test_names_unique(self, catalog):
        assert len(set(catalog.names)) == len(catalog)


class TestLLMInferenceWorkload:
    def test_feature_names(self, llm):
        assert llm.feature_names == ["prompt_tokens", "output_tokens", "batch_size"]

    def test_sampled_features_in_range(self, llm, rng):
        f = llm.sample_features(rng)
        assert 64 <= f["prompt_tokens"] <= 4096
        assert 16 <= f["output_tokens"] <= 1024
        assert 1 <= f["batch_size"] <= 64

    def test_gpu_is_much_faster_than_cpu(self, llm, catalog):
        f = {"prompt_tokens": 2048, "output_tokens": 512, "batch_size": 8}
        cpu = llm.expected_runtime(f, catalog["C8"])
        gpu = llm.expected_runtime(f, catalog["G1"])
        assert gpu < cpu / 3

    def test_more_gpus_help_large_batches(self, llm, catalog):
        f = {"prompt_tokens": 4096, "output_tokens": 1024, "batch_size": 64}
        assert llm.expected_runtime(f, catalog["G4"]) < llm.expected_runtime(f, catalog["G1"])

    def test_small_jobs_do_not_need_the_biggest_gpu_node(self, llm, catalog):
        # Startup/shard-init overhead grows with GPU count, so a tiny request
        # is served best by the single-GPU node.
        f = {"prompt_tokens": 64, "output_tokens": 16, "batch_size": 1}
        assert llm.best_hardware(f, catalog).name == "G1"

    def test_runtime_increases_with_tokens(self, llm, catalog):
        hw = catalog["G1"]
        short = {"prompt_tokens": 128, "output_tokens": 64, "batch_size": 4}
        long = {"prompt_tokens": 4096, "output_tokens": 1024, "batch_size": 4}
        assert llm.expected_runtime(long, hw) > llm.expected_runtime(short, hw)

    def test_bigger_models_are_slower(self, catalog):
        small = LLMInferenceWorkload(model_billion_params=7)
        large = LLMInferenceWorkload(model_billion_params=70)
        f = {"prompt_tokens": 1024, "output_tokens": 256, "batch_size": 4}
        assert large.expected_runtime(f, catalog["G2"]) > small.expected_runtime(f, catalog["G2"])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LLMInferenceWorkload(model_billion_params=0)
        with pytest.raises(ValueError):
            LLMInferenceWorkload(cpu_slowdown=0.5)
        with pytest.raises(ValueError):
            LLMInferenceWorkload(tensor_parallel_efficiency=0.0)

    def test_negative_tokens_rejected(self, llm, catalog):
        with pytest.raises(ValueError):
            llm.expected_runtime(
                {"prompt_tokens": -1, "output_tokens": 10, "batch_size": 1}, catalog["G1"]
            )


class TestBanditOnGpuCatalog:
    def test_bandit_learns_to_use_gpus_for_heavy_jobs(self, llm, catalog):
        """End-to-end: with GPU information in the catalog the recommender
        routes heavy inference jobs to GPU nodes (the paper's future-work
        scenario)."""
        rng = np.random.default_rng(4)
        bandit = BanditWare(catalog=catalog, feature_names=llm.feature_names, seed=2)
        for _ in range(150):
            features = llm.sample_features(rng)
            rec = bandit.recommend(features)
            runtime = llm.observed_runtime(features, rec.hardware, rng)
            bandit.observe(features, rec.hardware, runtime)
        heavy = {"prompt_tokens": 4096, "output_tokens": 1024, "batch_size": 48}
        assert bandit.best_hardware(heavy).gpus >= 1
