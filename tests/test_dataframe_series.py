"""Tests for repro.dataframe.series."""

import numpy as np
import pytest

from repro.dataframe import Series


class TestConstruction:
    def test_basic(self):
        s = Series([1, 2, 3], name="x")
        assert len(s) == 3
        assert s.name == "x"

    def test_scalar_becomes_length_one(self):
        assert len(Series(5)) == 1

    def test_strings_become_object_dtype(self):
        s = Series(["a", "b"])
        assert s.dtype == object

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Series(np.zeros((2, 2)))

    def test_values_property(self):
        s = Series([1.0, 2.0])
        assert isinstance(s.values, np.ndarray)


class TestIndexing:
    def test_scalar_index(self):
        assert Series([10, 20, 30])[1] == 20

    def test_slice_returns_series(self):
        s = Series([1, 2, 3, 4], name="v")[1:3]
        assert isinstance(s, Series)
        assert s.to_list() == [2, 3]
        assert s.name == "v"

    def test_boolean_mask(self):
        s = Series([1, 2, 3, 4])
        out = s[np.array([True, False, True, False])]
        assert out.to_list() == [1, 3]

    def test_fancy_index(self):
        s = Series([1, 2, 3, 4])
        assert s[[3, 0]].to_list() == [4, 1]


class TestArithmetic:
    def test_add_scalar(self):
        assert (Series([1, 2]) + 1).to_list() == [2, 3]

    def test_add_series(self):
        assert (Series([1, 2]) + Series([10, 20])).to_list() == [11, 22]

    def test_radd(self):
        assert (1 + Series([1, 2])).to_list() == [2, 3]

    def test_sub_mul_div(self):
        s = Series([2.0, 4.0])
        assert (s - 1).to_list() == [1.0, 3.0]
        assert (s * 3).to_list() == [6.0, 12.0]
        assert (s / 2).to_list() == [1.0, 2.0]

    def test_rsub_order(self):
        assert (10 - Series([1, 2])).to_list() == [9, 8]

    def test_pow(self):
        assert (Series([2, 3]) ** 2).to_list() == [4, 9]

    def test_neg_and_abs(self):
        s = Series([-1.0, 2.0])
        assert (-s).to_list() == [1.0, -2.0]
        assert abs(s).to_list() == [1.0, 2.0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series([1, 2]) + Series([1, 2, 3])


class TestComparisons:
    def test_gt_returns_bool_array(self):
        mask = Series([1, 5, 3]) > 2
        assert mask.dtype == bool
        assert mask.tolist() == [False, True, True]

    def test_eq_elementwise(self):
        mask = Series([1, 2, 3]) == 2
        assert mask.tolist() == [False, True, False]

    def test_series_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Series([1]))


class TestMethods:
    def test_reductions(self):
        s = Series([1.0, 2.0, 3.0, 4.0])
        assert s.sum() == 10.0
        assert s.mean() == 2.5
        assert s.min() == 1.0
        assert s.max() == 4.0
        assert s.median() == 2.5

    def test_std_ddof(self):
        s = Series([1.0, 3.0])
        assert s.std() == pytest.approx(np.std([1, 3], ddof=1))

    def test_argmin_argmax(self):
        s = Series([5, 1, 9])
        assert s.argmin() == 1
        assert s.argmax() == 2

    def test_quantile(self):
        assert Series([0.0, 1.0]).quantile(0.5) == 0.5

    def test_map(self):
        assert Series([1, 2]).map(lambda v: v * 10).to_list() == [10, 20]

    def test_isin(self):
        assert Series(["a", "b", "c"]).isin({"a", "c"}).tolist() == [True, False, True]

    def test_unique_preserves_order(self):
        assert Series([3, 1, 3, 2, 1]).unique().tolist() == [3, 1, 2]

    def test_value_counts_sorted(self):
        counts = Series(["x", "y", "x"]).value_counts()
        assert counts == {"x": 2, "y": 1}

    def test_rename_and_copy(self):
        s = Series([1], name="a")
        assert s.rename("b").name == "b"
        c = s.copy()
        c.values[0] = 99
        assert s[0] == 1

    def test_astype(self):
        assert Series([1, 2]).astype(float).dtype == float

    def test_to_numpy_copies(self):
        s = Series([1.0, 2.0])
        arr = s.to_numpy()
        arr[0] = 99
        assert s[0] == 1.0
