"""Memory-budget regression gates for the evaluation engine and array kernel.

mlbench-style allocation budgets: each test carries a
``@pytest.mark.limit_memory("N MB")`` marker (enforced by pytest-memray in
environments that have the plugin installed) *and* self-enforces the same
budget with :mod:`tracemalloc`, so the gate holds in this repo's
plugin-free environment too.  The budgets are deliberately several times
the measured peaks (sweep ~0.7 MB, stress ~4.3 MB at the time of writing):
they exist to catch an accidental switch from flat array storage back to
per-object/per-event allocation blowups, not to pin the allocator's exact
behaviour.
"""

from __future__ import annotations

import tracemalloc

import pytest


def _budget_mb(request) -> float:
    """The test's own ``limit_memory`` marker value, in MiB.

    Reading the marker keeps the tracemalloc fallback and the
    pytest-memray enforcement on the same number by construction.
    """
    marker = request.node.get_closest_marker("limit_memory")
    assert marker is not None, "memory-gate tests must carry @pytest.mark.limit_memory"
    text = marker.args[0].strip()
    assert text.endswith("MB"), f"budget must be in MB, got {text!r}"
    return float(text[:-2].strip())


def _traced_peak_mb(fn) -> float:
    """Peak Python allocation (MiB) while running ``fn``."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


@pytest.mark.limit_memory("8 MB")
def test_replication_sweep_memory_budget(request):
    """A 4-replication interference-heavy sweep stays within its budget.

    The replication path re-runs the full scenario per seed; the gate
    catches results accidentally accumulating across replications (e.g.
    keeping every pod object of every replication alive).
    """
    from repro.evaluation.contention import build_scenario
    from repro.evaluation.engine import run_scenario_replications

    def sweep():
        scenario = build_scenario("interference-heavy", seed=0)
        run_scenario_replications(scenario, 4, n_workers=1)

    peak = _traced_peak_mb(sweep)
    assert peak < _budget_mb(request), f"replication sweep peaked at {peak:.1f} MiB"


@pytest.mark.limit_memory("16 MB")
def test_array_kernel_stress_memory_budget(request):
    """The 128-pod single-node kernel stress stays within its budget.

    The stress drives tens of thousands of tentative-finish events through
    the SoA kernel; the gate catches per-event payload copies or per-pod
    array materialisation creeping back into the hot path.
    """
    from benchmarks.bench_engine import _kernel_stress

    peak = _traced_peak_mb(lambda: _kernel_stress(128, 256, 1024))
    assert peak < _budget_mb(request), f"kernel stress peaked at {peak:.1f} MiB"


@pytest.mark.limit_memory("8 MB")
def test_sustained_service_traffic_memory_budget(request):
    """A sustained 600-request mixed-traffic run stays within its budget.

    The serving layer retains a ticket per request by design (history is
    the product), so the gate pins the *constant factor*: it catches model
    snapshots piling up per request instead of per model version, retry
    events duplicating request payloads, or the admission queues keeping
    references to drained work.
    """
    from repro.evaluation.service_load import ServiceLoadConfig, run_service_load

    def sustained():
        config = ServiceLoadConfig(
            n_shards=2,
            n_requests=600,
            queue_capacity=32,
            cost_per_request=0.002,
        )
        run_service_load("hotspot", config)

    peak = _traced_peak_mb(sustained)
    assert peak < _budget_mb(request), f"sustained traffic peaked at {peak:.1f} MiB"
