"""Tests for tolerant selection (the exploitation branch of Algorithm 1)."""

import numpy as np
import pytest

from repro.core.selection import SelectionOutcome, ToleranceConfig, TolerantSelector
from repro.hardware import HardwareCatalog, HardwareConfig, ResourceCostModel, ndp_catalog


class TestToleranceConfig:
    def test_defaults_are_strict(self):
        tol = ToleranceConfig()
        assert tol.is_strict
        assert tol.limit(100.0) == 100.0

    def test_ratio_limit(self):
        assert ToleranceConfig(ratio=0.05).limit(100.0) == pytest.approx(105.0)

    def test_seconds_limit(self):
        assert ToleranceConfig(seconds=20.0).limit(100.0) == pytest.approx(120.0)

    def test_combined_limit_matches_algorithm_1(self):
        # R_limit = (1 + tr) * R_fastest + ts
        tol = ToleranceConfig(ratio=0.1, seconds=5.0)
        assert tol.limit(200.0) == pytest.approx(1.1 * 200.0 + 5.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ToleranceConfig(ratio=-0.1)
        with pytest.raises(ValueError):
            ToleranceConfig(seconds=-1.0)

    def test_limit_clamped_for_negative_fastest_estimate(self):
        # Regression: early under-determined fits can predict a *negative*
        # fastest runtime; (1 + ratio) * R̂ with R̂ < 0 used to shrink the
        # window below the fastest estimate, excluding even the fastest arm.
        tol = ToleranceConfig(ratio=0.5)
        assert tol.limit(-100.0) == -100.0
        # A large-enough absolute allowance can still widen the window...
        assert ToleranceConfig(ratio=0.5, seconds=60.0).limit(-100.0) == pytest.approx(-90.0)
        # ...but a small one cannot push the limit below the fastest estimate.
        assert ToleranceConfig(ratio=0.5, seconds=20.0).limit(-100.0) == -100.0

    def test_limit_accepts_arrays(self):
        tol = ToleranceConfig(ratio=0.1)
        fastest = np.asarray([100.0, -50.0, 0.0])
        limits = tol.limit(fastest)
        assert np.allclose(limits, [110.0, -50.0, 0.0])


class TestTolerantSelector:
    def test_strict_selection_picks_fastest(self, ndp):
        selector = TolerantSelector()
        outcome = selector.select(ndp, {"H0": 100.0, "H1": 90.0, "H2": 95.0})
        assert outcome.chosen.name == "H1"
        assert outcome.fastest.name == "H1"
        assert outcome.candidates == ["H1"]

    def test_tolerance_prefers_efficient_hardware(self, ndp):
        # H2 is fastest but H0 is within 20 s and uses fewer resources.
        selector = TolerantSelector(ToleranceConfig(seconds=20.0))
        outcome = selector.select(ndp, {"H0": 110.0, "H1": 130.0, "H2": 100.0})
        assert outcome.fastest.name == "H2"
        assert outcome.chosen.name == "H0"
        assert set(outcome.candidates) == {"H0", "H2"}

    def test_ratio_tolerance(self, ndp):
        selector = TolerantSelector(ToleranceConfig(ratio=0.05))
        outcome = selector.select(ndp, {"H0": 104.0, "H1": 106.0, "H2": 100.0})
        assert outcome.chosen.name == "H0"

    def test_out_of_tolerance_candidates_excluded(self, ndp):
        selector = TolerantSelector(ToleranceConfig(seconds=5.0))
        outcome = selector.select(ndp, {"H0": 200.0, "H1": 150.0, "H2": 100.0})
        assert outcome.chosen.name == "H2"
        assert outcome.candidates == ["H2"]

    def test_negative_estimates_keep_fastest_in_window(self, ndp):
        # Regression: with R̂ < 0 and a ratio tolerance, the unclamped limit
        # used to fall below the fastest estimate and empty the window.
        selector = TolerantSelector(ToleranceConfig(ratio=0.2))
        outcome = selector.select(ndp, {"H0": -50.0, "H1": -30.0, "H2": 10.0})
        assert outcome.fastest.name == "H0"
        assert "H0" in outcome.candidates
        assert outcome.limit >= -50.0
        arm, fastest, limit, n_candidates = selector.select_index(
            ndp, np.asarray([-50.0, -30.0, 10.0])
        )
        assert ndp[arm].name == outcome.chosen.name
        assert n_candidates == len(outcome.candidates)

    def test_sequence_estimates_follow_catalog_order(self, ndp):
        selector = TolerantSelector()
        outcome = selector.select(ndp, [50.0, 40.0, 60.0])
        assert outcome.chosen.name == "H1"

    def test_traded_runtime(self, ndp):
        selector = TolerantSelector(ToleranceConfig(seconds=30.0))
        outcome = selector.select(ndp, {"H0": 120.0, "H1": 140.0, "H2": 100.0})
        assert outcome.traded_runtime == pytest.approx(20.0)

    def test_missing_estimate_rejected(self, ndp):
        with pytest.raises(KeyError):
            TolerantSelector().select(ndp, {"H0": 1.0, "H1": 2.0})

    def test_wrong_length_sequence_rejected(self, ndp):
        with pytest.raises(ValueError):
            TolerantSelector().select(ndp, [1.0, 2.0])

    def test_non_finite_estimates_rejected(self, ndp):
        with pytest.raises(ValueError):
            TolerantSelector().select(ndp, {"H0": np.nan, "H1": 1.0, "H2": 2.0})

    def test_tie_breaks_deterministically(self, ndp):
        selector = TolerantSelector()
        outcome_a = selector.select(ndp, {"H0": 100.0, "H1": 100.0, "H2": 100.0})
        outcome_b = selector.select(ndp, {"H0": 100.0, "H1": 100.0, "H2": 100.0})
        assert outcome_a.chosen.name == outcome_b.chosen.name == "H0"

    def test_custom_cost_model_changes_choice(self, ndp):
        # Weight memory heavily: H2=(4,16) becomes more efficient than H1=(3,24).
        selector = TolerantSelector(
            ToleranceConfig(seconds=1000.0),
            cost_model=ResourceCostModel(cpu_weight=0.0, memory_weight=1.0),
        )
        outcome = selector.select(ndp, {"H0": 500.0, "H1": 100.0, "H2": 100.0})
        assert outcome.chosen.name in ("H0", "H2")

    def test_negative_estimates_allowed(self, ndp):
        """Linear models can extrapolate below zero early on; selection must cope."""
        selector = TolerantSelector(ToleranceConfig(ratio=0.1))
        outcome = selector.select(ndp, {"H0": -50.0, "H1": 10.0, "H2": 20.0})
        assert outcome.fastest.name == "H0"
        assert outcome.chosen.name == "H0"

    def test_zero_estimates(self, ndp):
        outcome = TolerantSelector(ToleranceConfig(seconds=0.0)).select(
            ndp, {"H0": 0.0, "H1": 0.0, "H2": 0.0}
        )
        assert outcome.chosen.name == "H0"  # all tie, most efficient wins
