"""Property-based tests for the DataFrame substrate."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, Series, concat, merge, read_csv, write_csv

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def frames(draw, min_rows=0, max_rows=25):
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    n_cols = draw(st.integers(min_value=1, max_value=4))
    data = {}
    for c in range(n_cols):
        data[f"c{c}"] = draw(
            st.lists(finite_floats, min_size=n_rows, max_size=n_rows)
        )
    return DataFrame(data)


class TestSeriesProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_sum_matches_numpy(self, values):
        assert Series(values).sum() == np.asarray(values).sum()

    @given(st.lists(finite_floats, min_size=1, max_size=50), finite_floats)
    def test_add_then_subtract_roundtrips(self, values, delta):
        s = Series(values)
        back = (s + delta) - delta
        assert np.allclose(back.values, s.values, atol=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_mask_filter_preserves_order(self, values):
        s = Series(values)
        mask = s > 0
        filtered = s[mask]
        assert filtered.to_list() == [v for v in values if v > 0]

    @given(st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=60))
    def test_value_counts_total(self, values):
        counts = Series(values).value_counts()
        assert sum(counts.values()) == len(values)


class TestFrameProperties:
    @given(frames(min_rows=1))
    def test_take_identity_permutation(self, frame):
        out = frame.take(np.arange(len(frame)))
        assert out.to_dict() == frame.to_dict()

    @given(frames(min_rows=1))
    def test_filter_all_true_is_identity(self, frame):
        out = frame.filter(np.ones(len(frame), dtype=bool))
        assert out.to_dict() == frame.to_dict()

    @given(frames(min_rows=1))
    def test_sort_is_a_permutation(self, frame):
        column = frame.columns[0]
        out = frame.sort_values(column)
        assert sorted(out[column].to_list()) == sorted(frame[column].to_list())
        assert out[column].to_list() == sorted(frame[column].to_list())

    @given(frames(min_rows=0), frames(min_rows=0))
    def test_concat_row_count(self, a, b):
        out = concat([a, b])
        assert len(out) == len(a) + len(b)

    @given(frames(min_rows=1, max_rows=12))
    def test_csv_roundtrip(self, frame):
        buffer = io.StringIO()
        write_csv(frame, buffer)
        buffer.seek(0)
        back = read_csv(buffer)
        assert back.shape == frame.shape
        for column in frame.columns:
            assert np.allclose(
                back[column].to_numpy(float), frame[column].to_numpy(float), atol=1e-9
            )

    @given(frames(min_rows=1, max_rows=15))
    def test_groupby_sizes_sum_to_total(self, frame):
        frame = frame.assign(key=np.arange(len(frame)) % 3)
        sizes = frame.groupby("key").size()
        assert sum(sizes.values()) == len(frame)


class TestMergeProperties:
    @settings(max_examples=50)
    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=0, max_size=12),
        st.lists(st.integers(min_value=0, max_value=8), min_size=0, max_size=12),
    )
    def test_inner_merge_count_matches_key_multiplicity(self, left_keys, right_keys):
        left = DataFrame({"id": left_keys, "a": list(range(len(left_keys)))})
        right = DataFrame({"id": right_keys, "b": list(range(len(right_keys)))})
        out = merge(left, right, on="id")
        expected = sum(left_keys.count(k) * right_keys.count(k) for k in set(left_keys))
        assert len(out) == expected

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=12),
        st.lists(st.integers(min_value=0, max_value=8), min_size=0, max_size=12),
    )
    def test_left_merge_never_drops_left_rows(self, left_keys, right_keys):
        left = DataFrame({"id": left_keys, "a": list(range(len(left_keys)))})
        right = DataFrame({"id": right_keys, "b": list(range(len(right_keys)))})
        out = merge(left, right, on="id", how="left")
        assert len(out) >= len(left)
