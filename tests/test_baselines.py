"""Tests for the baseline recommenders."""

import numpy as np
import pytest

from repro.baselines import (
    BestFixedHardwareRecommender,
    FullFitOracle,
    GroundTruthOracle,
    LinearRegressionRecommender,
    RandomRecommender,
    train_regression_ensemble,
)
from repro.dataframe import DataFrame
from repro.hardware import ndp_catalog
from repro.workloads import LinearRuntimeWorkload, TraceGenerator


@pytest.fixture
def workload(ndp):
    return LinearRuntimeWorkload(
        feature_ranges={"x": (1.0, 10.0), "y": (0.0, 5.0)},
        coefficients={
            "H0": ({"x": 10.0, "y": 1.0}, 5.0),
            "H1": ({"x": 2.0, "y": 1.0}, 5.0),
            "H2": ({"x": 6.0, "y": 1.0}, 5.0),
        },
        noise_sigma=0.5,
    )


@pytest.fixture
def history(workload, ndp):
    return TraceGenerator(workload, ndp, seed=8).generate_frame(60, grid=True)


class TestLinearRegressionRecommender:
    def test_requires_fit_before_use(self, ndp):
        rec = LinearRegressionRecommender(ndp, ["x", "y"])
        with pytest.raises(RuntimeError):
            rec.recommend({"x": 1.0, "y": 1.0})

    def test_fit_and_recommend_fastest(self, ndp, history):
        rec = LinearRegressionRecommender(ndp, ["x", "y"]).fit(history)
        assert rec.recommend({"x": 5.0, "y": 2.0}).name == "H1"

    def test_predict_runtimes_close_to_truth(self, ndp, workload, history):
        rec = LinearRegressionRecommender(ndp, ["x", "y"]).fit(history)
        f = {"x": 5.0, "y": 2.0}
        predictions = rec.predict_runtimes(f)
        for hw in ndp:
            assert predictions[hw.name] == pytest.approx(
                workload.expected_runtime(f, hw), rel=0.1
            )

    def test_score_on_training_data_is_good(self, ndp, history):
        rec = LinearRegressionRecommender(ndp, ["x", "y"]).fit(history)
        scores = rec.score(history)
        assert scores["rmse"] < 2.0
        assert scores["r2"] > 0.95

    def test_missing_column_raises(self, ndp):
        rec = LinearRegressionRecommender(ndp, ["x"])
        with pytest.raises(KeyError):
            rec.fit(DataFrame({"hardware": ["H0"], "runtime_seconds": [1.0]}))

    def test_empty_features_rejected(self, ndp):
        with pytest.raises(ValueError):
            LinearRegressionRecommender(ndp, [])

    def test_hardware_without_rows_keeps_unfitted_model(self, ndp, history):
        only_h0 = history.filter(history["hardware"] == "H0")
        rec = LinearRegressionRecommender(ndp, ["x", "y"]).fit(only_h0)
        assert rec.model_for("H1").n_observations == 0


class TestRegressionEnsemble:
    def test_shapes_and_summary(self, ndp, history):
        result = train_regression_ensemble(
            history, ndp, ["x", "y"], n_models=10, n_samples=20, seed=0
        )
        assert result.rmse_scores.shape == (10,)
        assert result.r2_scores.shape == (10,)
        summary = result.summary()
        assert summary["rmse_min"] <= summary["rmse_mean"] <= summary["rmse_max"]
        assert summary["r2_range"] >= 0

    def test_small_subsets_are_worse_than_full_fit(self, ndp, history):
        ensemble = train_regression_ensemble(
            history, ndp, ["x", "y"], n_models=20, n_samples=10, seed=1
        )
        full = LinearRegressionRecommender(ndp, ["x", "y"]).fit(history).score(history)
        assert ensemble.summary()["rmse_mean"] >= full["rmse"]

    def test_reproducible_with_seed(self, ndp, history):
        a = train_regression_ensemble(history, ndp, ["x", "y"], n_models=5, n_samples=15, seed=3)
        b = train_regression_ensemble(history, ndp, ["x", "y"], n_models=5, n_samples=15, seed=3)
        assert np.allclose(a.rmse_scores, b.rmse_scores)

    def test_rejects_oversized_subset(self, ndp, history):
        with pytest.raises(ValueError):
            train_regression_ensemble(history, ndp, ["x"], n_samples=len(history) + 1)

    def test_rejects_bad_counts(self, ndp, history):
        with pytest.raises(ValueError):
            train_regression_ensemble(history, ndp, ["x"], n_models=0)
        with pytest.raises(ValueError):
            train_regression_ensemble(history, ndp, ["x"], n_samples=0)

    def test_separate_evaluation_frame(self, ndp, workload, history):
        eval_frame = TraceGenerator(workload, ndp, seed=99).generate_frame(30, grid=True)
        result = train_regression_ensemble(
            history, ndp, ["x", "y"], n_models=5, n_samples=20, seed=0,
            evaluation_frame=eval_frame,
        )
        assert np.all(np.isfinite(result.rmse_scores))


class TestOracles:
    def test_full_fit_oracle_reference_scores(self, ndp, history):
        oracle = FullFitOracle(history, ndp, ["x", "y"])
        assert oracle.reference_rmse > 0
        assert 0 <= oracle.reference_r2 <= 1

    def test_ground_truth_best_hardware(self, ndp, workload):
        oracle = GroundTruthOracle(workload, ndp)
        assert oracle.best_hardware({"x": 5.0, "y": 0.0}).name == "H1"

    def test_ground_truth_best_runtime(self, ndp, workload):
        oracle = GroundTruthOracle(workload, ndp)
        f = {"x": 5.0, "y": 0.0}
        assert oracle.best_runtime(f) == pytest.approx(workload.expected_runtime(f, ndp["H1"]))

    def test_acceptable_hardware_with_tolerance(self, ndp, workload):
        oracle = GroundTruthOracle(workload, ndp)
        f = {"x": 1.0, "y": 0.0}
        strict = oracle.acceptable_hardware(f)
        generous = oracle.acceptable_hardware(f, tolerance_seconds=1000.0)
        assert strict <= generous
        assert generous == set(ndp.names)

    def test_acceptable_hardware_rejects_negative_tolerance(self, ndp, workload):
        with pytest.raises(ValueError):
            GroundTruthOracle(workload, ndp).acceptable_hardware({"x": 1.0, "y": 0.0}, -1.0)


class TestRandomAndFixed:
    def test_random_recommender_uniform(self, ndp):
        rec = RandomRecommender(ndp, seed=0)
        counts = {}
        for _ in range(300):
            counts[rec.recommend({}).name] = counts.get(rec.recommend({}).name, 0) + 1
        assert len(counts) == 3
        assert rec.expected_accuracy == pytest.approx(1 / 3)

    def test_random_recommender_observe_is_noop(self, ndp):
        RandomRecommender(ndp).observe({}, "H0", 1.0)

    def test_best_fixed_requires_fit(self, ndp):
        with pytest.raises(RuntimeError):
            BestFixedHardwareRecommender(ndp).recommend({})

    def test_best_fixed_picks_lowest_mean(self, ndp, history):
        rec = BestFixedHardwareRecommender(ndp).fit(history)
        means = rec.mean_runtimes
        assert rec.recommend({}).name == min(means, key=means.get)

    def test_best_fixed_missing_columns(self, ndp):
        with pytest.raises(KeyError):
            BestFixedHardwareRecommender(ndp).fit(DataFrame({"x": [1.0]}))

    def test_best_fixed_no_matching_hardware(self, ndp):
        frame = DataFrame({"hardware": ["H9"], "runtime_seconds": [1.0]})
        with pytest.raises(ValueError):
            BestFixedHardwareRecommender(ndp).fit(frame)
