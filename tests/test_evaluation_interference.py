"""Interference-aware scenario evaluation and the NoInterference parity pin."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import LinearSlowdown, NoInterference
from repro.core.rewards import RegretLedger, RoundOutcome
from repro.evaluation import (
    CONTENTION_SCENARIOS,
    build_scenario,
    format_contention_report,
    run_scenario,
    run_synchronous,
)


#: Fixed-finish engine reference values, shared with the interference
#: benchmark's hard parity assertion so the two pins cannot diverge.
_PARITY_PIN = json.loads(
    (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "interference_parity_reference.json"
    ).read_text()
)


class TestNoInterferenceExactParity:
    """The progress-based engine must be bit-identical to the pre-refactor
    fixed-finish engine under the null model.  The values below were
    captured from the fixed-finish engine immediately before the refactor;
    any drift in decisions, runtimes or regret is a regression."""

    # Fixed-finish engine, saturated seed=0 (queued path, FIFO).
    _SATURATED_DECISIONS = [
        "H2", "H1", "H0", "H4", "H4", "H3", "H1", "H4", "H2", "H0",
        "H0", "H4", "H2", "H2", "H0", "H3", "H3", "H1", "H1", "H1",
        "H4", "H3", "H2", "H3", "H2", "H1", "H1", "H2", "H1", "H1",
        "H3", "H0", "H1", "H0", "H1", "H1", "H0", "H2", "H3", "H1",
    ]

    def test_saturated_seed0_is_bit_identical_to_fixed_finish_engine(self):
        result = run_scenario(
            build_scenario(_PARITY_PIN["scenario"], seed=_PARITY_PIN["seed"])
        )
        outcome = result.tenants["sweep-campaign"]
        assert outcome.decisions == self._SATURATED_DECISIONS
        assert outcome.runtimes[0] == 6.086434041498685
        assert outcome.runtimes[1] == 21.462081448462836
        assert outcome.runtimes[2] == 444.45040960773684
        assert outcome.runtimes[-1] == 142.87389111939873
        summary = result.summary()
        for key, value in _PARITY_PIN["summary"].items():
            assert summary[key] == value, f"NoInterference parity drift in {key}"

    def test_zero_contention_seed1_is_bit_identical_to_fixed_finish_engine(self):
        result = run_scenario(build_scenario("zero-contention", seed=1))
        outcome = result.tenants["solo"]
        assert outcome.runtimes[0] == 40.57114780721727
        assert outcome.runtimes[-1] == 60.58739989639973
        assert result.summary()["cumulative_regret"] == 364.36796220742525
        assert result.summary()["makespan_seconds"] == 2041.0988437892695

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_explicit_null_model_equals_default(self, seed):
        default = run_scenario(build_scenario("saturated", seed=seed))
        explicit = run_scenario(
            build_scenario("saturated", seed=seed).with_interference(NoInterference())
        )
        assert default.tenants["sweep-campaign"].decisions == (
            explicit.tenants["sweep-campaign"].decisions
        )
        assert default.tenants["sweep-campaign"].runtimes == (
            explicit.tenants["sweep-campaign"].runtimes
        )
        d_regret = default.tenants["sweep-campaign"].ledger.cumulative_runtime_regret()
        e_regret = explicit.tenants["sweep-campaign"].ledger.cumulative_runtime_regret()
        assert np.array_equal(d_regret, e_regret)

    def test_null_model_runs_report_unit_slowdown_everywhere(self):
        result = run_scenario(build_scenario("mixed-tenants", seed=0))
        assert all(row["slowdown"] == 1.0 for row in result.rows)
        assert all(
            row["runtime_seconds"] == row["planned_seconds"] for row in result.rows
        )
        summary = result.summary()
        assert summary["mean_slowdown"] == 1.0
        assert summary["interference_seconds"] == 0.0
        assert summary["interference_inclusive_regret"] == summary["cumulative_regret"]

    def test_queued_still_matches_synchronous_under_explicit_null(self):
        scenario = build_scenario("zero-contention", seed=2).with_interference(
            NoInterference()
        )
        queued = run_scenario(scenario)
        synchronous = run_synchronous(build_scenario("zero-contention", seed=2))
        assert queued.tenants["solo"].decisions == synchronous.tenants["solo"].decisions
        assert queued.tenants["solo"].runtimes == synchronous.tenants["solo"].runtimes


class TestInterferenceScenarios:
    def test_registry_has_interference_suite(self):
        assert {"interference-light", "interference-heavy", "noisy-neighbor"} <= set(
            CONTENTION_SCENARIOS
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_heavy_interference_inflates_observed_runtimes(self, seed):
        """The acceptance criterion: interference-heavy measurably inflates
        observed runtimes and the regret accounting reflects it."""
        result = run_scenario(build_scenario("interference-heavy", seed=seed))
        summary = result.summary()
        assert summary["mean_slowdown"] > 1.25
        assert summary["interference_seconds"] > 0.0
        # Every completed run was slowed (the node is permanently shared).
        assert all(row["slowdown"] > 1.0 for row in result.rows)
        assert all(
            row["runtime_seconds"] > row["planned_seconds"] for row in result.rows
        )
        # ... and the regret columns carry the inflation.
        assert summary["interference_inclusive_regret"] > summary["cumulative_regret"]
        for outcome in result.tenants.values():
            assert outcome.ledger.total_interference_seconds() > 0.0
            curve = outcome.ledger.cumulative_interference_inclusive_regret()
            assert curve[-1] > outcome.ledger.cumulative_runtime_regret()[-1]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_null_counterfactual_runs_at_full_speed(self, seed):
        scenario = build_scenario("interference-heavy", seed=seed)
        null = run_scenario(scenario.with_interference(None))
        assert null.summary()["mean_slowdown"] == 1.0
        assert null.summary()["interference_seconds"] == 0.0
        # Interference strictly stretches the same schedule.
        contended = run_scenario(scenario)
        assert contended.makespan_seconds > null.makespan_seconds

    def test_bandit_learns_from_inflated_runtimes(self):
        # The observations that reached the recommender are the observed
        # (inflated) runtimes, not the contention-free draws.
        result = run_scenario(build_scenario("interference-heavy", seed=0))
        for outcome in result.tenants.values():
            observed = np.asarray(outcome.runtimes)
            planned = np.asarray(
                [row["planned_seconds"] for row in result.rows if row["tenant"] == outcome.tenant]
            )
            assert np.all(observed > planned)
            total = outcome.ledger.total_observed_runtime()
            assert total == pytest.approx(float(observed.sum()))

    def test_light_interference_is_lighter_than_heavy(self):
        light = run_scenario(build_scenario("interference-light", seed=0)).summary()
        heavy = run_scenario(build_scenario("interference-heavy", seed=0)).summary()
        assert 1.0 < light["mean_slowdown"] < heavy["mean_slowdown"]

    def test_noisy_neighbor_slows_the_victim(self):
        result = run_scenario(build_scenario("noisy-neighbor", seed=0))
        victim_rows = [r for r in result.rows if r["tenant"] == "latency-sensitive"]
        assert any(row["slowdown"] > 1.0 for row in victim_rows)
        assert result.summary()["mean_slowdown"] > 1.0

    def test_report_renders_slowdown_column_and_interference_line(self):
        result = run_scenario(build_scenario("interference-heavy", seed=0))
        text = format_contention_report(result)
        assert "slowdown" in text
        assert "interference: mean slowdown" in text
        assert "over the contention-free plan" in text

    def test_report_omits_interference_line_without_interference(self):
        result = run_scenario(build_scenario("saturated", seed=0))
        text = format_contention_report(result)
        assert "slowdown" in text  # the column is always there
        assert "interference: mean slowdown" not in text


class TestInterferenceRegretAccounting:
    def _outcome(self, observed, planned, i=0):
        return RoundOutcome(
            round_index=i,
            chosen_hardware="H1",
            best_hardware="H0",
            observed_runtime=observed,
            best_expected_runtime=10.0,
            expected_runtime_on_chosen=14.0,
            explored=False,
            planned_runtime=planned,
        )

    def test_interference_seconds_and_slowdown(self):
        outcome = self._outcome(observed=18.0, planned=12.0)
        assert outcome.interference_seconds == 6.0
        assert outcome.slowdown == pytest.approx(1.5)
        assert outcome.interference_inclusive_regret == pytest.approx(4.0 + 6.0)

    def test_defaults_to_no_interference(self):
        outcome = RoundOutcome(0, "H0", "H0", 10.0, 10.0, 10.0, False)
        assert outcome.planned_runtime is None
        assert outcome.interference_seconds == 0.0
        assert outcome.slowdown == 1.0
        assert outcome.interference_inclusive_regret == outcome.runtime_regret

    def test_negative_planned_rejected(self):
        with pytest.raises(ValueError):
            self._outcome(observed=10.0, planned=-1.0)

    def test_ledger_accumulates_interference(self):
        ledger = RegretLedger()
        ledger.record(self._outcome(observed=18.0, planned=12.0, i=0))
        ledger.record(self._outcome(observed=12.0, planned=12.0, i=1))
        assert ledger.total_interference_seconds() == pytest.approx(6.0)
        assert ledger.cumulative_interference_inclusive_regret().tolist() == [10.0, 14.0]
        assert ledger.mean_slowdown() == pytest.approx((1.5 + 1.0) / 2)
        summary = ledger.summary()
        assert summary["interference_inclusive_regret"] == pytest.approx(14.0)
        assert summary["total_interference_seconds"] == pytest.approx(6.0)
        assert summary["mean_slowdown"] == pytest.approx(1.25)

    def test_empty_ledger_has_interference_keys(self):
        summary = RegretLedger().summary()
        assert summary["interference_inclusive_regret"] == 0.0
        assert summary["total_interference_seconds"] == 0.0
        assert summary["mean_slowdown"] == 1.0
