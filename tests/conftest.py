"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_bp3d_dataset, build_cycles_dataset, build_matmul_dataset
from repro.hardware import (
    HardwareCatalog,
    HardwareConfig,
    matmul_catalog,
    ndp_catalog,
    synthetic_catalog,
)
from repro.workloads import (
    BurnPro3DWorkload,
    CyclesWorkload,
    LinearRuntimeWorkload,
    MatrixMultiplicationWorkload,
    TraceGenerator,
)


def constant_workload(runtimes, name="const"):
    """A workload with exact, noise-free per-hardware runtimes.

    Shared by the cluster and contention suites for deterministic timing
    assertions; ``runtimes`` maps hardware name -> constant runtime seconds.
    """
    return LinearRuntimeWorkload(
        feature_ranges={"x": (0.0, 0.0)},
        coefficients={hw: ({"x": 0.0}, rt) for hw, rt in runtimes.items()},
        noise_sigma=0.0,
        name=name,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ndp():
    """The NDP hardware triple H0=(2,16), H1=(3,24), H2=(4,16)."""
    return ndp_catalog()


@pytest.fixture
def synthetic4():
    """The four-way synthetic catalog of Experiment 1."""
    return synthetic_catalog(4)


@pytest.fixture
def matmul5():
    """The five-way catalog of Experiment 3."""
    return matmul_catalog()


@pytest.fixture
def cycles_workload():
    return CyclesWorkload()


@pytest.fixture
def bp3d_workload():
    return BurnPro3DWorkload()


@pytest.fixture
def matmul_workload():
    return MatrixMultiplicationWorkload()


@pytest.fixture
def linear_workload(ndp):
    """A random-but-fixed linear workload with genuinely different arms."""
    return LinearRuntimeWorkload.random(ndp, n_features=2, seed=7, noise_sigma=0.5)


@pytest.fixture
def small_cycles_frame(cycles_workload, synthetic4):
    """A small grid trace of the Cycles workload (5 workflows x 4 hardware)."""
    generator = TraceGenerator(cycles_workload, synthetic4, seed=11)
    return generator.generate_frame(5, grid=True)


@pytest.fixture(scope="session")
def cycles_bundle():
    return build_cycles_dataset()


@pytest.fixture(scope="session")
def bp3d_bundle():
    return build_bp3d_dataset()


@pytest.fixture(scope="session")
def matmul_bundle():
    return build_matmul_dataset()
