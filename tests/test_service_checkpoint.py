"""Tests for the versioned service checkpoint format (durability layer).

The contract: ``checkpoint()`` captures the full serving state (bandit
models, ticket tables, history, shard topology), ``restore()`` rebuilds a
bit-identical service, and corrupted or incompatible checkpoints are
rejected loudly instead of restoring garbage.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.capture_service_parity import build_reference_service
from repro.integration import (
    CHECKPOINT_VERSION,
    RecommendationService,
    ServiceCheckpoint,
    checkpoint_service,
    restore_service,
)
from repro.utils.logging import EventLog


def _drive(service, workloads, n_rounds, seed=5, complete=True):
    rng = np.random.default_rng(seed)
    apps = list(workloads)
    tickets = []
    for i in range(n_rounds):
        app = apps[i % len(apps)]
        ticket = service.submit_workflow(app, workloads[app].sample_features(rng))
        if complete:
            runtime = workloads[app].observed_runtime(
                ticket.features, ticket.recommendation.hardware, rng
            )
            service.complete_workflow(ticket.ticket_id, runtime)
        tickets.append(ticket)
    return tickets


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_restore_matches_original_state(self, n_shards):
        service, workloads = build_reference_service(n_shards=n_shards)
        _drive(service, workloads, 24)
        restored = RecommendationService.restore(service.checkpoint())

        assert restored.n_shards == service.n_shards
        assert restored.shard_assignments() == service.shard_assignments()
        assert len(restored.history) == len(service.history)
        assert restored.history.hardware_usage() == service.history.hardware_usage()
        assert restored.history.total_runtime() == service.history.total_runtime()
        probe_rng = np.random.default_rng(123)
        for app in workloads:
            features = workloads[app].sample_features(probe_rng)
            assert restored.predict_runtimes(app, features) == service.predict_runtimes(
                app, features
            )

    def test_resumed_decisions_are_identical(self):
        service, workloads = build_reference_service(n_shards=2)
        _drive(service, workloads, 24)
        restored = RecommendationService.restore(service.checkpoint())
        original_tickets = _drive(service, workloads, 12, seed=77)
        restored_tickets = _drive(restored, workloads, 12, seed=77)
        for a, b in zip(original_tickets, restored_tickets):
            assert a.ticket_id == b.ticket_id
            assert a.recommendation.hardware.name == b.recommendation.hardware.name
            assert a.recommendation.explored == b.recommendation.explored

    def test_pending_tickets_survive_and_can_complete(self):
        service, workloads = build_reference_service(n_shards=2)
        pending = _drive(service, workloads, 6, complete=False)
        restored = RecommendationService.restore(service.checkpoint())
        for ticket in pending:
            copy = restored.ticket(ticket.ticket_id)
            assert not copy.completed
            assert copy.recommendation.hardware.name == ticket.recommendation.hardware.name
        restored.complete_workflow(pending[0].ticket_id, 11.0)
        assert restored.ticket(pending[0].ticket_id).completed
        # The original service is untouched -- restore is a copy, not a view.
        assert not service.ticket(pending[0].ticket_id).completed

    def test_save_and_load_from_disk(self, tmp_path):
        service, workloads = build_reference_service(n_shards=2)
        _drive(service, workloads, 18)
        path = tmp_path / "service.ckpt"
        service.save_checkpoint(path)
        loaded = ServiceCheckpoint.load(path)
        assert loaded.version == CHECKPOINT_VERSION
        restored = restore_service(loaded)
        assert restored.history.hardware_usage() == service.history.hardware_usage()
        assert restored.history.total_runtime() == service.history.total_runtime()

    def test_restore_accepts_a_path_directly(self, tmp_path):
        service, workloads = build_reference_service(n_shards=2)
        _drive(service, workloads, 10)
        path = tmp_path / "service.ckpt"
        service.save_checkpoint(path)
        restored = RecommendationService.restore(path)
        assert restored.n_shards == 2
        assert len(restored.history) == len(service.history)


class TestCheckpointRejection:
    def test_version_mismatch_is_rejected(self):
        service, workloads = build_reference_service()
        _drive(service, workloads, 6)
        checkpoint = checkpoint_service(service)
        stale = ServiceCheckpoint(
            version=CHECKPOINT_VERSION + 1,
            n_shards=checkpoint.n_shards,
            n_replicas=checkpoint.n_replicas,
            shard_payloads=checkpoint.shard_payloads,
            facade_payload=checkpoint.facade_payload,
            history_cursor=checkpoint.history_cursor,
            next_ticket=checkpoint.next_ticket,
            digest=checkpoint.digest,
        )
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            restore_service(stale)

    def test_corrupted_payload_fails_integrity_check(self, tmp_path):
        service, workloads = build_reference_service()
        _drive(service, workloads, 6)
        path = tmp_path / "service.ckpt"
        service.save_checkpoint(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            RecommendationService.restore(path)

    def test_non_checkpoint_file_is_rejected(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(ValueError):
            ServiceCheckpoint.load(path)


class TestRestoredLogging:
    def test_restored_service_defaults_to_null_log(self):
        service, workloads = build_reference_service()
        _drive(service, workloads, 4)
        restored = RecommendationService.restore(service.checkpoint())
        # Serving through the restored facade must not raise even though no
        # log was supplied -- the EventLog is runtime-only state.
        _drive(restored, workloads, 4, seed=8)

    def test_restored_service_accepts_a_fresh_log(self):
        service, workloads = build_reference_service()
        _drive(service, workloads, 4)
        log = EventLog()
        restored = RecommendationService.restore(service.checkpoint(), log=log)
        _drive(restored, workloads, 2, seed=8)
        assert log.filter(event="recommendation")
