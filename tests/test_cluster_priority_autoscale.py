"""Priority/preemption scheduling and autoscaling node-pool tests."""

import pytest

from repro.cluster import (
    AutoscalingNodePool,
    BackfillScheduler,
    ClusterSimulator,
    FIFOScheduler,
    InsufficientCapacityError,
    Node,
    Pod,
    PodPhase,
    PriorityScheduler,
)
from repro.hardware import HardwareCatalog, HardwareConfig, ResourceCostModel

from conftest import constant_workload as _constant_workload

_CATALOG = HardwareCatalog(
    [
        HardwareConfig("small", cpus=2, memory_gb=8),
        HardwareConfig("big", cpus=4, memory_gb=8),
    ]
)


def _cluster(scheduler=None, nodes=None, autoscaler=None, runtimes=None):
    return ClusterSimulator(
        workload=_constant_workload(runtimes or {"small": 10.0, "big": 10.0}),
        catalog=_CATALOG,
        nodes=nodes or [Node("n", cpus=4, memory_gb=32)],
        scheduler=scheduler,
        seed=0,
        autoscaler=autoscaler,
    )


class TestPrioritySchedulerInvariants:
    def test_higher_class_jumps_pending_queue(self):
        # One big pod occupies the node; a low then a high pod queue behind.
        sim = _cluster(PriorityScheduler(preemption=False))
        running = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=5)
        low = sim.submit({"x": 0.0}, "big", at_time=1.0, priority=0)
        high = sim.submit({"x": 0.0}, "big", at_time=2.0, priority=10)
        sim.run_until_idle()
        # Without preemption the running pod finishes first, then the high
        # class starts before the earlier-submitted low class.
        assert running.start_time == pytest.approx(0.0)
        assert high.start_time == pytest.approx(10.0)
        assert low.start_time == pytest.approx(20.0)

    def test_head_of_line_preserved_within_class(self):
        # Three same-class pods: strict FIFO within the class even when a
        # later pod would fit sooner.
        sim = _cluster(PriorityScheduler(preemption=False))
        first = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=1)
        second = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=1)
        blocked_big = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=1)
        late_small = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=1)
        sim.run_until_idle()
        # The big pod blocks its class's queue; the later small pod must not
        # overtake it (head-of-line per class).
        assert first.start_time == pytest.approx(0.0)
        assert second.start_time == pytest.approx(0.0)
        assert blocked_big.start_time == pytest.approx(10.0)
        assert late_small.start_time == pytest.approx(20.0)

    def test_no_starvation_of_high_class_under_low_stream(self):
        # A steady stream of low-priority smalls must not starve a pending
        # high-priority big request.
        sim = _cluster(PriorityScheduler(preemption=False))
        sim.submit({"x": 0.0}, "small", at_time=0.0, priority=0)
        sim.submit({"x": 0.0}, "small", at_time=0.0, priority=0)
        big = sim.submit({"x": 0.0}, "big", at_time=1.0, priority=10)
        for k in range(8):
            sim.submit({"x": 0.0}, "small", at_time=2.0 + k, priority=0)
        sim.run_until_idle()
        assert big.start_time == pytest.approx(10.0)

    def test_preemption_evicts_lowest_class_first(self):
        sim = _cluster(
            PriorityScheduler(preemption=True), nodes=[Node("n", cpus=4, memory_gb=32)]
        )
        mid = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=5)
        low = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=1)
        high = sim.submit({"x": 0.0}, "small", at_time=3.0, priority=10)
        sim.run_until_idle()
        assert high.start_time == pytest.approx(3.0)
        assert low.preemptions == 1
        assert mid.preemptions == 0

    def test_preempted_pod_restarts_from_scratch(self):
        sim = _cluster(PriorityScheduler(preemption=True))
        low = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=0)
        high = sim.submit({"x": 0.0}, "big", at_time=4.0, priority=10)
        sim.run_until_idle()
        # Evicted at t=4 after 4s of (discarded) work; requeued, restarted at
        # t=14 and ran the full 10s again.
        assert high.start_time == pytest.approx(4.0)
        assert low.preemptions == 1
        assert low.wasted_runtime_seconds == pytest.approx(4.0)
        assert low.start_time == pytest.approx(14.0)
        assert low.finish_time == pytest.approx(24.0)
        assert low.queue_seconds == pytest.approx(10.0)  # 0..0 plus 4..14
        assert low.phase is PodPhase.SUCCEEDED

    def test_preemption_accounting_sums_to_occupancy(self):
        # Useful + wasted run time equals the total time the pod occupied
        # capacity, so the resource-second accounting is conserved.
        sim = _cluster(PriorityScheduler(preemption=True))
        low = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=0)
        sim.submit({"x": 0.0}, "big", at_time=6.0, priority=10)
        (run_low,) = [r for r in sim.run_until_idle() if r.pod_name == low.name]
        cost_model = ResourceCostModel()
        config = _CATALOG["big"]
        occupied_seconds = run_low.record.runtime_seconds + run_low.wasted_runtime_seconds
        assert cost_model.occupancy_cost(config, run_low.record.runtime_seconds) + (
            cost_model.occupancy_cost(config, run_low.wasted_runtime_seconds)
        ) == pytest.approx(cost_model.occupancy_cost(config, occupied_seconds))
        assert run_low.wasted_runtime_seconds == pytest.approx(6.0)
        assert run_low.preemptions == 1

    def test_multi_victim_preemption_preserves_class_fifo(self):
        # Regression: evicting two same-class pods at once must requeue them
        # in submission order, not most-recently-started-first.
        sim = _cluster(PriorityScheduler(preemption=True))
        first = sim.submit({"x": 0.0}, "small", at_time=0.0, priority=0)
        second = sim.submit({"x": 0.0}, "small", at_time=1.0, priority=0)
        sim.submit({"x": 0.0}, "big", at_time=3.0, priority=10)  # evicts both
        sim.run_until_idle()
        assert first.preemptions == 1 and second.preemptions == 1
        # Both restart at t=13 when the big pod frees the 4-CPU node, but the
        # earlier-submitted pod must be scheduled first (same instant here;
        # the ordering shows in the event log's scheduling order).
        assert first.start_time <= second.start_time
        sim2 = _cluster(
            PriorityScheduler(preemption=True), nodes=[Node("n", cpus=2, memory_gb=32)]
        )
        a = sim2.submit({"x": 0.0}, "small", at_time=0.0, priority=0)
        b = sim2.submit({"x": 0.0}, "small", at_time=5.0, priority=0)
        high = sim2.submit({"x": 0.0}, "small", at_time=7.0, priority=10)
        sim2.run_until_idle()
        # Only `a` was running (2-CPU node); it is evicted at t=7 and must
        # restart before `b`, which was submitted later.
        assert high.start_time == pytest.approx(7.0)
        assert a.start_time == pytest.approx(17.0)
        assert b.start_time == pytest.approx(27.0)

    def test_eviction_leftover_capacity_goes_to_the_victim_not_lower_classes(self):
        # Regression: after a preemption frees more capacity than the
        # preemptor needs, the victim must rejoin the queue *before* later
        # pods of lower classes compete for the leftovers.
        sim = _cluster(
            PriorityScheduler(preemption=True), nodes=[Node("n", cpus=8, memory_gb=32)]
        )
        victim = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=5)  # 4 CPUs
        # Fill the rest of the node so the preemptor cannot fit without evicting.
        filler = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=5)
        low = sim.submit({"x": 0.0}, "small", at_time=3.0, priority=0)
        high = sim.submit({"x": 0.0}, "small", at_time=3.0, priority=10)  # 2 CPUs
        sim.run_until(3.0)
        # The eviction freed 4 CPUs, the preemptor took 2: the 2 leftover
        # CPUs must not be handed to the lower-class pod while the evicted
        # priority-5 pod waits.
        assert high.phase is PodPhase.RUNNING
        assert victim.preemptions == 1
        assert low.phase is PodPhase.PENDING
        sim.run_until_idle()
        # The victim restarts as soon as the filler frees capacity at t=10;
        # the low-class pod never ran before it.
        assert victim.start_time == pytest.approx(10.0)
        assert low.start_time >= victim.start_time
        assert filler.preemptions == 0

    def test_equal_priority_never_preempts(self):
        sim = _cluster(PriorityScheduler(preemption=True))
        first = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=5)
        second = sim.submit({"x": 0.0}, "big", at_time=1.0, priority=5)
        sim.run_until_idle()
        assert first.preemptions == 0
        assert second.start_time == pytest.approx(10.0)

    def test_stale_finish_event_is_ignored(self):
        # The preempted pod's original completion event must not fire: the
        # pod completes exactly once, after its restart.
        sim = _cluster(PriorityScheduler(preemption=True))
        low = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=0)
        sim.submit({"x": 0.0}, "big", at_time=2.0, priority=10)
        runs = sim.run_until_idle()
        assert [r.pod_name for r in runs].count(low.name) == 1

    def test_fifo_family_ignores_priority(self):
        for scheduler in (FIFOScheduler(), BackfillScheduler()):
            sim = _cluster(scheduler)
            low = sim.submit({"x": 0.0}, "big", at_time=0.0, priority=0)
            high = sim.submit({"x": 0.0}, "big", at_time=1.0, priority=10)
            sim.run_until_idle()
            assert low.start_time == pytest.approx(0.0)
            assert high.start_time == pytest.approx(10.0)
            assert low.preemptions == 0


class TestAutoscalingNodePool:
    def _pool(self, **kwargs):
        defaults = dict(
            node_cpus=4,
            node_memory_gb=32,
            max_nodes=2,
            provision_delay_seconds=30.0,
            scale_down_idle_seconds=100.0,
        )
        defaults.update(kwargs)
        return AutoscalingNodePool(**defaults)

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            AutoscalingNodePool(node_cpus=0, node_memory_gb=1)
        with pytest.raises(ValueError):
            self._pool(max_nodes=0)
        with pytest.raises(ValueError):
            self._pool(provision_delay_seconds=-1.0)
        with pytest.raises(ValueError):
            self._pool(scale_down_idle_seconds=0.0)

    def test_scale_up_adds_capacity_after_delay(self):
        pool = self._pool(provision_delay_seconds=15.0)
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=pool)
        pods = [sim.submit({"x": 0.0}, "small", at_time=0.0) for _ in range(3)]
        sim.run_until_idle()
        # Base runs one pod at a time (t=0 and t=10); the pool node landing
        # at t=15 takes the third pod before the base frees again at t=20.
        starts = sorted(p.start_time for p in pods)
        assert starts[0] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(10.0)
        assert starts[2] == pytest.approx(15.0)
        kinds = [e.kind for e in sim.scale_events]
        assert "scale_up_requested" in kinds and "node_provisioned" in kinds

    def test_peek_next_event_time_sees_provisioning(self):
        # Regression: with only a scale-up in flight, the next event IS the
        # provisioning boundary -- peek must report it, not None.
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=self._pool())
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        waiting = sim.submit({"x": 0.0}, "big", at_time=0.0)  # only fits the pool node
        sim.run_until(10.0)  # base pod done at 10; big pod awaits provisioning
        assert waiting.phase is PodPhase.PENDING
        assert sim.has_work
        assert sim.peek_next_event_time() == pytest.approx(30.0)

    def test_run_until_never_skips_a_scale_up_boundary(self):
        # Regression: stepping far past the provisioning time must process
        # the scale-up at ITS time -- the pod starts at t=30, not at the
        # run_until horizon.
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=self._pool())
        waiting = sim.submit({"x": 0.0}, "big", at_time=0.0)
        sim.run_until(500.0)
        assert waiting.start_time == pytest.approx(30.0)
        assert waiting.finish_time == pytest.approx(40.0)

    def test_request_feasible_via_template_only(self):
        # The big request exceeds the base node but fits a pool node: submit
        # must accept it and the run must land on provisioned capacity.
        sim = _cluster(nodes=[Node("tiny", cpus=1, memory_gb=2)], autoscaler=self._pool())
        pod = sim.submit({"x": 0.0}, "big", at_time=0.0)
        sim.run_until_idle()
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.node.startswith("autoscale-")

    def test_infeasible_even_for_template_rejected(self):
        pool = self._pool(node_cpus=2, node_memory_gb=4)
        sim = _cluster(nodes=[Node("tiny", cpus=1, memory_gb=2)], autoscaler=pool)
        with pytest.raises(InsufficientCapacityError):
            sim.submit({"x": 0.0}, "big", at_time=0.0)

    def test_max_nodes_caps_the_pool(self):
        pool = self._pool(max_nodes=1)
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=pool)
        for _ in range(6):
            sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.run_until_idle()
        provisions = [e for e in sim.scale_events if e.kind == "node_provisioned"]
        assert len(provisions) == 1

    def test_idle_pool_node_drains_but_base_stays(self):
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=self._pool())
        for _ in range(3):
            sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.run_until_idle()
        assert [n.name for n in sim.nodes] == ["base"]
        drains = [e for e in sim.scale_events if e.kind == "node_drained"]
        assert len(drains) == len(
            [e for e in sim.scale_events if e.kind == "node_provisioned"]
        )

    def test_reused_node_is_not_drained_by_stale_check(self):
        # A pod landing on the pool node after it went idle must invalidate
        # the pending drain check.
        pool = self._pool(scale_down_idle_seconds=50.0)
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=pool)
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "big", at_time=0.0)  # forces a pool node
        sim.run_until(40.0)  # pool node up at 30, big pod done at 40 -> idle
        late = sim.submit({"x": 0.0}, "big", at_time=70.0)  # reuse before t=90
        sim.run_until_idle()
        assert late.phase is PodPhase.SUCCEEDED
        assert late.start_time == pytest.approx(70.0)

    def test_pool_node_lifetimes_cover_provision_to_drain(self):
        sim = _cluster(nodes=[Node("base", cpus=2, memory_gb=8)], autoscaler=self._pool())
        sim.submit({"x": 0.0}, "small", at_time=0.0)
        sim.submit({"x": 0.0}, "big", at_time=0.0)
        sim.run_until_idle()
        lifetimes = sim.pool_node_lifetimes()
        assert lifetimes, "a pool node should have been provisioned"
        for name, start, end in lifetimes:
            assert name.startswith("autoscale-")
            assert end > start >= 30.0 - 1e-9

    def test_node_cost_hook_prices_lifetimes(self):
        cost_model = ResourceCostModel()
        assert cost_model.node_occupancy_cost(4, 32, 10.0) == pytest.approx(
            (4 * 1.0 + 32 * 0.125) * 10.0
        )
        with pytest.raises(ValueError):
            cost_model.node_occupancy_cost(4, 32, -1.0)
