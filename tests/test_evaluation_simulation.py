"""Tests for the replicated online simulation and the experiment registry."""

import numpy as np
import pytest

from repro.data import build_cycles_dataset
from repro.evaluation import (
    EXPERIMENT_NAMES,
    OnlineSimulation,
    SimulationConfig,
    SimulationResult,
    build_experiment,
    format_series,
    run_experiment,
)
from repro.evaluation.experiment import ExperimentDefinition
from repro.hardware import ndp_catalog
from repro.workloads import LinearRuntimeWorkload, TraceGenerator


@pytest.fixture
def linear_setup(ndp):
    workload = LinearRuntimeWorkload(
        feature_ranges={"x": (1.0, 10.0)},
        coefficients={
            "H0": ({"x": 20.0}, 10.0),
            "H1": ({"x": 4.0}, 10.0),
            "H2": ({"x": 10.0}, 10.0),
        },
        noise_sigma=1.0,
    )
    frame = TraceGenerator(workload, ndp, seed=21).generate_frame(40, grid=True)
    return workload, frame


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        cfg = SimulationConfig()
        assert cfg.epsilon0 == 1.0
        assert cfg.decay == 0.99
        assert cfg.policy == "epsilon_greedy"
        assert cfg.arm_model == "ols"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_rounds=0)
        with pytest.raises(ValueError):
            SimulationConfig(n_simulations=0)
        with pytest.raises(ValueError):
            SimulationConfig(policy="bogus")
        with pytest.raises(ValueError):
            SimulationConfig(arm_model="bogus")
        with pytest.raises(ValueError):
            SimulationConfig(evaluation_subsample=0)

    def test_policy_factory(self):
        for name in ("epsilon_greedy", "greedy", "random", "linucb", "thompson"):
            policy = SimulationConfig(policy=name).make_policy()
            assert policy is not None

    def test_tolerance_property(self):
        cfg = SimulationConfig(tolerance_ratio=0.05, tolerance_seconds=20.0)
        assert cfg.tolerance.ratio == 0.05
        assert cfg.tolerance.seconds == 20.0


class TestOnlineSimulation:
    def _run(self, workload, frame, ndp, **overrides):
        defaults = dict(n_rounds=30, n_simulations=4, seed=0)
        defaults.update(overrides)
        config = SimulationConfig(**defaults)
        return OnlineSimulation(workload, ndp, frame, config=config).run()

    def test_result_shapes(self, linear_setup, ndp):
        workload, frame = linear_setup
        result = self._run(workload, frame, ndp)
        assert result.rmse.shape == (4, 30)
        assert result.accuracy.shape == (4, 30)
        assert result.rounds[0] == 1 and result.rounds[-1] == 30

    def test_rmse_decreases_toward_reference(self, linear_setup, ndp):
        workload, frame = linear_setup
        result = self._run(workload, frame, ndp)
        early = result.mean_rmse()[:5].mean()
        late = result.mean_rmse()[-5:].mean()
        assert late < early
        assert late < 3.0 * result.reference_rmse

    def test_accuracy_beats_random_on_separable_workload(self, linear_setup, ndp):
        workload, frame = linear_setup
        result = self._run(workload, frame, ndp)
        assert result.accuracy_at(30)[0] > result.random_accuracy

    def test_reproducible_with_same_seed(self, linear_setup, ndp):
        workload, frame = linear_setup
        a = self._run(workload, frame, ndp, seed=7)
        b = self._run(workload, frame, ndp, seed=7)
        assert np.allclose(a.rmse, b.rmse)
        assert np.allclose(a.accuracy, b.accuracy)

    def test_different_seeds_differ(self, linear_setup, ndp):
        workload, frame = linear_setup
        a = self._run(workload, frame, ndp, seed=1)
        b = self._run(workload, frame, ndp, seed=2)
        assert not np.allclose(a.rmse, b.rmse)

    def test_random_policy_has_lower_accuracy(self, linear_setup, ndp):
        workload, frame = linear_setup
        bandit = self._run(workload, frame, ndp, n_rounds=40)
        random = self._run(workload, frame, ndp, n_rounds=40, policy="random")
        # Recommendation quality is scored with the greedy head, so what
        # differs is how informative the collected data is; the random policy
        # should not be better than the bandit.
        assert bandit.accuracy_at(40)[0] >= random.accuracy_at(40)[0] - 0.1

    def test_alternative_arm_models_run(self, linear_setup, ndp):
        workload, frame = linear_setup
        for arm_model in ("ridge", "rls"):
            result = self._run(workload, frame, ndp, arm_model=arm_model, n_rounds=15, n_simulations=2)
            assert np.all(np.isfinite(result.rmse))

    def test_alternative_policies_run(self, linear_setup, ndp):
        workload, frame = linear_setup
        for policy in ("greedy", "linucb", "thompson"):
            result = self._run(
                workload, frame, ndp, policy=policy, arm_model="rls", n_rounds=15, n_simulations=2
            )
            assert np.all(np.isfinite(result.accuracy))

    def test_evaluation_subsample(self, linear_setup, ndp):
        workload, frame = linear_setup
        result = self._run(workload, frame, ndp, evaluation_subsample=10, n_rounds=10, n_simulations=2)
        assert result.rmse.shape == (2, 10)

    def test_tolerance_changes_accuracy_semantics(self, ndp):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (1.0, 10.0)},
            coefficients={
                "H0": ({"x": 5.2}, 10.0),   # slightly slower but most efficient
                "H1": ({"x": 5.0}, 10.0),
                "H2": ({"x": 4.9}, 10.0),   # fastest
            },
            noise_sigma=0.5,
        )
        frame = TraceGenerator(workload, ndp, seed=5).generate_frame(40, grid=True)
        strict = OnlineSimulation(
            workload, ndp, frame, config=SimulationConfig(n_rounds=30, n_simulations=3, seed=0)
        ).run()
        tolerant = OnlineSimulation(
            workload,
            ndp,
            frame,
            config=SimulationConfig(n_rounds=30, n_simulations=3, seed=0, tolerance_seconds=20.0),
        ).run()
        assert tolerant.accuracy_at(30)[0] >= strict.accuracy_at(30)[0]

    def test_missing_columns_rejected(self, linear_setup, ndp):
        workload, frame = linear_setup
        bad = frame.drop("runtime_seconds")
        with pytest.raises(KeyError):
            OnlineSimulation(workload, ndp, bad)

    def test_sample_from_model_mode(self, linear_setup, ndp):
        workload, frame = linear_setup
        sim = OnlineSimulation(
            workload, ndp, frame,
            config=SimulationConfig(n_rounds=10, n_simulations=2, seed=0),
            sample_from_frame=False,
        )
        result = sim.run()
        assert np.all(np.isfinite(result.rmse))


class TestSimulationResult:
    def _result(self, linear_setup, ndp):
        workload, frame = linear_setup
        config = SimulationConfig(n_rounds=20, n_simulations=3, seed=0)
        return OnlineSimulation(workload, ndp, frame, config=config).run()

    def test_round_indexing_is_one_based(self, linear_setup, ndp):
        result = self._result(linear_setup, ndp)
        with pytest.raises(ValueError):
            result.rmse_at(0)
        with pytest.raises(ValueError):
            result.accuracy_at(21)
        mean, std = result.rmse_at(20)
        assert mean > 0 and std >= 0

    def test_gap_to_reference(self, linear_setup, ndp):
        result = self._result(linear_setup, ndp)
        gap = result.rmse_gap_to_reference(20)
        assert gap == pytest.approx(
            (result.mean_rmse()[-1] - result.reference_rmse) / result.reference_rmse
        )

    def test_to_frame_columns(self, linear_setup, ndp):
        frame = self._result(linear_setup, ndp).to_frame()
        assert {"round", "rmse_mean", "rmse_std", "accuracy_mean", "accuracy_std"} <= set(frame.columns)
        assert len(frame) == 20

    def test_summary_keys(self, linear_setup, ndp):
        summary = self._result(linear_setup, ndp).summary()
        assert {"final_rmse_mean", "reference_rmse", "random_accuracy"} <= set(summary)

    def test_format_series_renders(self, linear_setup, ndp):
        text = format_series(self._result(linear_setup, ndp), every=5, title="demo")
        assert "demo" in text
        assert "reference" in text


class TestExperimentRegistry:
    def test_all_names_buildable(self):
        for name in EXPERIMENT_NAMES:
            definition = build_experiment(name, n_simulations=1, n_rounds=2, evaluation_subsample=30)
            assert isinstance(definition, ExperimentDefinition)
            assert definition.paper_reference

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_experiment("not-an-experiment")

    def test_cycles_experiment_uses_tolerance_20s(self):
        definition = build_experiment("cycles_synthetic", n_simulations=1, n_rounds=2)
        assert definition.config.tolerance_seconds == 20.0

    def test_matmul_subset_filters_small_sizes(self):
        definition = build_experiment(
            "matmul_subset_no_tolerance", n_simulations=1, n_rounds=2
        )
        sizes = definition.evaluation_frame["size"].to_numpy(float)
        assert sizes.min() >= 5000

    def test_bp3d_area_only_has_single_feature(self):
        definition = build_experiment("bp3d_area_only", n_simulations=1, n_rounds=2)
        assert definition.feature_names == ["area"]

    def test_run_experiment_small(self):
        definition = build_experiment(
            "cycles_synthetic", n_simulations=2, n_rounds=10
        )
        outcome = run_experiment(definition)
        summary = outcome.summary()
        assert summary["final_accuracy_mean"] >= 0
        assert "rmse_gap_round_25" in summary
