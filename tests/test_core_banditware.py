"""Tests for the BanditWare façade and reward/regret accounting."""

import numpy as np
import pytest

from repro.core import (
    BanditWare,
    DecayingEpsilonGreedyPolicy,
    GreedyPolicy,
    RegretLedger,
    RidgeModel,
    RoundOutcome,
    ToleranceConfig,
    runtime_to_reward,
)
from repro.dataframe import DataFrame
from repro.hardware import ndp_catalog
from repro.workloads import LinearRuntimeWorkload, TraceGenerator


@pytest.fixture
def bandit(ndp):
    return BanditWare(catalog=ndp, feature_names=["x0", "x1"], seed=0)


class TestConstruction:
    def test_one_model_per_arm(self, bandit, ndp):
        assert len(bandit.models) == len(ndp)
        assert bandit.n_features == 2

    def test_duplicate_features_rejected(self, ndp):
        with pytest.raises(ValueError):
            BanditWare(catalog=ndp, feature_names=["x", "x"])

    def test_empty_features_rejected(self, ndp):
        with pytest.raises(ValueError):
            BanditWare(catalog=ndp, feature_names=[])

    def test_default_policy_matches_paper(self, bandit):
        assert isinstance(bandit.policy, DecayingEpsilonGreedyPolicy)
        assert bandit.policy.epsilon0 == 1.0
        assert bandit.policy.decay == 0.99

    def test_custom_arm_model_factory(self, ndp):
        bandit = BanditWare(
            catalog=ndp,
            feature_names=["x"],
            arm_model_factory=lambda m: RidgeModel(m, alpha=2.0),
        )
        assert all(isinstance(m, RidgeModel) for m in bandit.models)

    def test_tolerance_shortcut_passes_through(self, ndp):
        bandit = BanditWare(
            catalog=ndp,
            feature_names=["x"],
            tolerance=ToleranceConfig(seconds=20.0),
        )
        assert bandit.policy.tolerance.seconds == 20.0


class TestOnlineLoop:
    def test_recommend_returns_catalog_hardware(self, bandit, ndp):
        rec = bandit.recommend({"x0": 1.0, "x1": 2.0})
        assert rec.hardware.name in ndp.names
        assert set(rec.estimates) == set(ndp.names)

    def test_recommend_missing_feature(self, bandit):
        with pytest.raises(KeyError, match="x1"):
            bandit.recommend({"x0": 1.0})

    def test_observe_updates_only_that_arm(self, bandit):
        bandit.observe({"x0": 1.0, "x1": 2.0}, "H1", 50.0)
        counts = bandit.observation_counts()
        assert counts == {"H0": 0, "H1": 1, "H2": 0}

    def test_observe_accepts_config_object(self, bandit, ndp):
        bandit.observe({"x0": 1.0, "x1": 2.0}, ndp["H2"], 10.0)
        assert bandit.observation_counts()["H2"] == 1

    def test_observe_rejects_bad_runtime(self, bandit):
        with pytest.raises(ValueError):
            bandit.observe({"x0": 1.0, "x1": 1.0}, "H0", -1.0)
        with pytest.raises(ValueError):
            bandit.observe({"x0": 1.0, "x1": 1.0}, "H0", float("inf"))

    def test_history_records_observations(self, bandit):
        bandit.observe({"x0": 1.0, "x1": 2.0}, "H0", 5.0)
        assert len(bandit.history) == 1
        assert bandit.history[0].hardware == "H0"

    def test_step_runs_full_round(self, bandit):
        rec, runtime = bandit.step({"x0": 1.0, "x1": 1.0}, lambda hw: 42.0)
        assert runtime == 42.0
        assert bandit.observation_counts()[rec.hardware.name] == 1

    def test_predict_runtimes_after_learning(self, bandit):
        for x in np.linspace(1, 10, 20):
            bandit.observe({"x0": x, "x1": 0.0}, "H0", 3.0 * x + 1.0)
        predictions = bandit.predict_runtimes({"x0": 5.0, "x1": 0.0})
        assert predictions["H0"] == pytest.approx(16.0, abs=0.5)

    def test_best_hardware_uses_current_models(self, bandit):
        for x in np.linspace(1, 10, 15):
            bandit.observe({"x0": x, "x1": 0.0}, "H0", 100.0 * x)
            bandit.observe({"x0": x, "x1": 0.0}, "H1", 1.0 * x)
            bandit.observe({"x0": x, "x1": 0.0}, "H2", 50.0 * x)
        assert bandit.best_hardware({"x0": 5.0, "x1": 0.0}).name == "H1"

    def test_best_hardware_with_tolerance_prefers_efficiency(self, bandit):
        for x in np.linspace(1, 10, 15):
            bandit.observe({"x0": x, "x1": 0.0}, "H0", 1.1 * x)
            bandit.observe({"x0": x, "x1": 0.0}, "H1", 5.0 * x)
            bandit.observe({"x0": x, "x1": 0.0}, "H2", 1.0 * x)
        chosen = bandit.best_hardware(
            {"x0": 5.0, "x1": 0.0}, tolerance=ToleranceConfig(seconds=20.0)
        )
        assert chosen.name == "H0"

    def test_coefficients_named_per_arm(self, bandit):
        bandit.observe({"x0": 1.0, "x1": 2.0}, "H0", 5.0)
        coeffs = bandit.coefficients()
        assert set(coeffs) == {"H0", "H1", "H2"}
        assert set(coeffs["H0"]) == {"w_x0", "w_x1", "b"}

    def test_reset_clears_everything(self, bandit):
        bandit.observe({"x0": 1.0, "x1": 2.0}, "H0", 5.0)
        bandit.recommend({"x0": 1.0, "x1": 2.0})
        bandit.reset()
        assert bandit.observation_counts() == {"H0": 0, "H1": 0, "H2": 0}
        assert bandit.history == []
        assert bandit.policy.epsilon == bandit.policy.epsilon0

    def test_seeded_runs_are_reproducible(self, ndp, linear_workload):
        def run(seed):
            rng = np.random.default_rng(99)
            bandit = BanditWare(catalog=ndp, feature_names=linear_workload.feature_names, seed=seed)
            picks = []
            for _ in range(30):
                f = linear_workload.sample_features(rng)
                rec = bandit.recommend(f)
                runtime = linear_workload.observed_runtime(f, rec.hardware, rng)
                bandit.observe(f, rec.hardware, runtime)
                picks.append(rec.hardware.name)
            return picks

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestLearningBehaviour:
    def test_learns_best_arm_on_linear_workload(self, ndp):
        """After enough rounds the bandit recommends the truly fastest arm."""
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (1.0, 10.0)},
            coefficients={
                "H0": ({"x": 30.0}, 10.0),
                "H1": ({"x": 5.0}, 10.0),
                "H2": ({"x": 15.0}, 10.0),
            },
            noise_sigma=1.0,
        )
        rng = np.random.default_rng(0)
        bandit = BanditWare(catalog=ndp, feature_names=["x"], seed=1)
        for _ in range(120):
            f = workload.sample_features(rng)
            rec = bandit.recommend(f)
            bandit.observe(f, rec.hardware, workload.observed_runtime(f, rec.hardware, rng))
        final = [bandit.best_hardware({"x": float(x)}).name for x in (2.0, 5.0, 9.0)]
        assert final == ["H1", "H1", "H1"]

    def test_recovers_per_arm_coefficients(self, ndp):
        workload = LinearRuntimeWorkload(
            feature_ranges={"x": (1.0, 10.0)},
            coefficients={name: ({"x": 3.0 + i}, 7.0) for i, name in enumerate(ndp.names)},
            noise_sigma=0.01,
        )
        rng = np.random.default_rng(2)
        bandit = BanditWare(catalog=ndp, feature_names=["x"], seed=3)
        gen_features = [workload.sample_features(rng) for _ in range(40)]
        for f in gen_features:
            for hw in ndp:
                bandit.observe(f, hw, workload.observed_runtime(f, hw, rng))
        for i, hw in enumerate(ndp):
            fitted = bandit.coefficients()[hw.name]
            assert fitted["w_x"] == pytest.approx(3.0 + i, abs=0.05)
            assert fitted["b"] == pytest.approx(7.0, abs=0.3)


class TestWarmStart:
    def test_warm_start_ingests_rows(self, ndp, linear_workload):
        generator = TraceGenerator(linear_workload, ndp, seed=4)
        frame = generator.generate_frame(30)
        bandit = BanditWare(catalog=ndp, feature_names=linear_workload.feature_names, seed=0)
        ingested = bandit.warm_start(frame)
        assert ingested == 30
        assert sum(bandit.observation_counts().values()) == 30

    def test_warm_start_skips_unknown_hardware(self, ndp, linear_workload):
        generator = TraceGenerator(linear_workload, ndp, seed=4)
        frame = generator.generate_frame(10)
        frame["hardware"] = ["H9"] * len(frame)
        bandit = BanditWare(catalog=ndp, feature_names=linear_workload.feature_names)
        assert bandit.warm_start(frame) == 0

    def test_warm_start_missing_column(self, ndp):
        bandit = BanditWare(catalog=ndp, feature_names=["x0"])
        with pytest.raises(KeyError):
            bandit.warm_start(DataFrame({"hardware": ["H0"], "runtime_seconds": [1.0]}))

    def test_warm_started_predictions_match_offline_fit(self, ndp, linear_workload):
        generator = TraceGenerator(linear_workload, ndp, seed=4)
        frame = generator.generate_frame(60)
        bandit = BanditWare(catalog=ndp, feature_names=linear_workload.feature_names)
        bandit.warm_start(frame)
        f = {name: 50.0 for name in linear_workload.feature_names}
        predictions = bandit.predict_runtimes(f)
        truth = {hw.name: linear_workload.expected_runtime(f, hw) for hw in ndp}
        for name in ndp.names:
            if bandit.observation_counts()[name] >= 5:
                assert predictions[name] == pytest.approx(truth[name], rel=0.2)


class TestRewardsAndRegret:
    def test_runtime_to_reward_is_monotone(self):
        assert runtime_to_reward(10.0) > runtime_to_reward(20.0)

    def test_runtime_to_reward_scale(self):
        assert runtime_to_reward(10.0, scale=10.0) == -1.0

    def test_runtime_to_reward_rejects_bad_input(self):
        with pytest.raises(ValueError):
            runtime_to_reward(-1.0)
        with pytest.raises(ValueError):
            runtime_to_reward(1.0, scale=0.0)

    def _outcome(self, i, chosen, best, runtime, best_runtime, chosen_runtime, explored=False):
        return RoundOutcome(
            round_index=i,
            chosen_hardware=chosen,
            best_hardware=best,
            observed_runtime=runtime,
            best_expected_runtime=best_runtime,
            expected_runtime_on_chosen=chosen_runtime,
            explored=explored,
        )

    def test_ledger_accuracy_and_regret(self):
        ledger = RegretLedger()
        ledger.record(self._outcome(0, "H0", "H0", 10.0, 10.0, 10.0))
        ledger.record(self._outcome(1, "H1", "H0", 15.0, 10.0, 14.0, explored=True))
        assert len(ledger) == 2
        assert ledger.accuracy_curve().tolist() == [1.0, 0.5]
        assert ledger.cumulative_runtime_regret().tolist() == [0.0, 4.0]
        assert ledger.exploration_fraction() == 0.5
        assert ledger.total_observed_runtime() == 25.0

    def test_ledger_windowed_accuracy(self):
        ledger = RegretLedger()
        for i in range(4):
            correct = i >= 2
            ledger.record(
                self._outcome(i, "H0" if correct else "H1", "H0", 10.0, 10.0, 12.0)
            )
        windowed = ledger.accuracy_curve(window=2)
        assert windowed.tolist() == [0.0, 0.0, 0.5, 1.0]

    def test_ledger_rejects_out_of_order_rounds(self):
        ledger = RegretLedger()
        ledger.record(self._outcome(3, "H0", "H0", 1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            ledger.record(self._outcome(2, "H0", "H0", 1.0, 1.0, 1.0))

    def test_empty_ledger_summary(self):
        assert RegretLedger().summary()["rounds"] == 0

    def test_summary_fields(self):
        ledger = RegretLedger()
        ledger.record(self._outcome(0, "H0", "H0", 10.0, 10.0, 10.0))
        summary = ledger.summary()
        assert summary["accuracy"] == 1.0
        assert summary["cumulative_regret"] == 0.0


class TestQueueAwareObservations:
    """Opt-in queue-inclusive reward shaping of BanditWare's learning signal."""

    def _bandit(self, reward=None):
        from repro.core import GreedyPolicy, RewardConfig  # noqa: F401

        return BanditWare(
            catalog=ndp_catalog(),
            feature_names=["x"],
            policy=GreedyPolicy(),
            seed=0,
            reward=reward,
        )

    def test_default_mode_ignores_queue_seconds(self):
        from repro.core import RewardConfig

        plain = self._bandit()
        queued = self._bandit(reward=RewardConfig())
        for bandit in (plain, queued):
            bandit.observe({"x": 1.0}, "H0", 10.0, queue_seconds=500.0)
            bandit.observe({"x": 2.0}, "H0", 20.0, queue_seconds=500.0)
        assert plain.model_for("H0").predict(np.asarray([3.0])) == pytest.approx(
            queued.model_for("H0").predict(np.asarray([3.0]))
        )
        # Training target is the raw runtime: x=3 extrapolates to 30.
        assert plain.model_for("H0").predict(np.asarray([3.0])) == pytest.approx(30.0)

    def test_queue_inclusive_mode_inflates_training_target(self):
        from repro.core import RewardConfig

        bandit = self._bandit(reward=RewardConfig(mode="queue_inclusive", queue_weight=1.0))
        bandit.observe({"x": 1.0}, "H0", 10.0, queue_seconds=5.0)
        bandit.observe({"x": 2.0}, "H0", 20.0, queue_seconds=10.0)
        # Targets were 15 and 30, i.e. effective runtime = 15x.
        assert bandit.model_for("H0").predict(np.asarray([3.0])) == pytest.approx(45.0)
        # The history keeps the raw decomposition.
        assert [rec.queue_seconds for rec in bandit.history] == [5.0, 10.0]
        assert [rec.runtime_seconds for rec in bandit.history] == [10.0, 20.0]

    def test_observe_batch_accepts_queue_delays(self):
        from repro.core import RewardConfig

        batched = self._bandit(reward=RewardConfig(mode="queue_inclusive"))
        batched.observe_batch(
            [{"x": 1.0}, {"x": 2.0}], ["H0", "H0"], [10.0, 20.0], queues_seconds=[5.0, 10.0]
        )
        sequential = self._bandit(reward=RewardConfig(mode="queue_inclusive"))
        sequential.observe({"x": 1.0}, "H0", 10.0, queue_seconds=5.0)
        sequential.observe({"x": 2.0}, "H0", 20.0, queue_seconds=10.0)
        x = np.asarray([4.0])
        assert batched.model_for("H0").predict(x) == pytest.approx(
            sequential.model_for("H0").predict(x)
        )

    def test_observe_batch_queue_length_mismatch(self):
        bandit = self._bandit()
        with pytest.raises(ValueError, match="queue delays"):
            bandit.observe_batch([{"x": 1.0}], ["H0"], [10.0], queues_seconds=[1.0, 2.0])


class TestSlowdownAwareObservations:
    """Opt-in slowdown-inclusive reward shaping: interference-penalised targets."""

    def _bandit(self, reward=None):
        from repro.core import GreedyPolicy

        return BanditWare(
            catalog=ndp_catalog(),
            feature_names=["x"],
            policy=GreedyPolicy(),
            seed=0,
            reward=reward,
        )

    def test_reward_config_validates_mode_and_weight(self):
        from repro.core import RewardConfig

        config = RewardConfig(mode="slowdown_inclusive", slowdown_weight=2.0)
        assert config.slowdown_aware and not config.queue_aware
        with pytest.raises(ValueError, match="slowdown_weight"):
            RewardConfig(mode="slowdown_inclusive", slowdown_weight=-1.0)
        with pytest.raises(ValueError, match="reward mode"):
            RewardConfig(mode="interference")

    def test_effective_runtime_charges_interference_seconds(self):
        from repro.core import RewardConfig

        config = RewardConfig(mode="slowdown_inclusive", slowdown_weight=1.0)
        # observed 20s at slowdown 2.0 means 10s planned: charge 10s again.
        assert config.effective_runtime(20.0, slowdown=2.0) == pytest.approx(30.0)
        # half weight charges half the damage.
        half = RewardConfig(mode="slowdown_inclusive", slowdown_weight=0.5)
        assert half.effective_runtime(20.0, slowdown=2.0) == pytest.approx(25.0)
        # no or unit slowdown adds nothing; runtime mode is bit-identical.
        assert config.effective_runtime(20.0) == 20.0
        assert config.effective_runtime(20.0, slowdown=1.0) == 20.0
        assert RewardConfig().effective_runtime(20.0, slowdown=3.0) == 20.0

    def test_invalid_slowdown_rejected_in_every_mode(self):
        from repro.core import RewardConfig

        for config in (RewardConfig(), RewardConfig(mode="slowdown_inclusive")):
            with pytest.raises(ValueError, match="slowdown"):
                config.effective_runtime(10.0, slowdown=0.0)
            with pytest.raises(ValueError, match="slowdown"):
                config.effective_runtime(10.0, slowdown=float("nan"))

    def test_default_mode_ignores_slowdown(self):
        plain = self._bandit()
        plain.observe({"x": 1.0}, "H0", 10.0, slowdown=3.0)
        plain.observe({"x": 2.0}, "H0", 20.0, slowdown=3.0)
        assert plain.model_for("H0").predict(np.asarray([3.0])) == pytest.approx(30.0)
        assert [rec.slowdown for rec in plain.history] == [3.0, 3.0]

    def test_slowdown_inclusive_mode_inflates_training_target(self):
        from repro.core import RewardConfig

        bandit = self._bandit(reward=RewardConfig(mode="slowdown_inclusive"))
        # observed 20/40 at slowdown 2.0: planned 10/20, targets 30/60 = 30x.
        bandit.observe({"x": 1.0}, "H0", 20.0, slowdown=2.0)
        bandit.observe({"x": 2.0}, "H0", 40.0, slowdown=2.0)
        assert bandit.model_for("H0").predict(np.asarray([3.0])) == pytest.approx(90.0)
        # The history keeps the raw decomposition.
        assert [rec.runtime_seconds for rec in bandit.history] == [20.0, 40.0]
        assert [rec.slowdown for rec in bandit.history] == [2.0, 2.0]

    def test_observe_batch_matches_sequential(self):
        from repro.core import RewardConfig

        batched = self._bandit(reward=RewardConfig(mode="slowdown_inclusive"))
        batched.observe_batch(
            [{"x": 1.0}, {"x": 2.0}],
            ["H0", "H0"],
            [20.0, 40.0],
            slowdowns=[2.0, None],
        )
        sequential = self._bandit(reward=RewardConfig(mode="slowdown_inclusive"))
        sequential.observe({"x": 1.0}, "H0", 20.0, slowdown=2.0)
        sequential.observe({"x": 2.0}, "H0", 40.0)
        x = np.asarray([4.0])
        assert batched.model_for("H0").predict(x) == pytest.approx(
            sequential.model_for("H0").predict(x)
        )

    def test_observe_batch_slowdown_length_mismatch(self):
        bandit = self._bandit()
        with pytest.raises(ValueError, match="slowdowns"):
            bandit.observe_batch([{"x": 1.0}], ["H0"], [10.0], slowdowns=[1.0, 2.0])
