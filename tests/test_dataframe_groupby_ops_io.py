"""Tests for repro.dataframe group-by, concat/merge and CSV I/O."""

import io

import numpy as np
import pytest

from repro.dataframe import DataFrame, concat, merge, read_csv, write_csv


@pytest.fixture
def runs():
    return DataFrame(
        {
            "run_id": ["r1", "r2", "r3", "r4", "r5"],
            "hardware": ["H0", "H1", "H0", "H2", "H1"],
            "runtime": [10.0, 12.0, 14.0, 9.0, 11.0],
        }
    )


class TestGroupBy:
    def test_group_count(self, runs):
        gb = runs.groupby("hardware")
        assert gb.size() == {("H0",): 2, ("H1",): 2, ("H2",): 1}

    def test_iteration_yields_subframes(self, runs):
        for key, sub in runs.groupby("hardware"):
            assert set(sub["hardware"].to_list()) == {key[0]}

    def test_get_group_scalar_key(self, runs):
        sub = runs.groupby("hardware").get_group("H0")
        assert len(sub) == 2

    def test_get_group_missing(self, runs):
        with pytest.raises(KeyError):
            runs.groupby("hardware").get_group("H9")

    def test_agg_named(self, runs):
        out = runs.groupby("hardware").agg({"runtime": "mean"})
        row = {r["hardware"]: r["runtime_mean"] for r in out.iterrows()}
        assert row["H0"] == pytest.approx(12.0)
        assert row["H2"] == pytest.approx(9.0)

    def test_agg_callable(self, runs):
        out = runs.groupby("hardware").agg({"runtime": lambda a: float(np.max(a) - np.min(a))})
        row = {r["hardware"]: r["runtime"] for r in out.iterrows()}
        assert row["H0"] == pytest.approx(4.0)

    def test_agg_unknown_name(self, runs):
        with pytest.raises(ValueError):
            runs.groupby("hardware").agg({"runtime": "nope"})

    def test_mean_shortcut(self, runs):
        out = runs.groupby("hardware").mean(["runtime"])
        assert "runtime_mean" in out

    def test_count_shortcut(self, runs):
        out = runs.groupby("hardware").count()
        counts = {r["hardware"]: r["count"] for r in out.iterrows()}
        assert counts == {"H0": 2, "H1": 2, "H2": 1}

    def test_apply(self, runs):
        out = runs.groupby("hardware").apply(lambda sub: {"total": sub["runtime"].sum()})
        totals = {r["hardware"]: r["total"] for r in out.iterrows()}
        assert totals["H1"] == pytest.approx(23.0)

    def test_multi_key(self, runs):
        runs["site"] = ["a", "a", "b", "b", "a"]
        gb = runs.groupby(["hardware", "site"])
        assert ("H0", "a") in gb.groups()

    def test_missing_key_column(self, runs):
        with pytest.raises(KeyError):
            runs.groupby("nope")

    def test_empty_keys_rejected(self, runs):
        with pytest.raises(ValueError):
            runs.groupby([])


class TestConcat:
    def test_row_stack(self, runs):
        out = concat([runs, runs])
        assert len(out) == 10

    def test_union_of_columns_filled(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"y": [2]})
        out = concat([a, b])
        assert set(out.columns) == {"x", "y"}
        assert np.isnan(out["y"][0])

    def test_empty_input(self):
        assert concat([]).shape == (0, 0)


class TestMerge:
    def test_inner_join(self):
        left = DataFrame({"id": [1, 2, 3], "a": [10, 20, 30]})
        right = DataFrame({"id": [2, 3, 4], "b": [200, 300, 400]})
        out = merge(left, right, on="id")
        assert len(out) == 2
        assert out["id"].to_list() == [2, 3]
        assert out["b"].to_list() == [200, 300]

    def test_left_join_fills_nan(self):
        left = DataFrame({"id": [1, 2], "a": [10, 20]})
        right = DataFrame({"id": [2], "b": [200]})
        out = merge(left, right, on="id", how="left")
        assert len(out) == 2
        assert np.isnan(out["b"][0])

    def test_outer_join_includes_unmatched_right(self):
        left = DataFrame({"id": [1], "a": [10]})
        right = DataFrame({"id": [2], "b": [20]})
        out = merge(left, right, on="id", how="outer")
        assert len(out) == 2

    def test_overlapping_columns_get_suffixes(self):
        left = DataFrame({"id": [1], "v": [10]})
        right = DataFrame({"id": [1], "v": [99]})
        out = merge(left, right, on="id")
        assert "v_x" in out and "v_y" in out

    def test_one_to_many(self):
        left = DataFrame({"id": [1], "a": [10]})
        right = DataFrame({"id": [1, 1], "b": [1, 2]})
        out = merge(left, right, on="id")
        assert len(out) == 2

    def test_multi_key_join(self):
        left = DataFrame({"id": [1, 1], "hw": ["H0", "H1"], "a": [5, 6]})
        right = DataFrame({"id": [1, 1], "hw": ["H1", "H0"], "b": [60, 50]})
        out = merge(left, right, on=["id", "hw"])
        rows = {r["hw"]: (r["a"], r["b"]) for r in out.iterrows()}
        assert rows == {"H0": (5, 50), "H1": (6, 60)}

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            merge(DataFrame({"a": [1]}), DataFrame({"b": [1]}), on="id")

    def test_bad_how(self):
        frame = DataFrame({"id": [1]})
        with pytest.raises(ValueError):
            merge(frame, frame, on="id", how="cross")

    def test_no_matches_inner(self):
        left = DataFrame({"id": [1], "a": [1]})
        right = DataFrame({"id": [2], "b": [2]})
        out = merge(left, right, on="id")
        assert len(out) == 0
        assert set(out.columns) == {"id", "a", "b"}


class TestCsvIO:
    def test_roundtrip_through_buffer(self, runs):
        buffer = io.StringIO()
        write_csv(runs, buffer)
        buffer.seek(0)
        back = read_csv(buffer)
        assert back.shape == runs.shape
        assert back["runtime"].to_list() == runs["runtime"].to_list()
        assert back["hardware"].to_list() == runs["hardware"].to_list()

    def test_roundtrip_through_file(self, runs, tmp_path):
        path = tmp_path / "runs.csv"
        write_csv(runs, path)
        back = read_csv(path)
        assert back.shape == runs.shape

    def test_type_inference_int_float_str(self):
        buffer = io.StringIO("a,b,c\n1,1.5,x\n2,2.5,y\n")
        frame = read_csv(buffer)
        assert frame["a"].dtype.kind == "i"
        assert frame["b"].dtype.kind == "f"
        assert frame["c"].dtype == object

    def test_missing_values_become_nan(self):
        buffer = io.StringIO("a,b\n1,x\n,y\n3,z\n")
        frame = read_csv(buffer)
        assert np.isnan(frame["a"][1])
        assert frame["a"][0] == 1.0

    def test_empty_file(self):
        assert read_csv(io.StringIO("")).shape == (0, 0)

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            read_csv(io.StringIO("a,b\n1\n"))

    def test_write_selected_columns(self, runs, tmp_path):
        path = tmp_path / "partial.csv"
        write_csv(runs, path, columns=["run_id"])
        back = read_csv(path)
        assert back.columns == ["run_id"]
