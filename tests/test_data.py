"""Tests for the dataset builders and splitting helpers."""

import numpy as np
import pytest

from repro.data import (
    BP3D_N_RUNS,
    CYCLES_N_RUNS,
    MATMUL_N_RUNS,
    build_bp3d_dataset,
    build_cycles_dataset,
    build_matmul_dataset,
    per_hardware_counts,
    train_test_split,
    truncate_by_threshold,
)
from repro.dataframe import DataFrame


class TestCyclesDataset:
    def test_size_matches_paper(self, cycles_bundle):
        assert cycles_bundle.n_runs == CYCLES_N_RUNS

    def test_grid_balance(self, cycles_bundle):
        counts = cycles_bundle.per_hardware_counts()
        assert len(counts) == 4
        assert len(set(counts.values())) == 1

    def test_two_workflow_sizes(self, cycles_bundle):
        sizes = set(cycles_bundle.frame["num_tasks"].to_numpy(float))
        assert sizes == {100.0, 500.0}

    def test_deterministic(self):
        a = build_cycles_dataset(seed=5).frame["runtime_seconds"].to_list()
        b = build_cycles_dataset(seed=5).frame["runtime_seconds"].to_list()
        assert a == b

    def test_feature_names(self, cycles_bundle):
        assert cycles_bundle.feature_names == ["num_tasks"]


class TestBp3dDataset:
    def test_size_matches_paper(self, bp3d_bundle):
        assert bp3d_bundle.n_runs == BP3D_N_RUNS

    def test_columns_include_table1_features(self, bp3d_bundle):
        assert {"area", "wind_speed", "sim_time", "surface_moisture"} <= set(
            bp3d_bundle.frame.columns
        )

    def test_runs_spread_over_ndp_triple(self, bp3d_bundle):
        counts = bp3d_bundle.per_hardware_counts()
        assert set(counts) == {"H0", "H1", "H2"}
        assert min(counts.values()) > 300

    def test_runtime_scale(self, bp3d_bundle):
        runtimes = bp3d_bundle.frame["runtime_seconds"].to_numpy(float)
        assert runtimes.max() > 3.0e4
        assert runtimes.min() >= 0


class TestMatmulDataset:
    def test_size_matches_paper(self, matmul_bundle):
        assert matmul_bundle.n_runs == MATMUL_N_RUNS

    def test_small_size_majority(self, matmul_bundle):
        sizes = matmul_bundle.frame["size"].to_numpy(float)
        fraction = float((sizes < 5000).mean())
        assert 0.6 < fraction < 0.8

    def test_five_hardware_options(self, matmul_bundle):
        assert len(matmul_bundle.catalog) == 5

    def test_runtime_ranges(self, matmul_bundle):
        frame = matmul_bundle.frame
        sizes = frame["size"].to_numpy(float)
        runtimes = frame["runtime_seconds"].to_numpy(float)
        assert runtimes[sizes < 5000].max() < 150
        assert runtimes[sizes >= 5000].max() > 500


class TestSplits:
    def test_train_test_split_partitions(self, cycles_bundle):
        train, test = train_test_split(cycles_bundle.frame, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(cycles_bundle.frame)
        train_ids = set(train["run_id"].to_list())
        test_ids = set(test["run_id"].to_list())
        assert not train_ids & test_ids

    def test_train_test_split_fraction_bounds(self, cycles_bundle):
        with pytest.raises(ValueError):
            train_test_split(cycles_bundle.frame, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(cycles_bundle.frame, test_fraction=1.0)

    def test_train_test_split_tiny_frame(self):
        with pytest.raises(ValueError):
            train_test_split(DataFrame({"a": [1]}), test_fraction=0.5)

    def test_truncate_above(self, matmul_bundle):
        subset = truncate_by_threshold(matmul_bundle.frame, "size", 5000, keep="above")
        assert subset["size"].to_numpy(float).min() >= 5000
        assert len(subset) < len(matmul_bundle.frame)

    def test_truncate_below(self, matmul_bundle):
        subset = truncate_by_threshold(matmul_bundle.frame, "size", 5000, keep="below")
        assert subset["size"].to_numpy(float).max() < 5000

    def test_truncate_partitions_completely(self, matmul_bundle):
        above = truncate_by_threshold(matmul_bundle.frame, "size", 5000, keep="above")
        below = truncate_by_threshold(matmul_bundle.frame, "size", 5000, keep="below")
        assert len(above) + len(below) == len(matmul_bundle.frame)

    def test_truncate_invalid_arguments(self, matmul_bundle):
        with pytest.raises(KeyError):
            truncate_by_threshold(matmul_bundle.frame, "nope", 5000)
        with pytest.raises(ValueError):
            truncate_by_threshold(matmul_bundle.frame, "size", 5000, keep="sideways")

    def test_per_hardware_counts(self, cycles_bundle):
        counts = per_hardware_counts(cycles_bundle.frame)
        assert sum(counts.values()) == len(cycles_bundle.frame)

    def test_per_hardware_counts_missing_column(self):
        with pytest.raises(KeyError):
            per_hardware_counts(DataFrame({"a": [1]}))
