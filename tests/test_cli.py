"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_experiment_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-experiment", "not-a-real-experiment"])


class TestListExperiments:
    def test_lists_all_registered_experiments(self):
        code, output = run_cli("list-experiments")
        assert code == 0
        assert "bp3d_all_features" in output
        assert "matmul_subset_tolerance_5pct" in output
        assert "Figures 7a, 7b" in output


class TestShowCatalog:
    def test_ndp_catalog(self):
        code, output = run_cli("show-catalog", "ndp")
        assert code == 0
        assert "H0" in output and "H2" in output

    def test_gpu_catalog_shows_gpus(self):
        code, output = run_cli("show-catalog", "gpu")
        assert code == 0
        assert "G4" in output


class TestRunExperiment:
    def test_small_run_prints_series_and_summary(self):
        code, output = run_cli(
            "run-experiment",
            "cycles_synthetic",
            "--rounds", "10",
            "--simulations", "2",
            "--every", "5",
            "--seed", "1",
        )
        assert code == 0
        assert "rmse_mean" in output
        assert "summary" in output
        assert "final_accuracy_mean" in output

    def test_workers_flag_matches_serial_output(self):
        args = (
            "run-experiment", "cycles_synthetic",
            "--rounds", "8", "--simulations", "2",
            "--subsample", "40", "--every", "4", "--seed", "1",
        )
        code_serial, output_serial = run_cli(*args, "--workers", "1")
        code_parallel, output_parallel = run_cli(*args, "--workers", "2")
        assert code_serial == code_parallel == 0
        assert output_serial == output_parallel


class TestRunContention:
    def test_light_scenario_reports_queue_accounting(self):
        code, output = run_cli("run-contention", "--scenario", "light", "--seed", "1")
        assert code == 0
        assert "scenario summary" in output
        assert "queue_inclusive_regret" in output
        assert "occupancy_cost" in output
        assert "mean_queue_seconds" in output

    def test_saturated_scenario_completes_end_to_end(self):
        code, output = run_cli("run-contention", "--scenario", "saturated", "--rows", "3")
        assert code == 0
        assert "sweep-campaign" in output
        assert "first 3 completions" in output

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-contention", "--scenario", "imaginary"])


class TestListScenarios:
    def test_lists_the_whole_registry_with_descriptions(self):
        from repro.evaluation import CONTENTION_SCENARIOS

        code, output = run_cli("list-scenarios")
        assert code == 0
        for name in CONTENTION_SCENARIOS:
            assert name in output
        assert "spread-vs-pack" in output
        assert "LinearSlowdown" in output  # the interference column
        assert "single closed-loop tenant" in output  # a description line


class TestRunContentionPlacement:
    def test_placement_flag_changes_the_outcome(self):
        packed_code, packed = run_cli(
            "run-contention", "--scenario", "interference-heavy", "--placement", "pack"
        )
        aware_code, aware = run_cli(
            "run-contention", "--scenario", "interference-heavy",
            "--placement", "least-slowdown",
        )
        assert packed_code == aware_code == 0
        assert "placement=pack" in packed
        assert "placement=least-slowdown" in aware
        assert "placement: pack" in packed
        assert "placement: least-slowdown" in aware

        def mean_slowdown(text):
            for line in text.splitlines():
                if line.startswith("mean_slowdown"):
                    return float(line.split(":")[1])
            raise AssertionError("no mean_slowdown line")

        assert mean_slowdown(aware) < mean_slowdown(packed)

    def test_invalid_placement_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-contention", "--scenario", "light", "--placement", "random"]
            )

    def test_replications_append_confidence_bands(self):
        code, output = run_cli(
            "run-contention", "--scenario", "saturated", "--replications", "2"
        )
        assert code == 0
        assert "replications: 2 seeds (0..1)" in output
        assert "95% CI" in output

    def test_replications_exclusive_with_sweep(self):
        with pytest.raises(SystemExit):
            run_cli(
                "run-contention", "--scenario", "saturated",
                "--replications", "2", "--sweep-seeds", "2",
            )


class TestGenerateAndRecommend:
    def test_generate_dataset_writes_files(self, tmp_path):
        target = tmp_path / "cycles"
        code, output = run_cli(
            "generate-dataset", "cycles", "--output", str(target), "--runs", "40"
        )
        assert code == 0
        assert (target / "runs.csv").exists()
        assert "40" in output

    def test_recommend_from_saved_dataset(self, tmp_path):
        target = tmp_path / "cycles"
        run_cli("generate-dataset", "cycles", "--output", str(target), "--runs", "60")
        code, output = run_cli(
            "recommend",
            "--dataset", str(target),
            "--features", "num_tasks=500",
            "--tolerance-seconds", "20",
        )
        assert code == 0
        assert "recommended" in output
        assert "warm-started from 60" in output

    def test_recommend_missing_feature(self, tmp_path):
        target = tmp_path / "cycles"
        run_cli("generate-dataset", "cycles", "--output", str(target), "--runs", "20")
        with pytest.raises(SystemExit):
            run_cli("recommend", "--dataset", str(target), "--features", "wrong=1")

    def test_recommend_bad_feature_syntax(self, tmp_path):
        target = tmp_path / "cycles"
        run_cli("generate-dataset", "cycles", "--output", str(target), "--runs", "20")
        with pytest.raises(SystemExit):
            run_cli("recommend", "--dataset", str(target), "--features", "num_tasks")


class TestRunServiceLoad:
    def test_runs_one_mix_at_two_shard_counts(self):
        code, output = run_cli(
            "run-service-load",
            "--mix", "zipfian",
            "--shards", "1", "4",
            "--requests", "200",
            "--apps", "16",
            "--cost-per-request", "0.002",
        )
        assert code == 0
        assert "serving-layer load" in output
        assert "p99_ms" in output
        assert "speedup:" in output
        assert "nothing dropped silently" in output

    def test_single_shard_count_omits_speedup_line(self):
        code, output = run_cli(
            "run-service-load",
            "--mix", "bursty",
            "--shards", "2",
            "--requests", "150",
            "--cost-per-request", "0.002",
        )
        assert code == 0
        assert "speedup:" not in output

    def test_rejects_invalid_shard_count(self):
        with pytest.raises(SystemExit):
            run_cli(
                "run-service-load", "--shards", "0",
                "--requests", "50", "--cost-per-request", "0.002",
            )

    def test_rejects_unknown_mix(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-service-load", "--mix", "diurnal"])
