"""Tests for the unified experiment engine, its new scenarios and sweeps."""

import pickle

import numpy as np
import pytest

from repro.core.rewards import RewardConfig
from repro.evaluation import (
    CONTENTION_SCENARIOS,
    ExperimentEngine,
    build_scenario,
    run_scenario,
    run_scenario_sweep,
    run_synchronous,
)
from repro.evaluation.engine import (
    replication_sequences,
    stream_rng,
)
from repro.hardware import ResourceCostModel


class TestSeedingDiscipline:
    def test_stream_rng_is_deterministic_per_purpose(self):
        a = stream_rng(3, 1, "features").integers(1 << 30, size=4)
        b = stream_rng(3, 1, "features").integers(1 << 30, size=4)
        c = stream_rng(3, 1, "arrivals").integers(1 << 30, size=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_stream_rng_rejects_unknown_purpose(self):
        with pytest.raises(KeyError):
            stream_rng(0, 0, "nope")

    def test_replication_sequences_are_independent_children(self):
        seqs = replication_sequences(7, 3)
        assert len(seqs) == 3
        draws = [np.random.default_rng(s).integers(1 << 30, size=2) for s in seqs]
        assert not np.array_equal(draws[0], draws[1])
        again = replication_sequences(7, 3)
        redraws = [np.random.default_rng(s).integers(1 << 30, size=2) for s in again]
        for first, second in zip(draws, redraws):
            assert np.array_equal(first, second)


class TestEngineFrontendParity:
    """run_scenario/run_synchronous are thin wrappers over the engine."""

    def test_run_scenario_equals_engine_run(self):
        direct = ExperimentEngine(build_scenario("saturated", seed=3)).run()
        wrapped = run_scenario(build_scenario("saturated", seed=3))
        assert direct.summary() == wrapped.summary()
        assert direct.rows == wrapped.rows

    def test_run_synchronous_equals_engine_run_synchronous(self):
        direct = ExperimentEngine(build_scenario("zero-contention", seed=3)).run_synchronous()
        wrapped = run_synchronous(build_scenario("zero-contention", seed=3))
        assert direct.summary() == wrapped.summary()


class TestScenarioPickling:
    """Scenario sweeps fan out over the PR 1 process pool: every registered
    scenario (and its workloads, schedulers and autoscaler) must pickle."""

    @pytest.mark.parametrize("name", sorted(CONTENTION_SCENARIOS))
    def test_registered_scenario_round_trips(self, name):
        scenario = build_scenario(name, seed=1)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.name == scenario.name
        assert [t.name for t in clone.tenants] == [t.name for t in scenario.tenants]

    @pytest.mark.parametrize("name", ["saturated", "priority-tiers", "queue-feedback"])
    def test_pickled_scenario_runs_identically(self, name):
        scenario = build_scenario(name, seed=2)
        clone = pickle.loads(pickle.dumps(scenario))
        assert run_scenario(clone).summary() == run_scenario(scenario).summary()


class TestScenarioSweep:
    def test_serial_sweep_preserves_order(self):
        scenarios = [build_scenario("saturated", seed=s) for s in (0, 1, 2)]
        results = run_scenario_sweep(scenarios, n_workers=1)
        assert [r.scenario_name for r in results] == ["saturated"] * 3
        assert results[0].summary() == run_scenario(scenarios[0]).summary()

    def test_parallel_sweep_matches_serial(self):
        scenarios = [build_scenario("autoscale-burst", seed=s) for s in (0, 1)]
        serial = [r.summary() for r in run_scenario_sweep(scenarios, n_workers=1)]
        parallel = [r.summary() for r in run_scenario_sweep(scenarios, n_workers=2)]
        assert serial == parallel

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_scenario_sweep([], n_workers=0)


class TestPriorityTiersScenario:
    def test_high_tier_queues_less_than_low_tier(self):
        result = run_scenario(build_scenario("priority-tiers", seed=0))
        by_tenant = {}
        for row in result.rows:
            by_tenant.setdefault(row["tenant"], []).append(float(row["queue_seconds"]))
        high = np.mean(by_tenant["interactive-tier"])
        low = np.mean(by_tenant["batch-tier"])
        assert high < low

    def test_preemptions_waste_accounted_resource_seconds(self):
        result = run_scenario(build_scenario("priority-tiers", seed=0))
        summary = result.summary()
        assert summary["preemptions"] > 0
        assert summary["wasted_occupancy_cost"] > 0
        # Row-level wasted occupancy sums to the scenario total, and each
        # row's useful+wasted cost equals the footprint of its total
        # occupied time -- the conservation the preemption accounting pins.
        cost_model = ResourceCostModel()
        catalog = build_scenario("priority-tiers", seed=0).union_catalog()
        total_wasted = 0.0
        for row in result.rows:
            config = catalog[str(row["hardware"])]
            wasted = float(row["wasted_occupancy_cost"])
            total_wasted += wasted
            occupied = float(row["runtime_seconds"]) + float(row["wasted_seconds"])
            assert float(row["occupancy_cost"]) + wasted == pytest.approx(
                cost_model.occupancy_cost(config, occupied)
            )
        assert total_wasted == pytest.approx(summary["wasted_occupancy_cost"])

    def test_only_low_priority_rows_are_preempted(self):
        result = run_scenario(build_scenario("priority-tiers", seed=0))
        for row in result.rows:
            if int(row["preemptions"]) > 0:
                assert int(row["priority"]) == 0


class TestAutoscaleBurstScenario:
    def test_pool_provisions_and_is_charged(self):
        result = run_scenario(build_scenario("autoscale-burst", seed=0))
        summary = result.summary()
        assert summary["node_pool_cost"] > 0
        kinds = {e.kind for e in result.scale_events}
        assert {"scale_up_requested", "node_provisioned"} <= kinds

    def test_bursts_still_queue_behind_provisioning_delay(self):
        result = run_scenario(build_scenario("autoscale-burst", seed=0))
        assert result.summary()["mean_queue_seconds"] > 0


class TestQueueAwareFeedback:
    """The acceptance criterion: queue-aware rewards lower the
    queue-inclusive regret of the autoscale-burst campaign."""

    def test_queue_feedback_lowers_queue_inclusive_regret_seed0(self):
        blind = run_scenario(build_scenario("autoscale-burst", seed=0)).summary()
        aware = run_scenario(build_scenario("queue-feedback", seed=0)).summary()
        assert aware["queue_inclusive_regret"] < blind["queue_inclusive_regret"]
        assert aware["total_queue_seconds"] < blind["total_queue_seconds"]

    def test_queue_feedback_lowers_regret_across_seeds(self):
        blind, aware = [], []
        for seed in (1, 2, 3):
            blind.append(
                run_scenario(build_scenario("autoscale-burst", seed=seed)).summary()[
                    "queue_inclusive_regret"
                ]
            )
            aware.append(
                run_scenario(build_scenario("queue-feedback", seed=seed)).summary()[
                    "queue_inclusive_regret"
                ]
            )
        assert np.mean(aware) < np.mean(blind)

    def test_queue_feedback_prefers_lean_allocations(self):
        # The whole point: with queue-aware rewards the bandit shifts from
        # the node-hogging solo-fastest arm to the packable one.
        blind = run_scenario(build_scenario("autoscale-burst", seed=0))
        aware = run_scenario(build_scenario("queue-feedback", seed=0))
        blind_lean = sum(d == "lean" for d in blind.tenants["burst-campaign"].decisions)
        aware_lean = sum(d == "lean" for d in aware.tenants["burst-campaign"].decisions)
        assert aware_lean > blind_lean

    def test_with_queue_feedback_copies_every_tenant(self):
        scenario = build_scenario("saturated", seed=0).with_queue_feedback(0.5)
        assert all(
            t.reward is not None and t.reward.queue_aware and t.reward.queue_weight == 0.5
            for t in scenario.tenants
        )
        # Queue-blind parity knobs untouched.
        base = build_scenario("saturated", seed=0)
        assert [t.n_workflows for t in scenario.tenants] == [
            t.n_workflows for t in base.tenants
        ]


class TestRewardConfig:
    def test_runtime_mode_is_identity(self):
        config = RewardConfig()
        assert config.effective_runtime(12.5, 1000.0) == 12.5
        assert not config.queue_aware

    def test_queue_inclusive_adds_weighted_delay(self):
        config = RewardConfig(mode="queue_inclusive", queue_weight=0.5)
        assert config.effective_runtime(10.0, 8.0) == pytest.approx(14.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(mode="nope")
        with pytest.raises(ValueError):
            RewardConfig(queue_weight=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(mode="queue_inclusive").effective_runtime(1.0, -2.0)

    def test_invalid_queue_rejected_in_runtime_mode_too(self):
        # Regression: validation must not depend on the reward mode.
        config = RewardConfig()
        with pytest.raises(ValueError):
            config.effective_runtime(1.0, -2.0)
        with pytest.raises(ValueError):
            config.effective_runtime(1.0, float("nan"))

    def test_zero_contention_results_unchanged_by_queue_mode(self):
        # With no queueing the queue-aware mode cannot change anything.
        blind = run_scenario(build_scenario("zero-contention", seed=0))
        aware = run_scenario(
            build_scenario("zero-contention", seed=0).with_queue_feedback(1.0)
        )
        assert blind.tenants["solo"].decisions == aware.tenants["solo"].decisions
        assert blind.tenants["solo"].runtimes == aware.tenants["solo"].runtimes


class TestScenarioReplications:
    """Engine-level replication of whole scenarios with confidence bands."""

    def _summary(self, n=3, name="saturated", n_workers=1):
        from repro.evaluation import run_scenario_replications

        return run_scenario_replications(build_scenario(name, seed=0), n, n_workers=n_workers)

    def test_curves_are_rectangular_and_seeded_consecutively(self):
        summary = self._summary(3)
        assert summary.n_replications == 3
        assert summary.seeds == [0, 1, 2]
        n_rounds = len(summary.results[0].rows)
        assert summary.n_rounds == n_rounds
        for matrix in (
            summary.regret_curves,
            summary.queue_regret_curves,
            summary.interference_regret_curves,
            summary.slowdown_curves,
        ):
            assert matrix.shape == (3, n_rounds)

    def test_each_replication_matches_a_direct_run(self):
        summary = self._summary(2)
        for seed, result in zip(summary.seeds, summary.results):
            direct = run_scenario(build_scenario("saturated", seed=seed))
            assert result.summary() == direct.summary()

    def test_band_mean_and_ci_are_consistent(self):
        summary = self._summary(3)
        band = summary.band("queue_regret")
        manual = summary.queue_regret_curves.mean(axis=0)
        assert np.allclose(band["mean"], manual)
        assert np.all(band["lo"] <= band["mean"] + 1e-12)
        assert np.all(band["hi"] >= band["mean"] - 1e-12)
        # Final point of the mean curve equals the mean of the final
        # queue-inclusive regrets.
        finals = [r.summary()["queue_inclusive_regret"] for r in summary.results]
        assert band["mean"][-1] == pytest.approx(float(np.mean(finals)))
        with pytest.raises(KeyError):
            summary.band("nonexistent")

    def test_scalar_summary_reports_mean_and_std(self):
        summary = self._summary(3)
        scalars = summary.summary()
        regrets = [r.summary()["cumulative_regret"] for r in summary.results]
        mean, std = scalars["cumulative_regret"]
        assert mean == pytest.approx(float(np.mean(regrets)))
        assert std == pytest.approx(float(np.std(regrets, ddof=1)))

    def test_parallel_replications_match_serial(self):
        serial = self._summary(2)
        parallel = self._summary(2, n_workers=2)
        assert np.array_equal(serial.queue_regret_curves, parallel.queue_regret_curves)
        assert np.array_equal(serial.slowdown_curves, parallel.slowdown_curves)

    def test_report_surfaces_confidence_bands(self):
        from repro.evaluation import format_contention_report

        summary = self._summary(2)
        text = format_contention_report(summary.results[0], replications=summary)
        assert "replications: 2 seeds (0..1)" in text
        assert "95% CI" in text
        assert "q_regret_mean" in text
        assert "±" in text

    def test_rejects_bad_replication_count(self):
        from repro.evaluation import run_scenario_replications

        with pytest.raises(ValueError):
            run_scenario_replications(build_scenario("saturated", seed=0), 0)
