"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable, so the suite executes each
one in-process (same interpreter, no subprocess start-up cost) and checks that
it completes and prints something sensible.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "cycles_workflow.py",
    "burnpro3d_recommendation.py",
    "matmul_hardware_selection.py",
    "cluster_simulation.py",
    "contention_scenarios.py",
    "autoscale_priority.py",
    "interference_study.py",
    "placement_study.py",
]


def test_placement_study_shows_the_spread_saving(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "placement_study.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "least-slowdown cuts mean slowdown" in output
    assert "io-noisy vs numa-quiet" in output
    assert "slowdown-inclusive rewards" in output


def test_interference_study_shows_inflation(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "interference_study.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "co-residency inflates observed runtimes: True" in output
    assert "victim workflows ran" in output


def test_autoscale_priority_example_shows_improvement(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "autoscale_priority.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "queue-aware rewards reduce queue-inclusive regret: True" in output
    assert "preempted workflows" in output


def test_contention_example_parity_line(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "contention_scenarios.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "parity with the synchronous loop: True" in output


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_to_completion(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output.strip()) > 0


def test_quickstart_converges_to_h1(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "recommended hardware: H1" in output


def test_cluster_simulation_reports_improvement(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "cluster_simulation.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "banditware" in output
    assert "sooner" in output
