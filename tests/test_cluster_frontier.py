"""Event-frontier engine: parity pins, event-budget accounting, invariants.

The per-node finish frontier (one live ``node_next_finish`` event per node,
superseded events cancelled in O(1)) replaces the per-pod tentative-event
scheme.  These tests pin that the change is pure event machinery:

* every registered scenario x {FirstFit, LeastSlowdown} reproduces its
  pre-frontier fingerprint (summary floats, decision streams, accounting-row
  digest) **bit for bit** against ``benchmarks/frontier_parity_reference.json``;
* ``run_until_idle(max_events=...)`` budgets *handled* events only --
  superseded entries are skipped without charge (the pre-frontier engine
  burned most of the budget on stale pops);
* ``peek_next_event_time`` never surfaces a superseded finish time, and the
  experiment engine steps only at instants where events are actually handled;
* the frontier event always sits at the brute-force minimum of the node's
  residents' tentative finishes -- audited at every event boundary under
  preemption, autoscale provision/drain, and same-timestamp arrival batches.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, Node
from repro.cluster.interference import LinearSlowdown
from repro.evaluation.contention import (
    CONTENTION_SCENARIOS,
    build_scenario,
    run_scenario,
    scenario_fingerprint,
)
from repro.hardware import HardwareCatalog, HardwareConfig
from repro.workloads import LinearRuntimeWorkload

REFERENCE_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "frontier_parity_reference.json"
)
REFERENCE = json.loads(REFERENCE_PATH.read_text())


def _contended_sim(node_cpus: int = 64, node_memory_gb: float = 256.0, **kwargs):
    """A one-fat-node simulator where every pod interferes with every other."""
    catalog = HardwareCatalog([HardwareConfig("s", cpus=2, memory_gb=8)])
    workload = LinearRuntimeWorkload(
        feature_ranges={"size": (1.0, 8.0)},
        coefficients={"s": ({"size": 100.0}, 0.0)},
        noise_sigma=0.0,
        name="stress",
    )
    return ClusterSimulator(
        nodes=[Node("fat", cpus=node_cpus, memory_gb=node_memory_gb)],
        catalog=catalog,
        workload=workload,
        seed=0,
        interference=LinearSlowdown(alpha=0.5),
        **kwargs,
    )


# --------------------------------------------------------------------- #
# Bit-identical parity vs the pre-frontier engine
# --------------------------------------------------------------------- #
class TestFrontierParity:
    """Every scenario x placement must match its pre-frontier fingerprint."""

    @pytest.mark.parametrize("placement", REFERENCE["placements"])
    @pytest.mark.parametrize("name", sorted(REFERENCE["scenarios"]))
    def test_fingerprint_bit_identical(self, name, placement):
        pinned = REFERENCE["scenarios"][name][placement]
        observed = scenario_fingerprint(name, placement, seed=REFERENCE["seed"])
        assert observed["summary"] == pinned["summary"]
        assert observed["decisions"] == pinned["decisions"]
        assert observed["n_rows"] == pinned["n_rows"]
        assert observed["rows_sha256"] == pinned["rows_sha256"]

    def test_reference_covers_every_registered_scenario(self):
        assert sorted(REFERENCE["scenarios"]) == sorted(CONTENTION_SCENARIOS)


# --------------------------------------------------------------------- #
# Event-budget accounting (superseded events are free)
# --------------------------------------------------------------------- #
class TestEventBudget:
    def test_superseded_events_do_not_charge_the_budget(self):
        """A contended run completes within a budget of handled events only.

        40 co-resident pods under LinearSlowdown reschedule every resident on
        every arrival and finish; the pre-frontier engine pushed (and later
        popped) one tentative event per resident per change, burning well
        over half of a tight budget on stale pops.  The frontier engine
        handles exactly one submission and one completion per pod.
        """
        n_pods = 40
        sim = _contended_sim()
        for i in range(n_pods):
            sim.submit({"size": 1.0 + (i % 7)}, "s", at_time=float(i))
        runs = sim.run_until_idle()
        assert len(runs) == n_pods

        stats = sim.event_stats
        assert stats["popped"] == 2 * n_pods  # one submit + one finish each
        assert stats["pending"] == 0
        # Frontier churn happened -- and none of it was handled.
        assert stats["skipped"] > 0
        assert stats["pushed"] == stats["popped"] + stats["skipped"]

        # Regression: the exact handled count is a sufficient budget.  The
        # per-pod-event engine processed ~n^2 events on this workload and
        # raised RuntimeError long before completing under this budget.
        replay = _contended_sim()
        for i in range(n_pods):
            replay.submit({"size": 1.0 + (i % 7)}, "s", at_time=float(i))
        assert len(replay.run_until_idle(max_events=2 * n_pods)) == n_pods

    def test_profile_mirrors_queue_counters(self):
        sim = _contended_sim()
        profile = sim.enable_profiling()
        for i in range(10):
            sim.submit({"size": 2.0}, "s", at_time=float(i))
        sim.run_until_idle()
        stats = sim.event_stats
        assert profile.events_pushed == stats["pushed"]
        assert profile.events_popped == stats["popped"]
        assert profile.events_skipped == stats["skipped"]
        assert profile.events_processed == profile.events_popped


# --------------------------------------------------------------------- #
# Frontier-aware peek
# --------------------------------------------------------------------- #
class TestPeekNextEventTime:
    def test_peek_never_returns_a_superseded_finish_time(self):
        """A newly contended pod's stale solo finish must not be peeked.

        Pod A runs alone (finish at t=100).  Pod B arrives at t=10; both
        slow to 0.8x (``u = max(2/4, 8/16) = 0.5``), moving A's finish to
        ``10 + 90/0.8 = 122.5``.  The pre-frontier engine kept A's t=100
        event in the heap and ``peek_next_event_time`` reported it, waking
        the experiment engine at a timestamp where nothing happens.
        """
        sim = _contended_sim(node_cpus=4, node_memory_gb=16.0)
        sim.submit({"size": 1.0}, "s", at_time=0.0)
        sim.submit({"size": 1.0}, "s", at_time=10.0)
        sim.run_until(10.0)
        assert sim.peek_next_event_time() == 122.5
        runs = sim.run_until_idle()
        assert runs[0].finish_time == 122.5

    def test_engine_steps_only_where_events_are_handled(self, monkeypatch):
        """Every engine drain handles >= 1 event: no wakeups at stale times."""
        drains = []
        original = ClusterSimulator.run_until

        def counted(self, time):
            before = self.event_stats["popped"]
            runs = original(self, time)
            drains.append(self.event_stats["popped"] - before)
            return runs

        monkeypatch.setattr(ClusterSimulator, "run_until", counted)
        result = run_scenario(build_scenario("interference-heavy", seed=0))
        assert result.rows  # the scenario actually ran
        assert drains and all(handled >= 1 for handled in drains)
        # Steps are bounded by handled events: the engine wakes at most once
        # per live event instant, never for superseded heap backlog.
        assert len(drains) <= sum(drains)


# --------------------------------------------------------------------- #
# Frontier == brute force, audited at every event boundary
# --------------------------------------------------------------------- #
def _audit_frontiers(sim: ClusterSimulator) -> int:
    """Assert each node's frontier event sits at the brute-force minimum."""
    state = sim.state
    audited = 0
    for slot in range(state.n_nodes):
        residents = state.residents[slot]
        event = sim._frontier.get(slot)
        if not residents:
            assert event is None, f"slot {slot} has a frontier but no residents"
            continue
        finishes = state.finish_at[np.asarray(residents, dtype=np.intp)]
        assert not np.isnan(finishes).any(), f"slot {slot} has unscheduled residents"
        assert event is not None, f"slot {slot} has residents but no frontier"
        assert event.alive, f"slot {slot} holds a cancelled frontier event"
        assert event.time == float(finishes.min())
        audited += 1
    return audited


@pytest.fixture
def frontier_audit(monkeypatch):
    """Audit every simulator's frontier invariant before each handled event."""
    counts = {"audits": 0}
    original = ClusterSimulator._handle_event

    def audited(self, event):
        counts["audits"] += _audit_frontiers(self)
        original(self, event)

    monkeypatch.setattr(ClusterSimulator, "_handle_event", audited)
    return counts


class TestFrontierMatchesBruteForce:
    def test_under_preemption(self, frontier_audit):
        """priority-tiers: preemptions evict residents mid-run."""
        result = run_scenario(build_scenario("priority-tiers", seed=0))
        assert result.rows
        assert frontier_audit["audits"] > 0

    def test_under_autoscale_provision_and_drain(self, frontier_audit):
        """autoscale-burst: nodes join mid-run and drain when idle."""
        result = run_scenario(build_scenario("autoscale-burst", seed=0))
        assert result.scale_events  # provisioning actually happened
        assert frontier_audit["audits"] > 0

    def test_under_same_timestamp_topology_changes(self, frontier_audit):
        """A batch of simultaneous arrivals moves one node's frontier
        repeatedly within a single timestamp."""
        sim = _contended_sim()
        for i in range(12):
            sim.submit({"size": 1.0 + (i % 3)}, "s", at_time=5.0)
        runs = sim.run_until_idle()
        assert len(runs) == 12
        assert frontier_audit["audits"] > 0
