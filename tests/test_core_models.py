"""Tests for the per-arm runtime models."""

import numpy as np
import pytest

from repro.core.models import (
    LeastSquaresModel,
    RecursiveLeastSquaresModel,
    RidgeModel,
)


def _generate_linear_data(rng, n=60, w=(2.0, 1.0), b=5.0, noise=0.01):
    """Noise-free-ish linear runtimes with positive slopes (never clipped)."""
    X = rng.uniform(0, 10, size=(n, len(w)))
    y = X @ np.asarray(w) + b + rng.normal(0, noise, size=n)
    y = np.clip(y, 0, None)
    return X, y


class TestLeastSquaresModel:
    def test_unfitted_predicts_zero(self):
        model = LeastSquaresModel(2)
        assert model.predict([1.0, 2.0]) == 0.0
        assert not model.is_fitted

    def test_recovers_known_coefficients(self, rng):
        X, y = _generate_linear_data(rng)
        model = LeastSquaresModel(2).fit(X, y)
        assert model.coefficients == pytest.approx([2.0, 1.0], abs=0.05)
        assert model.intercept == pytest.approx(5.0, abs=0.2)

    def test_incremental_updates_match_batch_fit(self, rng):
        X, y = _generate_linear_data(rng, n=30)
        online = LeastSquaresModel(2)
        for xi, yi in zip(X, y):
            online.update(xi, yi)
        batch = LeastSquaresModel(2).fit(X, y)
        assert online.coefficients == pytest.approx(batch.coefficients)
        assert online.intercept == pytest.approx(batch.intercept)
        assert online.n_observations == 30

    def test_prediction_matches_manual_formula(self, rng):
        X, y = _generate_linear_data(rng)
        model = LeastSquaresModel(2).fit(X, y)
        x = np.array([3.0, 4.0])
        assert model.predict(x) == pytest.approx(model.coefficients @ x + model.intercept)

    def test_predict_many(self, rng):
        X, y = _generate_linear_data(rng)
        model = LeastSquaresModel(2).fit(X, y)
        preds = model.predict_many(X[:5])
        assert preds.shape == (5,)

    def test_predict_batch_matches_per_row_predict(self, rng):
        X, y = _generate_linear_data(rng)
        for model in (
            LeastSquaresModel(2).fit(X, y),
            RidgeModel(2, alpha=0.5).fit(X, y),
        ):
            batch = model.predict_batch(X[:10])
            scalar = np.asarray([model.predict(row) for row in X[:10]])
            assert np.allclose(batch, scalar, rtol=1e-12)

    def test_rls_predict_batch_matches_per_row_predict(self, rng):
        X, y = _generate_linear_data(rng)
        model = RecursiveLeastSquaresModel(2)
        for xi, yi in zip(X, y):
            model.update(xi, yi)
        batch = model.predict_batch(X[:10])
        scalar = np.asarray([model.predict(row) for row in X[:10]])
        assert np.allclose(batch, scalar, rtol=1e-12)

    def test_solver_validation(self):
        with pytest.raises(ValueError):
            LeastSquaresModel(2, solver="bogus")
        clone = LeastSquaresModel(2, solver="full").clone_unfitted()
        assert clone.solver == "full"

    def test_no_intercept_mode(self, rng):
        X, y = _generate_linear_data(rng, b=0.0)
        model = LeastSquaresModel(2, fit_intercept=False).fit(X, y)
        assert model.intercept == 0.0
        assert model.coefficients == pytest.approx([2.0, 1.0], abs=0.05)

    def test_underdetermined_is_still_usable(self):
        model = LeastSquaresModel(3)
        model.update([1.0, 2.0, 3.0], 10.0)
        assert np.isfinite(model.predict([1.0, 2.0, 3.0]))

    def test_rejects_bad_runtime(self):
        model = LeastSquaresModel(1)
        with pytest.raises(ValueError):
            model.update([1.0], -5.0)
        with pytest.raises(ValueError):
            model.update([1.0], float("nan"))

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            LeastSquaresModel(2).update([1.0], 1.0)

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LeastSquaresModel(1).fit([[1.0], [2.0]], [1.0])

    def test_uncertainty_inf_until_overdetermined(self):
        model = LeastSquaresModel(2)
        model.update([1.0, 0.0], 1.0)
        assert model.uncertainty([1.0, 0.0]) == float("inf")

    def test_uncertainty_shrinks_with_data(self, rng):
        X, y = _generate_linear_data(rng, n=10, noise=0.5)
        few = LeastSquaresModel(2).fit(X, y)
        X2, y2 = _generate_linear_data(rng, n=200, noise=0.5)
        many = LeastSquaresModel(2).fit(X2, y2)
        q = np.array([5.0, 5.0])
        assert many.uncertainty(q) < few.uncertainty(q)

    def test_coefficient_dict(self, rng):
        X, y = _generate_linear_data(rng)
        model = LeastSquaresModel(2).fit(X, y)
        named = model.coefficient_dict(["a", "b"])
        assert set(named) == {"w_a", "w_b", "b"}

    def test_coefficient_dict_wrong_length(self):
        with pytest.raises(ValueError):
            LeastSquaresModel(2).coefficient_dict(["only_one"])

    def test_clone_unfitted(self, rng):
        X, y = _generate_linear_data(rng)
        model = LeastSquaresModel(2, fit_intercept=False).fit(X, y)
        clone = model.clone_unfitted()
        assert not clone.is_fitted
        assert clone.fit_intercept is False

    def test_invalid_n_features(self):
        with pytest.raises(ValueError):
            LeastSquaresModel(0)


class TestRidgeModel:
    def test_recovers_coefficients_with_small_penalty(self, rng):
        X, y = _generate_linear_data(rng, n=200)
        model = RidgeModel(2, alpha=1e-6).fit(X, y)
        assert model.coefficients == pytest.approx([2.0, 1.0], abs=0.05)

    def test_shrinkage_reduces_coefficient_norm(self, rng):
        X, y = _generate_linear_data(rng, n=50)
        weak = RidgeModel(2, alpha=1e-6).fit(X, y)
        strong = RidgeModel(2, alpha=1e4).fit(X, y)
        assert np.linalg.norm(strong.coefficients) < np.linalg.norm(weak.coefficients)

    def test_update_path(self, rng):
        X, y = _generate_linear_data(rng, n=20)
        model = RidgeModel(2, alpha=0.1)
        for xi, yi in zip(X, y):
            model.update(xi, yi)
        assert model.n_observations == 20
        assert np.isfinite(model.predict([1.0, 1.0]))

    def test_well_conditioned_when_underdetermined(self):
        model = RidgeModel(5, alpha=1.0)
        model.update([1, 2, 3, 4, 5], 10.0)
        assert np.isfinite(model.predict([1, 2, 3, 4, 5]))

    def test_uncertainty_decreases_with_data(self, rng):
        model = RidgeModel(2, alpha=1.0)
        q = [1.0, 1.0]
        assert model.uncertainty(q) == float("inf")
        X, y = _generate_linear_data(rng, n=100)
        model.fit(X, y)
        first = model.uncertainty(q)
        X2, y2 = _generate_linear_data(rng, n=100)
        for xi, yi in zip(X2, y2):
            model.update(xi, yi)
        assert model.uncertainty(q) < first

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RidgeModel(2, alpha=0.0)

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            RidgeModel(1).update([1.0], -1.0)

    def test_clone_preserves_alpha(self):
        clone = RidgeModel(2, alpha=3.0).clone_unfitted()
        assert clone.alpha == 3.0


class TestRecursiveLeastSquaresModel:
    def test_matches_ridge_on_same_stream(self, rng):
        X, y = _generate_linear_data(rng, n=80)
        rls = RecursiveLeastSquaresModel(2, regularization=1.0)
        ridge = RidgeModel(2, alpha=1.0)
        for xi, yi in zip(X, y):
            rls.update(xi, yi)
            ridge.update(xi, yi)
        # Ridge penalises only the slopes while RLS regularises the full
        # augmented vector, so allow a loose tolerance on the coefficients but
        # require close predictions.
        q = np.array([5.0, 5.0])
        assert rls.predict(q) == pytest.approx(ridge.predict(q), rel=0.05)

    def test_recovers_known_coefficients(self, rng):
        X, y = _generate_linear_data(rng, n=300)
        model = RecursiveLeastSquaresModel(2, regularization=1e-3)
        for xi, yi in zip(X, y):
            model.update(xi, yi)
        assert model.coefficients == pytest.approx([2.0, 1.0], abs=0.05)
        assert model.intercept == pytest.approx(5.0, abs=0.3)

    def test_constant_time_update_keeps_no_history(self, rng):
        model = RecursiveLeastSquaresModel(2)
        X, y = _generate_linear_data(rng, n=10)
        for xi, yi in zip(X, y):
            model.update(xi, yi)
        assert model.n_observations == 10
        assert not hasattr(model, "_X")

    def test_uncertainty_shrinks_with_observations(self, rng):
        model = RecursiveLeastSquaresModel(2, noise_std=1.0)
        q = [1.0, 1.0]
        before = model.uncertainty(q)
        X, y = _generate_linear_data(rng, n=50)
        for xi, yi in zip(X, y):
            model.update(xi, yi)
        assert model.uncertainty(q) < before

    def test_covariance_is_symmetric_positive(self, rng):
        model = RecursiveLeastSquaresModel(3)
        X, y = _generate_linear_data(rng, n=40, w=(1.0, 2.0, 3.0))
        for xi, yi in zip(X, y):
            model.update(xi, yi)
        cov = model.covariance
        assert np.allclose(cov, cov.T, atol=1e-9)
        assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_sample_prediction_varies_but_centres(self, rng):
        model = RecursiveLeastSquaresModel(1, regularization=1e-3, noise_std=1.0)
        for x in np.linspace(0, 10, 100):
            model.update([x], 3.0 * x + 2.0)
        samples = [model.sample_prediction([5.0], rng) for _ in range(200)]
        assert np.mean(samples) == pytest.approx(model.predict([5.0]), abs=0.5)
        assert np.std(samples) > 0

    def test_rejects_bad_inputs(self):
        model = RecursiveLeastSquaresModel(1)
        with pytest.raises(ValueError):
            model.update([1.0], -1.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquaresModel(1, regularization=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquaresModel(1, noise_std=0.0)

    def test_clone_unfitted_preserves_hyperparameters(self):
        clone = RecursiveLeastSquaresModel(2, regularization=2.0, noise_std=3.0).clone_unfitted()
        assert clone.regularization == 2.0
        assert clone.noise_std == 3.0
        assert not clone.is_fitted
