"""Tests for evaluation metrics and reporting helpers."""

import numpy as np
import pytest

from repro.evaluation import (
    accuracy_score,
    format_metric_table,
    format_summary,
    mae,
    mape,
    r2_score,
    rmse,
    selection_accuracy,
)
from repro.evaluation.reporting import format_histogram


class TestRegressionMetrics:
    def test_rmse_zero_for_perfect_predictions(self):
        assert rmse([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_is_symmetric(self):
        a, b = [1.0, 5.0, 2.0], [2.0, 3.0, 2.0]
        assert rmse(a, b) == rmse(b, a)

    def test_mae_known_value(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == 1.5

    def test_mape_known_value(self):
        assert mape([10.0, 20.0], [11.0, 18.0]) == pytest.approx((0.1 + 0.1) / 2)

    def test_mape_zero_actual_guarded(self):
        assert np.isfinite(mape([0.0], [1.0]))

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        actual = [1.0, 2.0, 3.0]
        assert r2_score(actual, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0

    def test_r2_constant_actuals(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            r2_score([1.0, np.nan], [1.0, 2.0])


class TestSelectionMetrics:
    def test_accuracy_score(self):
        assert accuracy_score([True, False, True, True]) == 0.75

    def test_accuracy_score_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([])

    def test_selection_accuracy_with_single_answers(self):
        assert selection_accuracy(["H0", "H1"], ["H0", "H0"]) == 0.5

    def test_selection_accuracy_with_sets(self):
        acceptable = [{"H0", "H1"}, {"H2"}]
        assert selection_accuracy(["H1", "H1"], acceptable) == 0.5

    def test_selection_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            selection_accuracy(["H0"], ["H0", "H1"])

    def test_selection_accuracy_empty(self):
        with pytest.raises(ValueError):
            selection_accuracy([], [])


class TestReportingHelpers:
    def test_format_metric_table_contains_values(self):
        text = format_metric_table([{"round": 1, "rmse": 2.5}], title="demo")
        assert "demo" in text
        assert "2.5" in text

    def test_format_metric_table_empty(self):
        assert "(no rows)" in format_metric_table([])

    def test_format_summary(self):
        text = format_summary({"accuracy": 0.75, "rounds": 50})
        assert "accuracy" in text and "0.75" in text

    def test_format_histogram(self):
        text = format_histogram([1.0, 1.1, 5.0, 5.2, 5.1], bins=2, title="rmse")
        assert "rmse" in text
        assert "#" in text

    def test_format_histogram_empty(self):
        with pytest.raises(ValueError):
            format_histogram([])

    def test_format_histogram_bad_bins(self):
        with pytest.raises(ValueError):
            format_histogram([1.0], bins=0)
