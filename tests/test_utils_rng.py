"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequencePool, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_is_reproducible(self):
        a = as_generator(42)
        b = as_generator(42)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert as_generator(1).random() != as_generator(2).random()

    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(99)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(7, 5)
        assert len(gens) == 5

    def test_streams_are_independent(self):
        gens = spawn_generators(7, 3)
        values = [g.random() for g in gens]
        assert len(set(values)) == 3

    def test_reproducible_family(self):
        a = [g.random() for g in spawn_generators(7, 3)]
        b = [g.random() for g in spawn_generators(7, 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn_generators(7, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(7, -1)

    def test_from_generator(self):
        g = np.random.default_rng(3)
        gens = spawn_generators(g, 2)
        assert len(gens) == 2


class TestSeedSequencePool:
    def test_same_index_same_stream(self):
        pool_a = SeedSequencePool(5)
        pool_b = SeedSequencePool(5)
        assert pool_a.generator(3).random() == pool_b.generator(3).random()

    def test_indices_are_independent(self):
        pool = SeedSequencePool(5)
        assert pool.generator(0).random() != pool.generator(1).random()

    def test_earlier_children_unaffected_by_growth(self):
        pool_small = SeedSequencePool(5)
        first_small = pool_small.generator(0).random()
        pool_big = SeedSequencePool(5)
        pool_big.generators(50)
        first_big = pool_big.generator(0).random()
        assert first_small == first_big

    def test_len_tracks_created_children(self):
        pool = SeedSequencePool(1)
        pool.generator(4)
        assert len(pool) >= 5

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            SeedSequencePool(1).generator(-1)

    def test_accepts_generator_seed(self):
        pool = SeedSequencePool(np.random.default_rng(0))
        assert isinstance(pool.generator(0), np.random.Generator)
