"""Tests for repro.hardware (config, catalog, cost model)."""

import pytest

from repro.hardware import (
    HardwareCatalog,
    HardwareConfig,
    ResourceCostModel,
    matmul_catalog,
    ndp_catalog,
    rank_by_efficiency,
    resource_footprint,
    synthetic_catalog,
    uniform_scaling_catalog,
)


class TestHardwareConfig:
    def test_paper_tuple(self):
        hw = HardwareConfig("H0", cpus=2, memory_gb=16)
        assert hw.as_tuple() == (2, 16.0)

    def test_invalid_cpus(self):
        with pytest.raises(ValueError):
            HardwareConfig("bad", cpus=0, memory_gb=16)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            HardwareConfig("bad", cpus=2, memory_gb=-1)

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            HardwareConfig("bad", cpus=2, memory_gb=16, gpus=-1)

    def test_empty_name(self):
        with pytest.raises(ValueError):
            HardwareConfig("", cpus=1, memory_gb=1)

    def test_default_cost_increases_with_resources(self):
        small = HardwareConfig("s", cpus=2, memory_gb=16)
        big = HardwareConfig("b", cpus=8, memory_gb=64)
        assert big.cost_per_hour > small.cost_per_hour

    def test_explicit_cost_wins(self):
        hw = HardwareConfig("h", cpus=2, memory_gb=16, hourly_cost=3.0)
        assert hw.cost_per_hour == 3.0

    def test_compute_capacity(self):
        hw = HardwareConfig("h", cpus=4, memory_gb=8, cpu_clock_ghz=2.0)
        assert hw.compute_capacity == 8.0

    def test_dict_roundtrip(self):
        hw = HardwareConfig("h", cpus=4, memory_gb=8, labels={"zone": "us-west"})
        back = HardwareConfig.from_dict(hw.to_dict())
        assert back.name == hw.name
        assert back.cpus == hw.cpus
        assert back.labels == {"zone": "us-west"}

    def test_frozen(self):
        hw = HardwareConfig("h", cpus=1, memory_gb=1)
        with pytest.raises(AttributeError):
            hw.cpus = 4

    def test_equality(self):
        assert HardwareConfig("h", 2, 16) == HardwareConfig("h", 2, 16)


class TestHardwareCatalog:
    def test_ndp_catalog_matches_paper(self):
        catalog = ndp_catalog()
        assert catalog.names == ["H0", "H1", "H2"]
        assert catalog["H0"].as_tuple() == (2, 16.0)
        assert catalog["H1"].as_tuple() == (3, 24.0)
        assert catalog["H2"].as_tuple() == (4, 16.0)

    def test_matmul_catalog_has_five_arms(self):
        assert len(matmul_catalog()) == 5

    def test_synthetic_catalog_is_a_ladder(self):
        catalog = synthetic_catalog(4)
        cpus = [hw.cpus for hw in catalog]
        assert cpus == sorted(cpus)
        assert len(set(cpus)) == 4

    def test_synthetic_catalog_minimum_size(self):
        with pytest.raises(ValueError):
            synthetic_catalog(1)

    def test_index_lookup(self):
        catalog = ndp_catalog()
        assert catalog.index_of("H1") == 1
        assert catalog.index_of(catalog["H2"]) == 2

    def test_index_lookup_missing(self):
        with pytest.raises(KeyError):
            ndp_catalog().index_of("H9")

    def test_getitem_by_index_and_name(self):
        catalog = ndp_catalog()
        assert catalog[0] is catalog["H0"]

    def test_contains(self):
        catalog = ndp_catalog()
        assert "H0" in catalog
        assert catalog["H0"] in catalog
        assert "H9" not in catalog

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            HardwareCatalog([HardwareConfig("H0", 1, 1), HardwareConfig("H0", 2, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HardwareCatalog([])

    def test_subset_preserves_order(self):
        sub = ndp_catalog().subset(["H2", "H0"])
        assert sub.names == ["H2", "H0"]

    def test_add_returns_new_catalog(self):
        catalog = ndp_catalog()
        bigger = catalog.add(HardwareConfig("H3", 8, 64))
        assert len(bigger) == 4
        assert len(catalog) == 3

    def test_records_roundtrip(self):
        catalog = ndp_catalog()
        back = HardwareCatalog.from_records(catalog.to_records())
        assert back == catalog

    def test_uniform_scaling_catalog(self):
        catalog = uniform_scaling_catalog(3, base_cpus=2, cpu_step=4)
        assert [hw.cpus for hw in catalog] == [2, 6, 10]

    def test_uniform_scaling_invalid(self):
        with pytest.raises(ValueError):
            uniform_scaling_catalog(0)


class TestResourceCost:
    def test_footprint_increases_with_cpus(self):
        small = HardwareConfig("s", cpus=2, memory_gb=16)
        big = HardwareConfig("b", cpus=4, memory_gb=16)
        assert resource_footprint(big) > resource_footprint(small)

    def test_ndp_efficiency_order(self):
        # H0=(2,16) is lightest, then H1=(3,24), then H2=(4,16) by CPU weight.
        ranked = rank_by_efficiency(ndp_catalog())
        assert [hw.name for hw in ranked] == ["H0", "H1", "H2"]

    def test_most_efficient(self):
        model = ResourceCostModel()
        catalog = ndp_catalog()
        assert model.most_efficient(list(catalog)).name == "H0"

    def test_most_efficient_empty(self):
        with pytest.raises(ValueError):
            ResourceCostModel().most_efficient([])

    def test_occupancy_cost_scales_with_time(self):
        model = ResourceCostModel()
        hw = HardwareConfig("h", cpus=2, memory_gb=16)
        assert model.occupancy_cost(hw, 10) == pytest.approx(10 * model.footprint(hw))

    def test_occupancy_cost_negative_time(self):
        with pytest.raises(ValueError):
            ResourceCostModel().occupancy_cost(HardwareConfig("h", 1, 1), -1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ResourceCostModel(cpu_weight=-1)

    def test_memory_only_weighting(self):
        model = ResourceCostModel(cpu_weight=0.0, memory_weight=1.0)
        catalog = ndp_catalog()
        ranked = model.rank(catalog)
        assert ranked[0].name in ("H0", "H2")  # both have 16 GiB
        assert ranked[-1].name == "H1"
