"""Tests for repro.utils.logging."""

from repro.utils.logging import EventLog, LogRecord, NullLog


class TestEventLog:
    def test_record_appends(self):
        log = EventLog()
        log.record("scheduler", "pod_scheduled", time=1.0, pod="p1")
        assert len(log) == 1

    def test_sequence_numbers_increase(self):
        log = EventLog()
        first = log.record("a", "x")
        second = log.record("a", "y")
        assert second.seq == first.seq + 1

    def test_detail_preserved(self):
        log = EventLog()
        rec = log.record("svc", "rec", hardware="H1", explored=True)
        assert rec.detail == {"hardware": "H1", "explored": True}

    def test_filter_by_source(self):
        log = EventLog()
        log.record("a", "x")
        log.record("b", "x")
        assert len(log.filter(source="a")) == 1

    def test_filter_by_event(self):
        log = EventLog()
        log.record("a", "x")
        log.record("a", "y")
        assert len(log.filter(event="y")) == 1

    def test_filter_by_both(self):
        log = EventLog()
        log.record("a", "x")
        log.record("a", "y")
        log.record("b", "y")
        assert len(log.filter(source="a", event="y")) == 1

    def test_iteration_and_indexing(self):
        log = EventLog()
        log.record("a", "x")
        log.record("a", "y")
        assert [r.event for r in log] == ["x", "y"]
        assert log[1].event == "y"

    def test_clear(self):
        log = EventLog()
        log.record("a", "x")
        log.clear()
        assert len(log) == 0


class TestNullLog:
    def test_discards_records(self):
        log = NullLog()
        rec = log.record("a", "x", value=1)
        assert len(log) == 0
        assert isinstance(rec, LogRecord)
        assert rec.detail == {"value": 1}
